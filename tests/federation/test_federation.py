"""Tests for the federated SPARQL baseline (endpoint app + engine)."""

import asyncio
import json
from urllib.parse import quote

import pytest

from repro.federation import (
    ENDPOINT_ORIGIN,
    FederatedQueryEngine,
    SparqlEndpointApp,
    attach_pod_endpoints,
)
from repro.net import HttpClient, Internet, NoLatency
from repro.rdf import Graph, Literal, NamedNode, Triple, Variable
from repro.bench.harness import oracle_bindings
from repro.solidbench import discover_query


def n(suffix):
    return NamedNode(f"http://x/{suffix}")


def run(coro):
    return asyncio.run(coro)


@pytest.fixture()
def endpoint_client():
    graph = Graph(
        [
            Triple(n("a"), n("p"), Literal("1")),
            Triple(n("a"), n("q"), n("b")),
            Triple(n("b"), n("p"), Literal("2")),
        ]
    )
    internet = Internet()
    app = SparqlEndpointApp(graph)
    internet.register("https://ep.example", app)
    return HttpClient(internet, latency=NoLatency()), app


class TestSparqlEndpointApp:
    def fetch_json(self, client, query):
        url = f"https://ep.example/sparql?query={quote(query)}"
        response = run(client.fetch(url))
        assert response.status == 200, response.text
        return json.loads(response.text)

    def test_select_returns_sparql_json(self, endpoint_client):
        client, _ = endpoint_client
        document = self.fetch_json(client, "SELECT ?o WHERE { <http://x/a> <http://x/p> ?o }")
        assert document["head"]["vars"] == ["o"]
        assert document["results"]["bindings"][0]["o"]["value"] == "1"

    def test_ask_boolean(self, endpoint_client):
        client, _ = endpoint_client
        assert self.fetch_json(client, "ASK { <http://x/a> ?p ?o }")["boolean"] is True
        assert self.fetch_json(client, "ASK { <http://x/z> ?p ?o }")["boolean"] is False

    def test_post_sparql_query_body(self, endpoint_client):
        client, _ = endpoint_client
        from repro.net.message import Request

        request = Request(
            "POST",
            "https://ep.example/sparql",
            headers={"content-type": "application/sparql-query"},
            body=b"ASK { ?s ?p ?o }",
        )
        response = run(client.internet.dispatch(request))
        assert json.loads(response.text)["boolean"] is True

    def test_malformed_query_400(self, endpoint_client):
        client, _ = endpoint_client
        url = f"https://ep.example/sparql?query={quote('NOT SPARQL {')}"
        assert run(client.fetch(url)).status == 400

    def test_missing_query_400(self, endpoint_client):
        client, _ = endpoint_client
        assert run(client.fetch("https://ep.example/sparql")).status == 400

    def test_query_counter(self, endpoint_client):
        client, app = endpoint_client
        self.fetch_json(client, "ASK { ?s ?p ?o }")
        self.fetch_json(client, "ASK { ?s ?p ?o }")
        assert app.queries_served == 2


class TestPodEndpoints:
    def test_every_pod_gets_an_endpoint(self, tiny_universe):
        endpoints = attach_pod_endpoints(tiny_universe)
        assert len(endpoints) == tiny_universe.person_count
        assert all(url.startswith(ENDPOINT_ORIGIN) for url in endpoints)

    def test_endpoint_serves_pod_data(self, tiny_universe):
        endpoints = attach_pod_endpoints(tiny_universe)
        client = tiny_universe.client(latency=NoLatency())
        webid = tiny_universe.webid(0)
        pod_id = tiny_universe.pod_of(0).base_url.rstrip("/").rsplit("/", 1)[-1]
        endpoint = next(url for url in endpoints if pod_id in url)
        query = f"ASK {{ <{webid}> ?p ?o }}"
        response = run(client.fetch(f"{endpoint}?query={quote(query)}"))
        assert json.loads(response.text)["boolean"] is True


class TestFederatedEngine:
    def test_matches_oracle_on_discover_query(self, tiny_universe):
        endpoints = attach_pod_endpoints(tiny_universe)
        engine = FederatedQueryEngine(tiny_universe.client(latency=NoLatency()), endpoints)
        query = discover_query(tiny_universe, 1, 1)
        results, stats = engine.execute_sync(query.text)
        assert set(results) == oracle_bindings(tiny_universe, query)
        assert stats.result_count == len(results)

    def test_source_selection_probes_every_endpoint(self, tiny_universe):
        endpoints = attach_pod_endpoints(tiny_universe)
        engine = FederatedQueryEngine(tiny_universe.client(latency=NoLatency()), endpoints)
        query = discover_query(tiny_universe, 4, 1)
        _, stats = engine.execute_sync(query.text)
        pattern_count = query.text.count(";") + 1  # crude but stable here
        assert stats.ask_probes == stats.endpoints * pattern_count

    def test_batching_reduces_requests(self, tiny_universe):
        endpoints = attach_pod_endpoints(tiny_universe)
        query = discover_query(tiny_universe, 2, 1)
        batched = FederatedQueryEngine(
            tiny_universe.client(latency=NoLatency()), endpoints, batch_size=20
        )
        unbatched = FederatedQueryEngine(
            tiny_universe.client(latency=NoLatency()), endpoints, batch_size=1
        )
        results_batched, stats_batched = batched.execute_sync(query.text)
        results_unbatched, stats_unbatched = unbatched.execute_sync(query.text)
        assert set(results_batched) == set(results_unbatched)
        assert stats_batched.pattern_requests < stats_unbatched.pattern_requests

    def test_unsupported_query_shape_rejected(self, tiny_universe):
        endpoints = attach_pod_endpoints(tiny_universe)
        engine = FederatedQueryEngine(tiny_universe.client(latency=NoLatency()), endpoints)
        with pytest.raises(ValueError):
            engine.execute_sync("SELECT ?a WHERE { { ?a ?p 1 } UNION { ?a ?p 2 } }")
