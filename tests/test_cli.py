"""Tests for the command-line interfaces (paper Fig. 2)."""

import json

import pytest

from repro.cli import build_arg_parser, main as ltqp_main
from repro.solidbench.cli import main as solidbench_main


class TestLtqpCli:
    def test_discover_query_prints_json_lines(self, capsys):
        code = ltqp_main(["--simulate", "0.01", "--discover", "1.5", "--no-latency"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out
        for line in out:
            parsed = json.loads(line)
            assert "messageId" in parsed

    def test_fig2_output_format(self, capsys):
        # Fig. 2 shows typed literals rendered as "value"^^datatype.
        ltqp_main(["--simulate", "0.01", "--discover", "6.1", "--no-latency"])
        first = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert first["forumId"].startswith('"')
        assert "^^http://www.w3.org/2001/XMLSchema#long" in first["forumId"]
        assert first["forumTitle"].startswith('"')

    def test_custom_query_with_explicit_seed(self, capsys, tiny_universe):
        webid = tiny_universe.webid(0)
        query = (
            "PREFIX snvoc: <https://solidbench.linkeddatafragments.org/www.ldbc.eu/"
            "ldbc_socialnet/1.0/vocabulary/> "
            f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{webid}> ; snvoc:content ?c }}"
        )
        code = ltqp_main(["--simulate", "0.01", "--bench-seed", "7", "--no-latency", webid, query])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_limit_flag(self, capsys):
        ltqp_main(["--simulate", "0.01", "--discover", "2.1", "--no-latency", "--limit", "3"])
        assert len(capsys.readouterr().out.strip().splitlines()) == 3

    def test_waterfall_flag_writes_stderr(self, capsys):
        ltqp_main(["--simulate", "0.01", "--discover", "1.1", "--no-latency", "--waterfall"])
        err = capsys.readouterr().err
        assert "total:" in err and "requests" in err

    def test_missing_query_errors(self, capsys):
        assert ltqp_main(["--simulate", "0.01"]) == 2

    def test_login_flag(self, capsys):
        code = ltqp_main(["--simulate", "0.01", "--discover", "1.1", "--no-latency", "--idp", "0"])
        assert code == 0
        assert "logged in as" in capsys.readouterr().err

    def test_arg_parser_defaults(self):
        args = build_arg_parser().parse_args([])
        assert args.simulate == 0.02 and args.idp == "void"


class TestSolidbenchCli:
    def test_stats_report(self, capsys):
        code = solidbench_main(["--scale", "0.01"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["generated"]["pods"] == 15
        assert report["paper_default_scale"]["pods"] == 1531

    def test_queries_flag_prints_37(self, capsys):
        solidbench_main(["--scale", "0.01", "--queries"])
        out = capsys.readouterr().out
        assert out.count("### Discover") == 37

    def test_out_writes_turtle_files(self, tmp_path, capsys):
        solidbench_main(["--scale", "0.01", "--out", str(tmp_path)])
        files = list(tmp_path.rglob("*.ttl"))
        assert files
        card = next(p for p in files if p.name == "card.ttl")
        assert "publicTypeIndex" in card.read_text()


class TestCliFormatsAndExplain:
    def test_csv_format(self, capsys):
        from repro.cli import main as cli_main

        cli_main(["--simulate", "0.01", "--discover", "6.1", "--no-latency", "--format", "csv"])
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "forumId,forumTitle"

    def test_tsv_format(self, capsys):
        from repro.cli import main as cli_main

        cli_main(["--simulate", "0.01", "--discover", "6.1", "--no-latency", "--format", "tsv"])
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "?forumId\t?forumTitle"

    def test_json_format_is_sparql_results_document(self, capsys):
        import json as json_module

        from repro.cli import main as cli_main

        cli_main(["--simulate", "0.01", "--discover", "1.1", "--no-latency", "--format", "json"])
        document = json_module.loads(capsys.readouterr().out)
        assert document["head"]["vars"]
        assert document["results"]["bindings"]

    def test_xml_format(self, capsys):
        from repro.cli import main as cli_main

        cli_main(["--simulate", "0.01", "--discover", "1.1", "--no-latency", "--format", "xml"])
        out = capsys.readouterr().out
        assert out.startswith("<?xml")
        assert "sparql-results#" in out

    def test_explain_flag(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["--simulate", "0.01", "--discover", "1.1", "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "zero-knowledge join order" in out
        assert "extractors:" in out


class TestQueuePolicyFlag:
    def test_default_is_fifo(self):
        assert build_arg_parser().parse_args([]).queue_policy == "fifo"

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["--queue-policy", "random"])

    @pytest.mark.parametrize("policy", ["fifo", "lifo", "priority"])
    def test_each_policy_runs_and_answers(self, policy, capsys):
        code = ltqp_main(
            [
                "--simulate", "0.01", "--bench-seed", "7",
                "--discover", "1.5", "--no-latency",
                "--queue-policy", policy,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        # The traversal order changes but the answer must not: all three
        # disciplines exhaust the same reachable subweb.
        assert len(out) == 33


class TestServeCommand:
    def test_serve_parser_defaults(self):
        from repro.cli import build_serve_arg_parser

        args = build_serve_arg_parser().parse_args([])
        assert args.max_concurrent == 8 and args.max_queued == 32
        assert args.queue_policy == "fifo" and args.port == 8765
        assert args.store_path is None and args.backend is None

    def test_serve_stack_warm_restart_over_store_path(self, tmp_path):
        import urllib.request
        from urllib.parse import quote

        from repro.cli import build_serve_arg_parser, build_service_stack
        from repro.solidbench import discover_query

        argv = [
            "--simulate", "0.01", "--bench-seed", "7", "--port", "0",
            "--no-latency", "--store-path", str(tmp_path / "store.sqlite"),
        ]

        def run_lifetime():
            args = build_serve_arg_parser().parse_args(argv)
            server = build_service_stack(args)
            server.start()
            try:
                named = discover_query(server.universe, 1, 5)
                url = (
                    f"{server.url}sparql?query={quote(named.text)}"
                    f"&seeds={quote(','.join(named.seeds))}"
                )
                with urllib.request.urlopen(url, timeout=60) as response:
                    document = json.loads(response.read().decode("utf-8"))
                bindings = document["results"]["bindings"]
                with urllib.request.urlopen(server.url + "status.json", timeout=10) as r:
                    status = json.loads(r.read().decode("utf-8"))
                return bindings, status
            finally:
                server.stop()
                server.service_host.stop()

        cold_bindings, cold_status = run_lifetime()
        assert cold_status["service"]["storage"]["kind"] == "sqlite"
        assert cold_status["service"]["document_store"]["parses"] > 0

        # A brand-new stack over the same path answers from the store.
        warm_bindings, warm_status = run_lifetime()
        assert warm_bindings == cold_bindings
        assert warm_status["service"]["document_store"]["parses"] == 0
        assert warm_status["service"]["document_store"]["hits"] > 0

    def test_serve_stack_answers_over_http(self):
        import urllib.request
        from urllib.parse import quote

        from repro.cli import build_serve_arg_parser, build_service_stack
        from repro.solidbench import discover_query

        args = build_serve_arg_parser().parse_args(
            ["--simulate", "0.01", "--bench-seed", "7", "--port", "0",
             "--no-latency", "--max-concurrent", "2"]
        )
        server = build_service_stack(args)
        server.start()
        try:
            named = discover_query(server.universe, 1, 5)
            url = (
                f"{server.url}sparql?query={quote(named.text)}"
                f"&seeds={quote(','.join(named.seeds))}"
            )
            with urllib.request.urlopen(url, timeout=60) as response:
                document = json.loads(response.read().decode("utf-8"))
            assert document["results"]["bindings"]
            with urllib.request.urlopen(server.url + "status.json", timeout=10) as r:
                status = json.loads(r.read().decode("utf-8"))
            assert status["schema"] == 2
            assert status["mode"] == "single"
            assert status["service"]["completed"] == 1
        finally:
            server.stop()
            server.service_host.stop()
