"""Unit tests for zero-knowledge query planning."""

from repro.rdf import Literal, NamedNode, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.algebra import PathPattern, PredicatePath
from repro.sparql.planner import pattern_score, plan_bgp_order


def n(suffix):
    return NamedNode(f"http://x/{suffix}")


V = Variable


class TestPatternScore:
    def test_more_bound_terms_score_higher(self):
        fully = TriplePattern(n("s"), n("p"), Literal("o"))
        partial = TriplePattern(V("s"), n("p"), Literal("o"))
        assert pattern_score(fully, frozenset(), frozenset()) > pattern_score(
            partial, frozenset(), frozenset()
        )

    def test_subject_bound_beats_object_bound(self):
        subject_bound = TriplePattern(n("s"), n("p"), V("o"))
        object_bound = TriplePattern(V("s"), n("p"), Literal("o"))
        assert pattern_score(subject_bound, frozenset(), frozenset()) > pattern_score(
            object_bound, frozenset(), frozenset()
        )

    def test_seed_iri_bonus(self):
        with_seed = pattern_score(
            TriplePattern(n("seed"), n("p"), V("o")), frozenset(), frozenset({"http://x/seed"})
        )
        without = pattern_score(
            TriplePattern(n("other"), n("p"), V("o")), frozenset(), frozenset({"http://x/seed"})
        )
        assert with_seed > without

    def test_previously_bound_variables_count(self):
        pattern = TriplePattern(V("m"), n("p"), V("o"))
        unbound_score = pattern_score(pattern, frozenset(), frozenset())
        bound_score = pattern_score(pattern, frozenset({V("m")}), frozenset())
        assert bound_score > unbound_score
        assert bound_score[0] == 1  # connected


class TestPlanOrder:
    def test_most_selective_first(self):
        selective = TriplePattern(n("person"), n("likes"), V("m"))
        broad = TriplePattern(V("m"), n("content"), V("c"))
        ordered = plan_bgp_order([broad, selective])
        assert ordered[0] is selective

    def test_connectedness_avoids_cartesian_products(self):
        anchor = TriplePattern(n("person"), n("likes"), V("m"))
        connected = TriplePattern(V("m"), n("creator"), V("p2"))
        disconnected = TriplePattern(V("other"), n("content"), V("c"))
        ordered = plan_bgp_order([disconnected, connected, anchor])
        assert ordered[0] is anchor
        assert ordered[1] is connected
        assert ordered[2] is disconnected

    def test_is_a_permutation(self):
        patterns = [
            TriplePattern(V("a"), n("p"), V("b")),
            TriplePattern(V("b"), n("q"), V("c")),
            TriplePattern(n("x"), n("r"), V("a")),
        ]
        ordered = plan_bgp_order(patterns)
        assert sorted(map(id, ordered)) == sorted(map(id, patterns))

    def test_stable_for_ties(self):
        first = TriplePattern(V("a"), n("p"), V("b"))
        second = TriplePattern(V("a"), n("q"), V("c"))
        assert plan_bgp_order([first, second])[0] is first

    def test_path_patterns_participate(self):
        path = PathPattern(n("person"), PredicatePath(n("likes")), V("m"))
        broad = TriplePattern(V("m"), n("content"), V("c"))
        ordered = plan_bgp_order([broad, path])
        assert ordered[0] is path

    def test_empty_input(self):
        assert plan_bgp_order([]) == []
