"""Unit tests for property-path evaluation."""

import pytest

from repro.rdf import Graph, NamedNode, Triple, parse_turtle
from repro.sparql.algebra import (
    AlternativePath,
    InversePath,
    NegatedPropertySet,
    OneOrMorePath,
    PredicatePath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
)
from repro.sparql.paths import evaluate_path, path_predicates

DATA = """
@prefix ex: <http://x/> .
ex:a ex:p ex:b . ex:b ex:p ex:c . ex:c ex:p ex:d .
ex:a ex:q ex:c .
ex:d ex:r ex:a .
"""


def n(suffix):
    return NamedNode(f"http://x/{suffix}")


@pytest.fixture(scope="module")
def graph():
    return Graph(parse_turtle(DATA))


P = PredicatePath(n("p"))
Q = PredicatePath(n("q"))
R = PredicatePath(n("r"))


def pairs(graph, subject, path, object=None):
    return set(evaluate_path(graph, subject, path, object))


class TestBasicPaths:
    def test_predicate(self, graph):
        assert pairs(graph, n("a"), P) == {(n("a"), n("b"))}

    def test_inverse(self, graph):
        assert pairs(graph, n("b"), InversePath(P)) == {(n("b"), n("a"))}

    def test_sequence(self, graph):
        assert pairs(graph, n("a"), SequencePath((P, P))) == {(n("a"), n("c"))}

    def test_sequence_bound_object_only(self, graph):
        assert pairs(graph, None, SequencePath((P, P)), n("c")) == {(n("a"), n("c"))}

    def test_alternative(self, graph):
        assert pairs(graph, n("a"), AlternativePath((P, Q))) == {
            (n("a"), n("b")),
            (n("a"), n("c")),
        }

    def test_zero_or_one(self, graph):
        assert pairs(graph, n("a"), ZeroOrOnePath(P)) == {(n("a"), n("a")), (n("a"), n("b"))}


class TestTransitivePaths:
    def test_one_or_more_forward(self, graph):
        assert pairs(graph, n("a"), OneOrMorePath(P)) == {
            (n("a"), n("b")),
            (n("a"), n("c")),
            (n("a"), n("d")),
        }

    def test_one_or_more_backward(self, graph):
        assert pairs(graph, None, OneOrMorePath(P), n("c")) == {
            (n("b"), n("c")),
            (n("a"), n("c")),
        }

    def test_zero_or_more_includes_self(self, graph):
        result = pairs(graph, n("a"), ZeroOrMorePath(P))
        assert (n("a"), n("a")) in result
        assert (n("a"), n("d")) in result

    def test_cycle_terminates(self):
        graph = Graph(parse_turtle("@prefix ex: <http://x/> . ex:a ex:p ex:b . ex:b ex:p ex:a ."))
        result = pairs(graph, n("a"), OneOrMorePath(P))
        assert result == {(n("a"), n("b")), (n("a"), n("a"))}

    def test_both_ends_bound(self, graph):
        assert pairs(graph, n("a"), OneOrMorePath(P), n("d")) == {(n("a"), n("d"))}
        assert pairs(graph, n("d"), OneOrMorePath(P), n("a")) == set()

    def test_unbounded_both_sides(self, graph):
        result = pairs(graph, None, OneOrMorePath(P))
        assert (n("a"), n("d")) in result and (n("b"), n("d")) in result


class TestNegatedSets:
    def test_negated_forward(self, graph):
        result = pairs(graph, n("a"), NegatedPropertySet(forward=(n("p"),)))
        assert result == {(n("a"), n("c"))}  # only the ex:q edge remains

    def test_negated_inverse(self, graph):
        result = pairs(graph, n("a"), NegatedPropertySet(forward=(), inverse=(n("p"),)))
        # inverse edges into a, except via p: only d -r-> a reversed.
        assert result == {(n("a"), n("d"))}


class TestPathPredicates:
    def test_collects_all_mentioned_predicates(self):
        path = AlternativePath((SequencePath((P, InversePath(Q))), OneOrMorePath(R)))
        assert path_predicates(path) == {n("p"), n("q"), n("r")}

    def test_negated_set_predicates(self):
        assert path_predicates(NegatedPropertySet((n("p"),), (n("q"),))) == {n("p"), n("q")}
