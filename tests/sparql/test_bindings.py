"""Unit tests for solution mappings."""

from repro.rdf import Literal, NamedNode, Variable
from repro.sparql.bindings import EMPTY_BINDING, Binding


def v(name):
    return Variable(name)


class TestBinding:
    def test_mapping_interface(self):
        b = Binding({v("x"): Literal("1")})
        assert b[v("x")] == Literal("1")
        assert v("x") in b and v("y") not in b
        assert len(b) == 1
        assert list(b) == [v("x")]

    def test_compatible_shares_agreeing_values(self):
        a = Binding({v("x"): Literal("1"), v("y"): Literal("2")})
        b = Binding({v("y"): Literal("2"), v("z"): Literal("3")})
        assert a.compatible(b) and b.compatible(a)

    def test_incompatible_on_conflict(self):
        a = Binding({v("x"): Literal("1")})
        b = Binding({v("x"): Literal("2")})
        assert not a.compatible(b)
        assert a.merged(b) is None

    def test_merged_unions(self):
        a = Binding({v("x"): Literal("1")})
        b = Binding({v("y"): Literal("2")})
        merged = a.merged(b)
        assert merged == Binding({v("x"): Literal("1"), v("y"): Literal("2")})

    def test_merge_with_empty_returns_self(self):
        a = Binding({v("x"): Literal("1")})
        assert a.merged(EMPTY_BINDING) is a
        assert EMPTY_BINDING.merged(a) is a

    def test_extended_does_not_mutate(self):
        a = Binding({v("x"): Literal("1")})
        b = a.extended(v("y"), Literal("2"))
        assert v("y") not in a and v("y") in b

    def test_projected(self):
        a = Binding({v("x"): Literal("1"), v("y"): Literal("2")})
        assert a.projected([v("x"), v("missing")]) == Binding({v("x"): Literal("1")})

    def test_key_with_unbound_positions(self):
        a = Binding({v("x"): Literal("1")})
        assert a.key([v("x"), v("y")]) == (Literal("1"), None)

    def test_hash_consistency(self):
        a = Binding({v("x"): NamedNode("http://x/1")})
        b = Binding({v("x"): NamedNode("http://x/1")})
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_empty_binding_is_falsy_length(self):
        assert len(EMPTY_BINDING) == 0
