"""Unit tests for the snapshot evaluator."""

import pytest

from repro.rdf import Dataset, Graph, Literal, NamedNode, Quad, Triple, Variable, parse_turtle
from repro.sparql import SnapshotEvaluator, evaluate_query, parse_query
from repro.sparql.bindings import Binding

DATA = """
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex: <http://example.org/> .
ex:alice foaf:name "Alice" ; foaf:knows ex:bob, ex:carol ; ex:age 30 .
ex:bob   foaf:name "Bob" ;   foaf:knows ex:carol ;         ex:age 25 .
ex:carol foaf:name "Carol" ;                               ex:age 35 .
ex:dave  foaf:name "Dave" .
"""

PREFIXES = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nPREFIX ex: <http://example.org/>\n"


@pytest.fixture(scope="module")
def graph():
    return Graph(parse_turtle(DATA))


def rows(graph, text):
    return evaluate_query(graph, parse_query(PREFIXES + text))


def values(graph, text, variable):
    return sorted(
        binding[Variable(variable)].value
        for binding in rows(graph, text)
        if Variable(variable) in binding
    )


class TestBGP:
    def test_single_pattern(self, graph):
        assert values(graph, "SELECT ?n WHERE { ex:alice foaf:name ?n }", "n") == ["Alice"]

    def test_join_two_patterns(self, graph):
        result = values(
            graph, "SELECT ?n WHERE { ex:alice foaf:knows ?f . ?f foaf:name ?n }", "n"
        )
        assert result == ["Bob", "Carol"]

    def test_no_match(self, graph):
        assert rows(graph, "SELECT ?x WHERE { ex:nobody foaf:name ?x }") == []

    def test_empty_bgp_yields_one_empty_solution(self, graph):
        assert len(rows(graph, "SELECT * WHERE { }")) == 1

    def test_shared_variable_in_one_pattern(self, graph):
        # ?x knows ?x: nobody knows themself.
        assert rows(graph, "SELECT ?x WHERE { ?x foaf:knows ?x }") == []

    def test_variable_predicate(self, graph):
        predicates = values(graph, "SELECT ?p WHERE { ex:dave ?p ?o }", "p")
        assert predicates == ["http://xmlns.com/foaf/0.1/name"]


class TestFilters:
    def test_numeric_filter(self, graph):
        result = values(graph, "SELECT ?n WHERE { ?p foaf:name ?n ; ex:age ?a FILTER(?a > 26) }", "n")
        assert result == ["Alice", "Carol"]

    def test_filter_error_drops_solution(self, graph):
        # Dave has no age; comparing unbound errors → dropped, not crash.
        result = values(
            graph,
            "SELECT ?n WHERE { ?p foaf:name ?n OPTIONAL { ?p ex:age ?a } FILTER(?a > 26) }",
            "n",
        )
        assert result == ["Alice", "Carol"]

    def test_regex_filter(self, graph):
        result = values(graph, 'SELECT ?n WHERE { ?p foaf:name ?n FILTER REGEX(?n, "^[AB]") }', "n")
        assert result == ["Alice", "Bob"]


class TestOptional:
    def test_optional_keeps_unmatched(self, graph):
        result = rows(
            graph, "SELECT ?n ?f WHERE { ?p foaf:name ?n OPTIONAL { ?p foaf:knows ?f } }"
        )
        names_without_friends = [
            b[Variable("n")].value for b in result if Variable("f") not in b
        ]
        assert sorted(names_without_friends) == ["Carol", "Dave"]

    def test_optional_with_condition(self, graph):
        result = rows(
            graph,
            "SELECT ?n ?a WHERE { ?p foaf:name ?n OPTIONAL { ?p ex:age ?a FILTER(?a > 28) } }",
        )
        bound = {b[Variable("n")].value for b in result if Variable("a") in b}
        assert bound == {"Alice", "Carol"}
        assert len(result) == 4  # everyone appears


class TestUnionMinus:
    def test_union(self, graph):
        result = values(
            graph,
            "SELECT ?x WHERE { { ex:alice foaf:knows ?x } UNION { ex:bob foaf:knows ?x } }",
            "x",
        )
        assert result == [
            "http://example.org/bob",
            "http://example.org/carol",
            "http://example.org/carol",
        ]

    def test_minus(self, graph):
        result = values(
            graph,
            "SELECT ?x WHERE { ?x ex:age ?a MINUS { ?x foaf:knows ex:carol } }",
            "x",
        )
        assert result == ["http://example.org/carol"]

    def test_minus_no_shared_variables_removes_nothing(self, graph):
        result = rows(graph, "SELECT ?x WHERE { ?x ex:age ?a MINUS { ?y foaf:name \"Zed\" } }")
        assert len(result) == 3


class TestModifiers:
    def test_order_by_desc_with_limit(self, graph):
        result = rows(graph, "SELECT ?n WHERE { ?p foaf:name ?n ; ex:age ?a } ORDER BY DESC(?a) LIMIT 2")
        assert [b[Variable("n")].value for b in result] == ["Carol", "Alice"]

    def test_offset(self, graph):
        result = rows(graph, "SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY ?n LIMIT 2 OFFSET 1")
        assert [b[Variable("n")].value for b in result] == ["Bob", "Carol"]

    def test_distinct(self, graph):
        result = rows(graph, "SELECT DISTINCT ?o WHERE { ?s foaf:knows ?o }")
        assert len(result) == 2

    def test_projection_drops_other_variables(self, graph):
        result = rows(graph, "SELECT ?n WHERE { ?p foaf:name ?n }")
        assert all(set(b.keys()) == {Variable("n")} for b in result)

    def test_bind(self, graph):
        result = rows(graph, "SELECT ?next WHERE { ex:alice ex:age ?a BIND(?a + 1 AS ?next) }")
        assert result[0][Variable("next")].value == "31"

    def test_values_join(self, graph):
        result = values(
            graph,
            "SELECT ?n WHERE { VALUES ?p { ex:alice ex:bob } ?p foaf:name ?n }",
            "n",
        )
        assert result == ["Alice", "Bob"]


class TestAggregatesEndToEnd:
    def test_count_group(self, graph):
        result = rows(
            graph, "SELECT ?p (COUNT(?f) AS ?c) WHERE { ?p foaf:knows ?f } GROUP BY ?p"
        )
        counts = {b[Variable("p")].value.rsplit("/", 1)[-1]: b[Variable("c")].value for b in result}
        assert counts == {"alice": "2", "bob": "1"}

    def test_global_count(self, graph):
        result = rows(graph, "SELECT (COUNT(*) AS ?n) WHERE { ?s foaf:name ?o }")
        assert result[0][Variable("n")].value == "4"

    def test_avg(self, graph):
        result = rows(graph, "SELECT (AVG(?a) AS ?avg) WHERE { ?p ex:age ?a }")
        assert result[0][Variable("avg")].value == "30"

    def test_min_max_sum(self, graph):
        result = rows(
            graph,
            "SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) (SUM(?a) AS ?total) WHERE { ?p ex:age ?a }",
        )
        binding = result[0]
        assert binding[Variable("lo")].value == "25"
        assert binding[Variable("hi")].value == "35"
        assert binding[Variable("total")].value == "90"

    def test_having(self, graph):
        result = rows(
            graph,
            "SELECT ?p (COUNT(?f) AS ?c) WHERE { ?p foaf:knows ?f } GROUP BY ?p HAVING (COUNT(?f) > 1)",
        )
        assert len(result) == 1
        assert result[0][Variable("p")] == NamedNode("http://example.org/alice")

    def test_group_concat(self, graph):
        result = rows(
            graph,
            'SELECT (GROUP_CONCAT(?n; SEPARATOR=", ") AS ?all) WHERE { ?p foaf:name ?n } ORDER BY ?n',
        )
        names = set(result[0][Variable("all")].value.split(", "))
        assert names == {"Alice", "Bob", "Carol", "Dave"}

    def test_sample(self, graph):
        result = rows(graph, "SELECT (SAMPLE(?n) AS ?one) WHERE { ?p foaf:name ?n }")
        assert result[0][Variable("one")].value in {"Alice", "Bob", "Carol", "Dave"}

    def test_count_distinct(self, graph):
        result = rows(graph, "SELECT (COUNT(DISTINCT ?o) AS ?c) WHERE { ?s foaf:knows ?o }")
        assert result[0][Variable("c")].value == "2"


class TestExists:
    def test_filter_exists(self, graph):
        result = values(
            graph,
            "SELECT ?n WHERE { ?p foaf:name ?n FILTER EXISTS { ?p foaf:knows ?x } }",
            "n",
        )
        assert result == ["Alice", "Bob"]

    def test_filter_not_exists(self, graph):
        result = values(
            graph,
            "SELECT ?n WHERE { ?p foaf:name ?n FILTER NOT EXISTS { ?p foaf:knows ?x } }",
            "n",
        )
        assert result == ["Carol", "Dave"]


class TestAskConstruct:
    def test_ask_true_false(self, graph):
        assert evaluate_query(graph, parse_query(PREFIXES + "ASK { ex:alice foaf:knows ex:bob }"))
        assert not evaluate_query(graph, parse_query(PREFIXES + "ASK { ex:bob foaf:knows ex:alice }"))

    def test_construct(self, graph):
        triples = evaluate_query(
            graph,
            parse_query(PREFIXES + "CONSTRUCT { ?b ex:knownBy ?a } WHERE { ?a foaf:knows ?b }"),
        )
        assert Triple(
            NamedNode("http://example.org/bob"),
            NamedNode("http://example.org/knownBy"),
            NamedNode("http://example.org/alice"),
        ) in triples
        assert len(triples) == 3

    def test_construct_skips_unbound(self, graph):
        triples = evaluate_query(
            graph,
            parse_query(
                PREFIXES
                + "CONSTRUCT { ?p ex:friend ?f } WHERE { ?p foaf:name ?n OPTIONAL { ?p foaf:knows ?f } }"
            ),
        )
        subjects = {t.subject.value.rsplit("/", 1)[-1] for t in triples}
        assert subjects == {"alice", "bob"}


class TestGraphQueries:
    def test_named_graph_pattern(self):
        ds = Dataset()
        ds.add(Quad(NamedNode("http://x/a"), NamedNode("http://x/p"), Literal("1"), NamedNode("http://g/1")))
        ds.add(Quad(NamedNode("http://x/b"), NamedNode("http://x/p"), Literal("2"), NamedNode("http://g/2")))
        query = parse_query("SELECT ?g ?s WHERE { GRAPH ?g { ?s <http://x/p> ?o } }")
        result = evaluate_query(ds, query)
        graphs = {b[Variable("g")].value for b in result}
        assert graphs == {"http://g/1", "http://g/2"}

    def test_specific_graph(self):
        ds = Dataset()
        ds.add(Quad(NamedNode("http://x/a"), NamedNode("http://x/p"), Literal("1"), NamedNode("http://g/1")))
        query = parse_query("SELECT ?s WHERE { GRAPH <http://g/1> { ?s ?p ?o } }")
        assert len(evaluate_query(ds, query)) == 1
        query_missing = parse_query("SELECT ?s WHERE { GRAPH <http://g/9> { ?s ?p ?o } }")
        assert evaluate_query(ds, query_missing) == []

    def test_graph_requires_dataset(self, graph):
        query = parse_query("SELECT ?s WHERE { GRAPH ?g { ?s ?p ?o } }")
        with pytest.raises(ValueError):
            evaluate_query(graph, query)


class TestSubSelect:
    def test_nested_limit(self, graph):
        query = parse_query(
            PREFIXES
            + "SELECT ?n WHERE { { SELECT ?p WHERE { ?p ex:age ?a } ORDER BY DESC(?a) LIMIT 1 } ?p foaf:name ?n }"
        )
        result = evaluate_query(graph, query)
        assert [b[Variable("n")].value for b in result] == ["Carol"]
