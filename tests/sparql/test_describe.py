"""Tests for DESCRIBE queries (concise bounded descriptions)."""

import pytest

from repro.rdf import BlankNode, Graph, NamedNode, Variable, parse_turtle
from repro.sparql import SparqlParseError, evaluate_query, parse_query

DATA = """
@prefix ex: <http://x/> .
ex:a ex:p ex:b ;
     ex:q [ ex:r 1 ; ex:s [ ex:t 2 ] ] .
ex:b ex:p ex:c ; ex:label "B" .
ex:c ex:p ex:a .
"""


def n(suffix):
    return NamedNode(f"http://x/{suffix}")


@pytest.fixture(scope="module")
def graph():
    return Graph(parse_turtle(DATA))


class TestParsing:
    def test_describe_iri(self):
        query = parse_query("DESCRIBE <http://x/a>")
        assert query.form == "DESCRIBE"
        assert query.describe_targets == (n("a"),)

    def test_describe_multiple_targets(self):
        query = parse_query("PREFIX ex: <http://x/> DESCRIBE ex:a ex:b")
        assert len(query.describe_targets) == 2

    def test_describe_variable_with_where(self):
        query = parse_query("PREFIX ex: <http://x/> DESCRIBE ?x WHERE { ?x ex:p ex:c }")
        assert query.describe_targets == (Variable("x"),)

    def test_describe_star(self):
        query = parse_query("PREFIX ex: <http://x/> DESCRIBE * WHERE { ?x ex:p ?y }")
        assert query.describe_targets == ()

    def test_describe_without_targets_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_query("DESCRIBE WHERE { ?x ?p ?o }")


class TestEvaluation:
    def test_cbd_includes_blank_node_closure(self, graph):
        triples = evaluate_query(graph, parse_query("DESCRIBE <http://x/a>"))
        subjects = {t.subject for t in triples}
        # a's direct triples plus the nested blank node descriptions.
        assert n("a") in subjects
        assert sum(1 for s in subjects if isinstance(s, BlankNode)) == 2
        assert len(triples) == 5

    def test_cbd_stops_at_named_nodes(self, graph):
        triples = evaluate_query(graph, parse_query("DESCRIBE <http://x/a>"))
        # b's own triples are not part of a's description.
        assert not any(t.subject == n("b") for t in triples)

    def test_describe_variable_binds_through_where(self, graph):
        query = parse_query("PREFIX ex: <http://x/> DESCRIBE ?x WHERE { ?x ex:p ex:c }")
        triples = evaluate_query(graph, query)
        assert {t.subject for t in triples} == {n("b")}
        assert len(triples) == 2

    def test_describe_star_describes_all_bound_resources(self, graph):
        query = parse_query("PREFIX ex: <http://x/> DESCRIBE * WHERE { ex:c ex:p ?y }")
        triples = evaluate_query(graph, query)
        assert any(t.subject == n("a") for t in triples)

    def test_describe_unknown_resource_is_empty(self, graph):
        assert evaluate_query(graph, parse_query("DESCRIBE <http://x/nothing>")) == []

    def test_duplicate_descriptions_merged(self, graph):
        query = parse_query("PREFIX ex: <http://x/> DESCRIBE ex:a ex:a")
        triples = evaluate_query(graph, query)
        assert len(triples) == len(set(triples))


class TestEngineIntegration:
    def test_describe_over_traversal(self, tiny_universe):
        engine = tiny_universe.fast_engine()
        webid = tiny_universe.webid(0)
        result = engine.execute_sync(f"DESCRIBE <{webid}>")
        assert len(result) > 0
        # DESCRIBE is monotonic: CBD triples stream as roots are discovered.
        assert result.stats.streaming
        subjects = {
            timed.binding[Variable("subject")] for timed in result.results
        }
        assert NamedNode(webid) in subjects

    def test_describe_target_becomes_seed(self, tiny_universe):
        from repro.ltqp import LinkTraversalEngine
        from repro.sparql import parse_query as pq

        webid = tiny_universe.webid(1)
        seeds = LinkTraversalEngine.seeds_from_query(pq(f"DESCRIBE <{webid}>"))
        assert seeds == [webid]
