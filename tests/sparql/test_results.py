"""Unit tests for result serialization formats."""

import json

from repro.rdf import BlankNode, Literal, NamedNode, Variable
from repro.rdf.terms import XSD_LONG
from repro.sparql.bindings import Binding
from repro.sparql.results import (
    binding_to_cli_line,
    binding_to_json_dict,
    results_to_csv,
    results_to_sparql_json,
)


def v(name):
    return Variable(name)


BINDING = Binding(
    {
        v("iri"): NamedNode("http://x/a"),
        v("lit"): Literal("plain"),
        v("typed"): Literal("755914244147", datatype=XSD_LONG),
        v("lang"): Literal("hoi", language="nl"),
        v("blank"): BlankNode("b0"),
    }
)


class TestSparqlJson:
    def test_term_shapes(self):
        d = binding_to_json_dict(BINDING)
        assert d["iri"] == {"type": "uri", "value": "http://x/a"}
        assert d["lit"] == {"type": "literal", "value": "plain"}
        assert d["typed"]["datatype"] == XSD_LONG
        assert d["lang"]["xml:lang"] == "nl"
        assert d["blank"] == {"type": "bnode", "value": "b0"}

    def test_document_structure(self):
        doc = json.loads(results_to_sparql_json([v("lit")], [BINDING]))
        assert doc["head"]["vars"] == ["lit"]
        assert doc["results"]["bindings"][0]["lit"]["value"] == "plain"


class TestCsv:
    def test_header_and_rows(self):
        text = results_to_csv([v("lit"), v("typed")], [BINDING])
        lines = text.strip().split("\r\n")
        assert lines[0] == "lit,typed"
        assert lines[1] == "plain,755914244147"

    def test_quoting(self):
        binding = Binding({v("x"): Literal('with,comma and "quote"')})
        text = results_to_csv([v("x")], [binding])
        assert '"with,comma and ""quote"""' in text

    def test_unbound_is_empty_cell(self):
        text = results_to_csv([v("x"), v("y")], [Binding({v("x"): Literal("a")})])
        assert text.strip().split("\r\n")[1] == "a,"


class TestCliFormat:
    def test_matches_paper_figure_2_shape(self):
        # Fig. 2 shows: {"forumId":"\"755914244147\"^^http://...#long", ...}
        line = binding_to_cli_line(BINDING, [v("typed")])
        parsed = json.loads(line)
        assert parsed["typed"] == f'"755914244147"^^{XSD_LONG}'

    def test_plain_literal_keeps_quotes(self):
        line = binding_to_cli_line(BINDING, [v("lit")])
        assert json.loads(line)["lit"] == '"plain"'

    def test_unbound_variables_omitted(self):
        line = binding_to_cli_line(BINDING, [v("lit"), v("missing")])
        assert "missing" not in json.loads(line)

    def test_iri_rendered_bare(self):
        line = binding_to_cli_line(BINDING, [v("iri")])
        assert json.loads(line)["iri"] == "http://x/a"
