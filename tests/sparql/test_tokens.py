"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.sparql.tokens import Token, TokenizeError, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_iriref(self):
        assert kinds("<http://x/a>") == [("IRIREF", "http://x/a")]

    def test_variables_both_sigils(self):
        assert kinds("?x $y") == [("VAR", "x"), ("VAR", "y")]

    def test_pname(self):
        assert kinds("foaf:name") == [("PNAME", "foaf:name")]

    def test_pname_with_empty_prefix(self):
        assert kinds(":local") == [("PNAME", ":local")]

    def test_keywords_case_insensitive(self):
        assert kinds("select WHERE Filter") == [
            ("KEYWORD", "SELECT"),
            ("KEYWORD", "WHERE"),
            ("KEYWORD", "FILTER"),
        ]

    def test_blank_node(self):
        assert kinds("_:b1") == [("BLANK", "b1")]

    def test_anon_and_nil(self):
        assert kinds("[] ( )") == [("ANON", "[]"), ("NIL", "()")]

    def test_comment_skipped(self):
        assert kinds("?x # comment here\n?y") == [("VAR", "x"), ("VAR", "y")]


class TestStringsAndNumbers:
    def test_string_with_escape(self):
        tokens = tokenize('"a\\nb"')
        assert tokens[0] == Token("STRING", "a\nb", 1, 1)

    def test_single_quoted(self):
        assert kinds("'hi'") == [("STRING", "hi")]

    def test_long_string(self):
        assert kinds('"""multi\nline"""')[0] == ("STRING", "multi\nline")

    def test_langtag(self):
        assert kinds('"x"@en-GB') == [("STRING", "x"), ("LANGTAG", "en-GB")]

    def test_datatype_markers(self):
        result = kinds('"5"^^<http://x/dt>')
        assert result == [("STRING", "5"), ("PUNCT", "^^"), ("IRIREF", "http://x/dt")]

    @pytest.mark.parametrize("number", ["42", "-3", "+7", "4.5", ".5", "1e3", "2.5E-2"])
    def test_numbers(self, number):
        assert kinds(number) == [("NUMBER", number)]

    def test_dot_is_punct_not_number(self):
        assert kinds(".")[0] == ("PUNCT", ".")

    def test_minus_between_vars_is_operator(self):
        assert kinds("?a - ?b") == [("VAR", "a"), ("PUNCT", "-"), ("VAR", "b")]

    def test_unterminated_string_raises(self):
        with pytest.raises(TokenizeError):
            tokenize('"never closed')


class TestOperators:
    def test_multichar_operators(self):
        assert kinds("&& || != <= >= ^^") == [
            ("PUNCT", "&&"),
            ("PUNCT", "||"),
            ("PUNCT", "!="),
            ("PUNCT", "<="),
            ("PUNCT", ">="),
            ("PUNCT", "^^"),
        ]

    def test_path_operators(self):
        assert kinds("a|b/c") == [
            ("KEYWORD", "A"),
            ("PUNCT", "|"),
            ("KEYWORD", "B"),
            ("PUNCT", "/"),
            ("KEYWORD", "C"),
        ]

    def test_comparison_lt_vs_iri(self):
        # "<" followed by a space is an operator, not an IRI opener.
        assert kinds("?a < 5") == [("VAR", "a"), ("PUNCT", "<"), ("NUMBER", "5")]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("?a\n  ?b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_terminates(self):
        assert tokenize("")[-1].kind == "EOF"
        assert tokenize("?x")[-1].kind == "EOF"
