"""Unit tests for the SPARQL parser and algebra translation."""

import pytest

from repro.rdf import Literal, NamedNode, Variable
from repro.rdf.terms import XSD_BOOLEAN, XSD_INTEGER
from repro.sparql import SparqlParseError, parse_query
from repro.sparql.algebra import (
    AggregateExpr,
    AlternativePath,
    BGP,
    Distinct,
    Extend,
    Filter,
    GraphOp,
    GroupBy,
    InversePath,
    Join,
    LeftJoin,
    Minus,
    OneOrMorePath,
    OrderBy,
    PredicatePath,
    Project,
    SequencePath,
    Slice,
    SubSelect,
    Union,
    ValuesOp,
    ZeroOrMorePath,
    is_monotonic,
)

EX = "PREFIX ex: <http://x/>\n"


def unwrap(node, *types):
    """Unwrap outer operators of the given types, returning the core."""
    while isinstance(node, types):
        node = node.input
    return node


class TestBasicForms:
    def test_select_projection_order(self):
        q = parse_query(EX + "SELECT ?b ?a WHERE { ?a ex:p ?b }")
        assert q.variables() == (Variable("b"), Variable("a"))

    def test_select_star_collects_variables(self):
        q = parse_query(EX + "SELECT * WHERE { ?a ex:p ?b }")
        assert set(q.variables()) == {Variable("a"), Variable("b")}

    def test_ask_form(self):
        q = parse_query("ASK { ?s ?p ?o }")
        assert q.form == "ASK"

    def test_construct_form_with_template(self):
        q = parse_query(EX + "CONSTRUCT { ?s ex:q ?o } WHERE { ?s ex:p ?o }")
        assert q.form == "CONSTRUCT"
        assert len(q.construct_template) == 1
        assert q.construct_template[0].predicate == NamedNode("http://x/q")

    def test_prefix_expansion(self):
        q = parse_query(EX + "SELECT ?s WHERE { ?s ex:p ex:o }")
        bgp = unwrap(q.where, Project)
        assert bgp.patterns[0].predicate == NamedNode("http://x/p")

    def test_base_resolution(self):
        q = parse_query("BASE <http://host/dir/>\nSELECT ?s WHERE { ?s <p> <o> }")
        bgp = unwrap(q.where, Project)
        assert bgp.patterns[0].predicate == NamedNode("http://host/dir/p")

    def test_undefined_prefix_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT ?s WHERE { ?s nope:p ?o }")

    def test_trailing_garbage_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT ?s WHERE { ?s ?p ?o } garbage")


class TestGroupPatterns:
    def test_optional_becomes_left_join(self):
        q = parse_query(EX + "SELECT ?a WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c } }")
        assert isinstance(unwrap(q.where, Project), LeftJoin)

    def test_optional_filter_becomes_join_condition(self):
        q = parse_query(
            EX + "SELECT ?a WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c FILTER(?c > 3) } }"
        )
        left_join = unwrap(q.where, Project)
        assert isinstance(left_join, LeftJoin)
        assert left_join.expression is not None

    def test_union(self):
        q = parse_query(EX + "SELECT ?a WHERE { { ?a ex:p ?b } UNION { ?a ex:q ?b } }")
        assert isinstance(unwrap(q.where, Project), Union)

    def test_chained_union(self):
        q = parse_query(
            EX + "SELECT ?a WHERE { { ?a ex:p ?b } UNION { ?a ex:q ?b } UNION { ?a ex:r ?b } }"
        )
        outer = unwrap(q.where, Project)
        assert isinstance(outer, Union) and isinstance(outer.left, Union)

    def test_minus(self):
        q = parse_query(EX + "SELECT ?a WHERE { ?a ex:p ?b MINUS { ?a ex:q ?b } }")
        assert isinstance(unwrap(q.where, Project), Minus)

    def test_filter_applies_at_group_end(self):
        q = parse_query(EX + "SELECT ?a WHERE { FILTER(?b > 3) ?a ex:p ?b }")
        assert isinstance(unwrap(q.where, Project), Filter)

    def test_bind(self):
        q = parse_query(EX + "SELECT ?c WHERE { ?a ex:p ?b BIND(?b + 1 AS ?c) }")
        assert isinstance(unwrap(q.where, Project), Extend)

    def test_values_inline(self):
        q = parse_query(EX + "SELECT ?a WHERE { VALUES ?a { ex:x ex:y } ?a ex:p ?b }")
        node = unwrap(q.where, Project)
        assert isinstance(node, Join)
        assert isinstance(node.left, ValuesOp) or isinstance(node.right, ValuesOp)

    def test_values_multi_column_with_undef(self):
        q = parse_query(EX + "SELECT * WHERE { VALUES (?a ?b) { (ex:x UNDEF) (ex:y 2) } }")
        values = unwrap(q.where, Project)
        assert isinstance(values, Join) or isinstance(values, ValuesOp)

    def test_graph_pattern(self):
        q = parse_query(EX + "SELECT ?s WHERE { GRAPH ?g { ?s ex:p ?o } }")
        assert isinstance(unwrap(q.where, Project), GraphOp)

    def test_subselect(self):
        q = parse_query(EX + "SELECT ?a WHERE { { SELECT ?a WHERE { ?a ex:p ?b } LIMIT 1 } }")
        assert isinstance(unwrap(q.where, Project), SubSelect)

    def test_blank_nodes_become_internal_variables(self):
        q = parse_query(EX + "SELECT ?m WHERE { ex:me ex:likes _:g . _:g ex:has ?m }")
        bgp = unwrap(q.where, Project)
        internal = {t for p in bgp.patterns for t in p.variables() if t.value.startswith("__bn")}
        assert internal
        assert all(v not in q.variables() for v in internal)

    def test_bracketed_blank_node_object(self):
        q = parse_query(EX + "SELECT ?x WHERE { ?x ex:p [ ex:q 1 ] }")
        bgp = unwrap(q.where, Project)
        assert len(bgp.patterns) == 2


class TestPropertyPaths:
    def path_of(self, text):
        q = parse_query(EX + text)
        bgp = unwrap(q.where, Project, Distinct)
        assert bgp.path_patterns, "expected a path pattern"
        return bgp.path_patterns[0].path

    def test_alternative(self):
        path = self.path_of("SELECT ?x WHERE { ?x (ex:a|ex:b) ?y }")
        assert isinstance(path, AlternativePath)

    def test_sequence(self):
        path = self.path_of("SELECT ?x WHERE { ?x ex:a/ex:b ?y }")
        assert isinstance(path, SequencePath)

    def test_inverse(self):
        path = self.path_of("SELECT ?x WHERE { ?x ^ex:a ?y }")
        assert isinstance(path, InversePath)

    def test_zero_or_more(self):
        path = self.path_of("SELECT ?x WHERE { ?x ex:a* ?y }")
        assert isinstance(path, ZeroOrMorePath)

    def test_one_or_more_of_alternative(self):
        path = self.path_of("SELECT ?x WHERE { ?x (ex:a|^ex:a)+ ?y }")
        assert isinstance(path, OneOrMorePath)
        assert isinstance(path.path, AlternativePath)

    def test_plain_predicate_is_not_a_path_pattern(self):
        q = parse_query(EX + "SELECT ?x WHERE { ?x ex:a ?y }")
        bgp = unwrap(q.where, Project)
        assert not bgp.path_patterns and len(bgp.patterns) == 1


class TestSolutionModifiers:
    def test_distinct(self):
        q = parse_query(EX + "SELECT DISTINCT ?a WHERE { ?a ex:p ?b }")
        assert isinstance(q.where, Distinct)

    def test_limit_offset(self):
        q = parse_query(EX + "SELECT ?a WHERE { ?a ex:p ?b } LIMIT 10 OFFSET 5")
        assert isinstance(q.where, Slice)
        assert q.where.limit == 10 and q.where.offset == 5

    def test_order_by_desc(self):
        q = parse_query(EX + "SELECT ?a WHERE { ?a ex:p ?b } ORDER BY DESC(?b) ?a")
        order = q.where
        assert isinstance(order, Project)
        inner = order.input
        assert isinstance(inner, OrderBy)
        assert inner.conditions[0].descending
        assert not inner.conditions[1].descending

    def test_group_by_with_count(self):
        q = parse_query(EX + "SELECT ?a (COUNT(?b) AS ?c) WHERE { ?a ex:p ?b } GROUP BY ?a")
        project = q.where
        assert isinstance(project, Project)
        group = project.input
        assert isinstance(group, GroupBy)
        assert group.bindings[0][0] == Variable("c")
        assert isinstance(group.bindings[0][1], AggregateExpr)

    def test_aggregate_without_group_by(self):
        q = parse_query(EX + "SELECT (COUNT(*) AS ?n) WHERE { ?a ex:p ?b }")
        group = q.where.input
        assert isinstance(group, GroupBy)
        assert group.keys == ()

    def test_having(self):
        q = parse_query(
            EX + "SELECT ?a (COUNT(?b) AS ?c) WHERE { ?a ex:p ?b } GROUP BY ?a HAVING (COUNT(?b) > 2)"
        )
        group = q.where.input
        assert isinstance(group, GroupBy)
        assert len(group.having) == 1

    def test_select_expression_becomes_extend(self):
        q = parse_query(EX + "SELECT (?b + 1 AS ?c) WHERE { ?a ex:p ?b }")
        assert isinstance(q.where, Project)
        assert isinstance(q.where.input, Extend)


class TestMonotonicity:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("SELECT ?a WHERE { ?a ex:p ?b }", True),
            ("SELECT DISTINCT ?a WHERE { ?a ex:p ?b }", True),
            ("SELECT ?a WHERE { { ?a ex:p ?b } UNION { ?a ex:q ?b } }", True),
            ("SELECT ?a WHERE { ?a ex:p ?b } LIMIT 5", True),
            ("SELECT ?a WHERE { ?a ex:p ?b } LIMIT 5 OFFSET 2", False),
            ("SELECT ?a WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c } }", False),
            ("SELECT ?a WHERE { ?a ex:p ?b MINUS { ?a ex:q ?b } }", False),
            ("SELECT ?a WHERE { ?a ex:p ?b } ORDER BY ?a", False),
            ("SELECT (COUNT(*) AS ?n) WHERE { ?a ex:p ?b }", False),
            ("SELECT ?a WHERE { ?a ex:p ?b FILTER NOT EXISTS { ?b ex:q ?c } }", False),
        ],
    )
    def test_is_monotonic(self, text, expected):
        q = parse_query(EX + text)
        assert is_monotonic(q.where) is expected


class TestLiteralsInQueries:
    def test_typed_and_boolean_literals(self):
        q = parse_query(EX + 'SELECT ?s WHERE { ?s ex:p "5"^^<http://www.w3.org/2001/XMLSchema#integer> ; ex:q true }')
        bgp = unwrap(q.where, Project)
        objects = {p.object for p in bgp.patterns}
        assert Literal("5", datatype=XSD_INTEGER) in objects
        assert Literal("true", datatype=XSD_BOOLEAN) in objects

    def test_negative_number(self):
        q = parse_query(EX + "SELECT ?s WHERE { ?s ex:p -3 }")
        bgp = unwrap(q.where, Project)
        assert bgp.patterns[0].object == Literal("-3", datatype=XSD_INTEGER)
