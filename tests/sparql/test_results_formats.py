"""Tests for the XML and TSV result serializations."""

from repro.rdf import BlankNode, Literal, NamedNode, Variable
from repro.rdf.terms import XSD_LONG
from repro.sparql.bindings import Binding
from repro.sparql.results import results_to_sparql_xml, results_to_tsv


def v(name):
    return Variable(name)


BINDING = Binding(
    {
        v("iri"): NamedNode("http://x/a?b=1&c=2"),
        v("lit"): Literal("a <b> & \"c\""),
        v("typed"): Literal("42", datatype=XSD_LONG),
        v("lang"): Literal("hoi", language="nl"),
        v("blank"): BlankNode("b0"),
    }
)
VARIABLES = [v("iri"), v("lit"), v("typed"), v("lang"), v("blank")]


class TestXml:
    def test_header_lists_variables(self):
        xml = results_to_sparql_xml(VARIABLES, [BINDING])
        for variable in VARIABLES:
            assert f'<variable name="{variable.value}"/>' in xml

    def test_term_elements(self):
        xml = results_to_sparql_xml(VARIABLES, [BINDING])
        assert "<uri>http://x/a?b=1&amp;c=2</uri>" in xml
        assert "<bnode>b0</bnode>" in xml
        assert f'<literal datatype="{XSD_LONG}">42</literal>' in xml
        assert '<literal xml:lang="nl">hoi</literal>' in xml

    def test_special_characters_escaped(self):
        xml = results_to_sparql_xml([v("lit")], [BINDING])
        assert "a &lt;b&gt; &amp; &quot;c&quot;" in xml
        assert "<b>" not in xml.split("<literal>")[1].split("</literal>")[0]

    def test_empty_results(self):
        xml = results_to_sparql_xml([v("x")], [])
        assert "<results>" in xml and "</sparql>" in xml


class TestTsv:
    def test_header_uses_question_marks(self):
        tsv = results_to_tsv([v("a"), v("b")], [])
        assert tsv.splitlines()[0] == "?a\t?b"

    def test_full_term_syntax_preserved(self):
        tsv = results_to_tsv(VARIABLES, [BINDING])
        row = tsv.splitlines()[1].split("\t")
        assert row[0] == "<http://x/a?b=1&c=2>"
        assert row[2] == f'"42"^^<{XSD_LONG}>'
        assert row[3] == '"hoi"@nl'
        assert row[4] == "_:b0"

    def test_unbound_cells_empty(self):
        tsv = results_to_tsv([v("x"), v("missing")], [Binding({v("x"): Literal("1")})])
        assert tsv.splitlines()[1].endswith("\t")

    def test_tabs_in_literals_escaped(self):
        binding = Binding({v("x"): Literal("a\tb")})
        tsv = results_to_tsv([v("x")], [binding])
        assert "\\t" in tsv.splitlines()[1]
        assert tsv.splitlines()[1].count("\t") == 0
