"""Unit tests for SPARQL Update parsing and application."""

import pytest

from repro.rdf import Graph, Literal, NamedNode, Triple, parse_turtle
from repro.sparql.parser import SparqlParseError
from repro.sparql.update import (
    DeleteData,
    DeleteWhere,
    InsertData,
    Modify,
    apply_update,
    parse_update,
)

EX = "PREFIX ex: <http://x/>\n"


def n(suffix):
    return NamedNode(f"http://x/{suffix}")


@pytest.fixture()
def graph():
    return Graph(
        parse_turtle(
            """
            @prefix ex: <http://x/> .
            ex:a ex:p ex:b ; ex:q "old" .
            ex:b ex:p ex:c .
            """
        )
    )


class TestParsing:
    def test_insert_data(self):
        ops = parse_update(EX + "INSERT DATA { ex:a ex:p ex:b . ex:a ex:q 5 }")
        assert len(ops) == 1 and isinstance(ops[0], InsertData)
        assert len(ops[0].triples) == 2

    def test_delete_data(self):
        ops = parse_update(EX + 'DELETE DATA { ex:a ex:q "old" }')
        assert isinstance(ops[0], DeleteData)

    def test_delete_where(self):
        ops = parse_update(EX + "DELETE WHERE { ?s ex:p ?o }")
        assert isinstance(ops[0], DeleteWhere)
        assert len(ops[0].patterns) == 1

    def test_modify(self):
        ops = parse_update(
            EX + 'DELETE { ?s ex:q "old" } INSERT { ?s ex:q "new" } WHERE { ?s ex:q "old" }'
        )
        op = ops[0]
        assert isinstance(op, Modify)
        assert op.delete_template and op.insert_template and op.where

    def test_insert_where_without_delete(self):
        ops = parse_update(EX + "INSERT { ?s ex:r ?o } WHERE { ?s ex:p ?o }")
        op = ops[0]
        assert isinstance(op, Modify) and op.delete_template == ()

    def test_multiple_operations_separated_by_semicolons(self):
        ops = parse_update(
            EX + "INSERT DATA { ex:a ex:p ex:b } ; DELETE DATA { ex:a ex:p ex:c }"
        )
        assert len(ops) == 2

    def test_prefixes_expand(self):
        ops = parse_update(EX + "INSERT DATA { ex:a ex:p ex:b }")
        assert ops[0].triples[0].subject == n("a")

    def test_variables_rejected_in_data_block(self):
        with pytest.raises(SparqlParseError):
            parse_update(EX + "INSERT DATA { ?s ex:p ex:b }")

    def test_blank_nodes_allowed_in_insert_data(self):
        ops = parse_update(EX + "INSERT DATA { _:x ex:p ex:b }")
        from repro.rdf import BlankNode

        assert isinstance(ops[0].triples[0].subject, BlankNode)

    def test_empty_update_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_update(EX)


class TestApplication:
    def test_insert_data(self, graph):
        before = len(graph)
        counts = apply_update(graph, parse_update(EX + "INSERT DATA { ex:z ex:p ex:w }"))
        assert counts == {"added": 1, "removed": 0}
        assert len(graph) == before + 1

    def test_insert_is_idempotent(self, graph):
        update = parse_update(EX + "INSERT DATA { ex:a ex:p ex:b }")
        counts = apply_update(graph, update)
        assert counts["added"] == 0  # triple already present

    def test_delete_data(self, graph):
        counts = apply_update(graph, parse_update(EX + 'DELETE DATA { ex:a ex:q "old" }'))
        assert counts["removed"] == 1
        assert Triple(n("a"), n("q"), Literal("old")) not in graph

    def test_delete_where_removes_all_instantiations(self, graph):
        counts = apply_update(graph, parse_update(EX + "DELETE WHERE { ?s ex:p ?o }"))
        assert counts["removed"] == 2
        assert graph.count(None, n("p"), None) == 0

    def test_modify_rewrites_values(self, graph):
        update = parse_update(
            EX + 'DELETE { ?s ex:q "old" } INSERT { ?s ex:q "new" } WHERE { ?s ex:q "old" }'
        )
        counts = apply_update(graph, update)
        assert counts == {"added": 1, "removed": 1}
        assert graph.value(n("a"), n("q"), None) == Literal("new")

    def test_insert_where_copies_pattern(self, graph):
        update = parse_update(EX + "INSERT { ?o ex:invP ?s } WHERE { ?s ex:p ?o }")
        counts = apply_update(graph, update)
        assert counts["added"] == 2
        assert Triple(n("b"), n("invP"), n("a")) in graph

    def test_sequence_applied_in_order(self, graph):
        updates = parse_update(
            EX + "INSERT DATA { ex:t ex:p ex:u } ; DELETE DATA { ex:t ex:p ex:u }"
        )
        counts = apply_update(graph, updates)
        assert counts == {"added": 1, "removed": 1}
        assert Triple(n("t"), n("p"), n("u")) not in graph
