"""Unit tests for SPARQL expression evaluation."""

import pytest

from repro.rdf import Literal, NamedNode, Variable
from repro.rdf.terms import (
    XSD_BOOLEAN,
    XSD_DATETIME,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from repro.sparql.algebra import (
    Arithmetic,
    Compare,
    FunctionCall,
    InExpr,
    Not,
    TermExpr,
    UnaryMinus,
    VariableExpr,
)
from repro.sparql.bindings import Binding
from repro.sparql.expr import (
    ExpressionError,
    ExpressionEvaluator,
    compare_terms,
    effective_boolean_value,
)


@pytest.fixture()
def ev():
    return ExpressionEvaluator()


def lit_int(n: int) -> TermExpr:
    return TermExpr(Literal(str(n), datatype=XSD_INTEGER))


def lit_str(s: str) -> TermExpr:
    return TermExpr(Literal(s))


EMPTY = Binding()


class TestEffectiveBooleanValue:
    def test_boolean_literals(self):
        assert effective_boolean_value(Literal("true", datatype=XSD_BOOLEAN)) is True
        assert effective_boolean_value(Literal("false", datatype=XSD_BOOLEAN)) is False

    def test_strings(self):
        assert effective_boolean_value(Literal("x")) is True
        assert effective_boolean_value(Literal("")) is False

    def test_numbers(self):
        assert effective_boolean_value(Literal("1", datatype=XSD_INTEGER)) is True
        assert effective_boolean_value(Literal("0", datatype=XSD_INTEGER)) is False
        assert effective_boolean_value(Literal("0.0", datatype=XSD_DOUBLE)) is False

    def test_iri_has_no_ebv(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(NamedNode("http://x/a"))


class TestComparison:
    def test_numeric_promotion(self):
        assert compare_terms(
            Literal("1", datatype=XSD_INTEGER), Literal("1.0", datatype=XSD_DECIMAL), "="
        )
        assert compare_terms(
            Literal("1", datatype=XSD_INTEGER), Literal("1.5", datatype=XSD_DOUBLE), "<"
        )

    def test_string_comparison(self):
        assert compare_terms(Literal("abc"), Literal("abd"), "<")

    def test_datetime_comparison(self):
        early = Literal("2010-01-01T00:00:00Z", datatype=XSD_DATETIME)
        late = Literal("2012-01-01T00:00:00Z", datatype=XSD_DATETIME)
        assert compare_terms(early, late, "<")
        assert compare_terms(late, early, ">=")

    def test_iri_equality_only(self):
        a, b = NamedNode("http://x/a"), NamedNode("http://x/b")
        assert compare_terms(a, a, "=")
        assert compare_terms(a, b, "!=")
        with pytest.raises(ExpressionError):
            compare_terms(a, b, "<")

    def test_cross_type_ordering_fails(self):
        with pytest.raises(ExpressionError):
            compare_terms(Literal("5", datatype=XSD_INTEGER), Literal("abc"), "<")


class TestArithmetic:
    def test_integer_addition(self, ev):
        result = ev.evaluate(Arithmetic("+", lit_int(2), lit_int(3)), EMPTY)
        assert result == Literal("5", datatype=XSD_INTEGER)

    def test_integer_division_yields_decimal(self, ev):
        result = ev.evaluate(Arithmetic("/", lit_int(7), lit_int(2)), EMPTY)
        assert result.datatype == XSD_DECIMAL
        assert float(result.value) == 3.5

    def test_integer_division_by_zero_errors(self, ev):
        with pytest.raises(ExpressionError):
            ev.evaluate(Arithmetic("/", lit_int(1), lit_int(0)), EMPTY)

    def test_double_division_by_zero_gives_inf(self, ev):
        expr = Arithmetic(
            "/", TermExpr(Literal("1.0", datatype=XSD_DOUBLE)), TermExpr(Literal("0.0", datatype=XSD_DOUBLE))
        )
        assert ev.evaluate(expr, EMPTY).value == "INF"

    def test_unary_minus(self, ev):
        assert ev.evaluate(UnaryMinus(lit_int(5)), EMPTY).value == "-5"

    def test_arithmetic_on_strings_errors(self, ev):
        with pytest.raises(ExpressionError):
            ev.evaluate(Arithmetic("+", lit_str("a"), lit_int(1)), EMPTY)


class TestLogic:
    def test_or_short_circuits_errors(self, ev):
        # T || error = T
        error_side = FunctionCall("ABS", (lit_str("x"),))
        expr = parse_or(TermExpr(Literal("true", datatype=XSD_BOOLEAN)), error_side)
        assert ev.evaluate(expr, EMPTY).value == "true"

    def test_and_short_circuits_errors(self, ev):
        # F && error = F
        error_side = FunctionCall("ABS", (lit_str("x"),))
        expr = parse_and(TermExpr(Literal("false", datatype=XSD_BOOLEAN)), error_side)
        assert ev.evaluate(expr, EMPTY).value == "false"

    def test_error_and_true_propagates(self, ev):
        error_side = FunctionCall("ABS", (lit_str("x"),))
        expr = parse_and(error_side, TermExpr(Literal("true", datatype=XSD_BOOLEAN)))
        with pytest.raises(ExpressionError):
            ev.evaluate(expr, EMPTY)

    def test_not(self, ev):
        assert ev.evaluate(Not(TermExpr(Literal("", ))), EMPTY).value == "true"

    def test_satisfied_treats_errors_as_false(self, ev):
        error_expr = FunctionCall("ABS", (lit_str("x"),))
        assert ev.satisfied(error_expr, EMPTY) is False


def parse_or(left, right):
    from repro.sparql.algebra import Or

    return Or(left, right)


def parse_and(left, right):
    from repro.sparql.algebra import And

    return And(left, right)


class TestVariables:
    def test_bound_variable(self, ev):
        binding = Binding({Variable("x"): Literal("5", datatype=XSD_INTEGER)})
        assert ev.evaluate(VariableExpr(Variable("x")), binding).value == "5"

    def test_unbound_variable_errors(self, ev):
        with pytest.raises(ExpressionError):
            ev.evaluate(VariableExpr(Variable("x")), EMPTY)

    def test_bound_function(self, ev):
        binding = Binding({Variable("x"): Literal("5")})
        assert ev.evaluate(FunctionCall("BOUND", (VariableExpr(Variable("x")),)), binding).value == "true"
        assert ev.evaluate(FunctionCall("BOUND", (VariableExpr(Variable("y")),)), binding).value == "false"


class TestBuiltins:
    @pytest.mark.parametrize(
        "name,args,expected",
        [
            ("STRLEN", [lit_str("hello")], "5"),
            ("UCASE", [lit_str("hi")], "HI"),
            ("LCASE", [lit_str("HI")], "hi"),
            ("CONCAT", [lit_str("a"), lit_str("b"), lit_str("c")], "abc"),
            ("CONTAINS", [lit_str("foobar"), lit_str("oba")], "true"),
            ("STRSTARTS", [lit_str("foobar"), lit_str("foo")], "true"),
            ("STRENDS", [lit_str("foobar"), lit_str("bar")], "true"),
            ("STRBEFORE", [lit_str("abc"), lit_str("b")], "a"),
            ("STRAFTER", [lit_str("abc"), lit_str("b")], "c"),
            ("SUBSTR", [lit_str("foobar"), lit_int(4)], "bar"),
            ("ABS", [lit_int(-4)], "4"),
            ("CEIL", [TermExpr(Literal("2.2", datatype=XSD_DECIMAL))], "3"),
            ("FLOOR", [TermExpr(Literal("2.8", datatype=XSD_DECIMAL))], "2"),
            ("MD5", [lit_str("abc")], "900150983cd24fb0d6963f7d28e17f72"),
        ],
    )
    def test_value_functions(self, ev, name, args, expected):
        assert ev.evaluate(FunctionCall(name, tuple(args)), EMPTY).value == expected

    def test_substr_with_length(self, ev):
        result = ev.evaluate(FunctionCall("SUBSTR", (lit_str("foobar"), lit_int(2), lit_int(3))), EMPTY)
        assert result.value == "oob"

    def test_str_of_iri(self, ev):
        assert ev.evaluate(FunctionCall("STR", (TermExpr(NamedNode("http://x/a")),)), EMPTY).value == "http://x/a"

    def test_iri_of_string(self, ev):
        assert ev.evaluate(FunctionCall("IRI", (lit_str("http://x/a"),)), EMPTY) == NamedNode("http://x/a")

    def test_lang_and_datatype(self, ev):
        lang = ev.evaluate(FunctionCall("LANG", (TermExpr(Literal("x", language="en")),)), EMPTY)
        assert lang.value == "en"
        datatype = ev.evaluate(FunctionCall("DATATYPE", (lit_int(1),)), EMPTY)
        assert datatype == NamedNode(XSD_INTEGER)

    def test_langmatches(self, ev):
        call = FunctionCall(
            "LANGMATCHES",
            (FunctionCall("LANG", (TermExpr(Literal("x", language="en-GB")),)), lit_str("en")),
        )
        assert ev.evaluate(call, EMPTY).value == "true"

    def test_ucase_preserves_language(self, ev):
        result = ev.evaluate(FunctionCall("UCASE", (TermExpr(Literal("hi", language="en")),)), EMPTY)
        assert result.language == "en"

    def test_regex(self, ev):
        assert ev.evaluate(FunctionCall("REGEX", (lit_str("Post 42"), lit_str(r"\d+"))), EMPTY).value == "true"

    def test_regex_case_insensitive_flag(self, ev):
        call = FunctionCall("REGEX", (lit_str("HELLO"), lit_str("hello"), lit_str("i")))
        assert ev.evaluate(call, EMPTY).value == "true"

    def test_replace(self, ev):
        result = ev.evaluate(
            FunctionCall("REPLACE", (lit_str("aaa"), lit_str("a"), lit_str("b"))), EMPTY
        )
        assert result.value == "bbb"

    def test_if(self, ev):
        call = FunctionCall("IF", (TermExpr(Literal("true", datatype=XSD_BOOLEAN)), lit_int(1), lit_int(2)))
        assert ev.evaluate(call, EMPTY).value == "1"

    def test_coalesce_skips_errors(self, ev):
        call = FunctionCall("COALESCE", (VariableExpr(Variable("missing")), lit_int(7)))
        assert ev.evaluate(call, EMPTY).value == "7"

    def test_coalesce_all_errors(self, ev):
        with pytest.raises(ExpressionError):
            ev.evaluate(FunctionCall("COALESCE", (VariableExpr(Variable("m")),)), EMPTY)

    def test_datetime_accessors(self, ev):
        moment = TermExpr(Literal("2011-03-17T14:05:30Z", datatype=XSD_DATETIME))
        assert ev.evaluate(FunctionCall("YEAR", (moment,)), EMPTY).value == "2011"
        assert ev.evaluate(FunctionCall("MONTH", (moment,)), EMPTY).value == "3"
        assert ev.evaluate(FunctionCall("DAY", (moment,)), EMPTY).value == "17"
        assert ev.evaluate(FunctionCall("HOURS", (moment,)), EMPTY).value == "14"

    def test_isiri_isliteral(self, ev):
        assert ev.evaluate(FunctionCall("ISIRI", (TermExpr(NamedNode("http://x")),)), EMPTY).value == "true"
        assert ev.evaluate(FunctionCall("ISLITERAL", (lit_str("x"),)), EMPTY).value == "true"
        assert ev.evaluate(FunctionCall("ISNUMERIC", (lit_int(1),)), EMPTY).value == "true"

    def test_strlang_strdt(self, ev):
        tagged = ev.evaluate(FunctionCall("STRLANG", (lit_str("x"), lit_str("fr"))), EMPTY)
        assert tagged.language == "fr"
        typed = ev.evaluate(
            FunctionCall("STRDT", (lit_str("5"), TermExpr(NamedNode(XSD_INTEGER)))), EMPTY
        )
        assert typed.datatype == XSD_INTEGER

    def test_unknown_function_errors(self, ev):
        with pytest.raises(ExpressionError):
            ev.evaluate(FunctionCall("NO_SUCH_FN", ()), EMPTY)


class TestInExpression:
    def test_in(self, ev):
        expr = InExpr(lit_int(2), (lit_int(1), lit_int(2)))
        assert ev.evaluate(expr, EMPTY).value == "true"

    def test_not_in(self, ev):
        expr = InExpr(lit_int(5), (lit_int(1), lit_int(2)), negated=True)
        assert ev.evaluate(expr, EMPTY).value == "true"

    def test_in_with_error_and_no_match_errors(self, ev):
        expr = InExpr(lit_int(5), (VariableExpr(Variable("m")), lit_int(1)))
        with pytest.raises(ExpressionError):
            ev.evaluate(expr, EMPTY)

    def test_in_match_wins_over_error(self, ev):
        expr = InExpr(lit_int(1), (lit_int(1), VariableExpr(Variable("m"))))
        assert ev.evaluate(expr, EMPTY).value == "true"
