"""Unit tests for the request log and its waterfall metrics."""

from repro.net.log import RequestLog


def fill(log: RequestLog):
    # seed at t0..t1; two children overlap; one grandchild.
    log.record("GET", "https://h/seed", 200, 0.0, 1.0, 100, parent_url=None)
    log.record("GET", "https://h/a", 200, 1.0, 2.5, 200, parent_url="https://h/seed")
    log.record("GET", "https://h/b", 404, 1.2, 2.0, 50, parent_url="https://h/seed")
    log.record("GET", "https://x/c", 200, 2.5, 3.0, 300, parent_url="https://h/a")
    return log


class TestRequestLog:
    def test_sequences_are_monotonic(self):
        log = fill(RequestLog())
        assert [r.sequence for r in log.records] == [1, 2, 3, 4]

    def test_total_bytes(self):
        assert fill(RequestLog()).total_bytes() == 650

    def test_count_by_status(self):
        counts = fill(RequestLog()).count_by_status()
        assert counts == {200: 3, 404: 1}

    def test_origins(self):
        assert fill(RequestLog()).origins() == {"https://h", "https://x"}

    def test_dependency_depths(self):
        depths = fill(RequestLog()).dependency_depths()
        assert depths["https://h/seed"] == 0
        assert depths["https://h/a"] == 1
        assert depths["https://x/c"] == 2

    def test_max_depth(self):
        assert fill(RequestLog()).max_depth() == 2

    def test_max_parallelism(self):
        # /a and /b overlap between 1.2 and 2.0.
        assert fill(RequestLog()).max_parallelism() == 2

    def test_clear(self):
        log = fill(RequestLog())
        log.clear()
        assert len(log) == 0
        assert log.record("GET", "u", 200, 0, 1, 0).sequence == 1

    def test_orphan_parent_treated_as_root(self):
        log = RequestLog()
        log.record("GET", "https://h/x", 200, 0, 1, 0, parent_url="https://h/never-fetched")
        assert log.max_depth() == 1
