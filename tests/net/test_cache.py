"""Unit tests for client-side HTTP caching (the Fig. 4 disk-cache layer)."""

import asyncio
import time

from repro.net import (
    FunctionApp,
    HttpCache,
    HttpClient,
    Internet,
    NoLatency,
    Request,
    Response,
)
from repro.net.cache import CacheEntry


def run(coro):
    return asyncio.run(coro)


class CountingApp(FunctionApp):
    """Serves a fixed body with ETag support and counts real hits."""

    def __init__(
        self, body: bytes = b"data", max_age: str = "", cache_control: str = ""
    ) -> None:
        self.served = 0
        self.revalidated = 0
        app = self

        def handler(request: Request) -> Response:
            etag = '"v1"'
            if request.header("if-none-match") == etag:
                app.revalidated += 1
                return Response(304, {"etag": etag})
            app.served += 1
            headers = {"content-type": "text/turtle", "etag": etag}
            if cache_control:
                headers["cache-control"] = cache_control
            elif max_age:
                headers["cache-control"] = f"max-age={max_age}"
            return Response(200, headers, body)

        super().__init__(handler)


def make_client(app, cache):
    internet = Internet()
    internet.register("https://h", app)
    return HttpClient(internet, latency=NoLatency(), cache=cache)


class TestCacheEntry:
    def test_freshness_window(self):
        entry = CacheEntry(Response(200), etag="x", stored_at=time.monotonic(), max_age=60)
        assert entry.is_fresh()
        entry.max_age = 0
        assert not entry.is_fresh()

    def test_renew_restores_freshness(self):
        entry = CacheEntry(Response(200), etag="x", stored_at=0.0, max_age=1)
        assert not entry.is_fresh(now=100.0)
        entry.renew(now=100.0)
        assert entry.is_fresh(now=100.5)


class TestHttpCacheStore:
    def test_only_200_cached(self):
        cache = HttpCache()
        assert cache.store("https://h/x", Response(404)) is None
        assert cache.store("https://h/x", Response(200, {}, b"ok")) is not None
        assert len(cache) == 1

    def test_no_store_directive_respected(self):
        cache = HttpCache()
        response = Response(200, {"cache-control": "no-store"}, b"secret")
        assert cache.store("https://h/x", response) is None

    def test_max_age_parsed(self):
        cache = HttpCache(default_max_age=999)
        entry = cache.store("https://h/x", Response(200, {"cache-control": "max-age=5"}, b""))
        assert entry.max_age == 5

    def test_entry_bound_evicts_oldest(self):
        cache = HttpCache(max_entries=2)
        cache.store("https://h/1", Response(200, {}, b"a"))
        cache.store("https://h/2", Response(200, {}, b"b"))
        cache.store("https://h/3", Response(200, {}, b"c"))
        assert len(cache) == 2
        assert cache.lookup("https://h/1") is None


class TestClientIntegration:
    def test_fresh_hit_skips_network(self):
        app = CountingApp()
        cache = HttpCache(default_max_age=300)
        client = make_client(app, cache)
        first = run(client.fetch("https://h/doc"))
        second = run(client.fetch("https://h/doc"))
        assert first.body == second.body == b"data"
        assert app.served == 1  # second served locally
        assert cache.hits == 1
        assert client.log.records[1].from_cache

    def test_stale_entry_revalidates_with_304(self):
        app = CountingApp()
        cache = HttpCache(default_max_age=0)  # always stale
        client = make_client(app, cache)
        run(client.fetch("https://h/doc"))
        second = run(client.fetch("https://h/doc"))
        assert second.status == 200 and second.body == b"data"
        assert app.served == 1 and app.revalidated == 1
        assert cache.revalidations == 1
        assert client.log.records[1].from_cache

    def test_cacheless_client_unaffected(self):
        app = CountingApp()
        client = make_client(app, cache=None)
        run(client.fetch("https://h/doc"))
        run(client.fetch("https://h/doc"))
        assert app.served == 2

    def test_statistics(self):
        app = CountingApp()
        cache = HttpCache(default_max_age=300)
        client = make_client(app, cache)
        run(client.fetch("https://h/doc"))
        run(client.fetch("https://h/doc"))
        stats = cache.statistics()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["revalidations"] == 0
        assert stats["hit_rate"] == 0.5
        # The shared storage-tier discipline reports its own block.
        assert stats["storage"]["memory_entries"] == 1
        assert stats["storage"]["persistent"] is False

    def test_clear(self):
        cache = HttpCache()
        cache.store("https://h/x", Response(200, {}, b""))
        cache.hits = 3
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0


class TestNoCacheDirective:
    """``Cache-Control: no-cache`` — store, but revalidate on every reuse."""

    def test_no_cache_stored_but_never_fresh(self):
        cache = HttpCache(default_max_age=300)
        entry = cache.store(
            "https://h/x", Response(200, {"cache-control": "no-cache"}, b"x")
        )
        assert entry is not None and len(cache) == 1
        assert entry.max_age == 0.0
        assert not entry.is_fresh()

    def test_no_cache_overrides_max_age(self):
        cache = HttpCache(default_max_age=300)
        entry = cache.store(
            "https://h/x",
            Response(200, {"cache-control": "no-cache, max-age=600"}, b"x"),
        )
        assert entry is not None and entry.max_age == 0.0

    def test_no_store_still_wins(self):
        cache = HttpCache()
        response = Response(200, {"cache-control": "no-store, no-cache"}, b"x")
        assert cache.store("https://h/x", response) is None

    def test_every_reuse_revalidates(self):
        app = CountingApp(cache_control="no-cache")
        cache = HttpCache(default_max_age=300)
        client = make_client(app, cache)
        bodies = [run(client.fetch("https://h/doc")).body for _ in range(3)]
        assert bodies == [b"data"] * 3
        assert app.served == 1  # body transferred exactly once
        assert app.revalidated == 2  # every reuse hit the validator
        assert cache.hits == 0 and cache.revalidations == 2


class TestRenewalThroughTrace:
    """304 renewal observed via the tracer's attempt spans."""

    def _traced_client(self, app, cache):
        from repro.obs import TickClock, Tracer

        client = make_client(app, cache)
        tracer = Tracer(clock=TickClock(step=0.001))
        client.tracer = tracer
        return client, tracer

    def test_304_renewal_recorded_as_revalidated_attempt(self):
        from repro.obs import check_trace_invariants

        app = CountingApp(cache_control="no-cache")
        cache = HttpCache(default_max_age=300)
        client, tracer = self._traced_client(app, cache)
        run(client.fetch("https://h/doc"))
        stored_at_before = cache.lookup("https://h/doc").stored_at
        second = run(client.fetch("https://h/doc"))

        assert second.status == 200 and second.body == b"data"
        attempts = [s for s in tracer.spans if s.name == "attempt"]
        assert len(attempts) == 2
        first_attempt, reval_attempt = attempts
        assert not first_attempt.args.get("revalidated")
        assert not first_attempt.args.get("from_cache")
        # The conditional GET went to the network (a real attempt with
        # duration), came back 304, and was served from the cached body.
        assert reval_attempt.args["revalidated"] is True
        assert reval_attempt.args["from_cache"] is True
        assert reval_attempt.args["status"] == 200
        assert reval_attempt.end > reval_attempt.start
        # The 304 renewed the entry's clock.
        assert cache.lookup("https://h/doc").stored_at != stored_at_before
        assert check_trace_invariants(tracer) == []

    def test_fresh_hit_recorded_as_zero_duration_cache_attempt(self):
        app = CountingApp()
        cache = HttpCache(default_max_age=300)
        client, tracer = self._traced_client(app, cache)
        run(client.fetch("https://h/doc"))
        run(client.fetch("https://h/doc"))
        attempts = [s for s in tracer.spans if s.name == "attempt"]
        assert len(attempts) == 2
        hit = attempts[1]
        assert hit.args["from_cache"] is True
        assert not hit.args.get("revalidated")  # never touched the network
        assert hit.end == hit.start  # served instantaneously
        assert app.served == 1


class TestSolidServerEtags:
    def test_server_emits_etag_and_304(self, tiny_universe):
        cache = HttpCache(default_max_age=0)  # force revalidation
        client = HttpClient(tiny_universe.internet, latency=NoLatency(), cache=cache)
        url = tiny_universe.webid(0)
        first = run(client.fetch(url))
        assert first.header("etag")
        second = run(client.fetch(url))
        assert second.body == first.body
        assert cache.revalidations == 1

    def test_repeated_query_execution_hits_cache(self, tiny_universe):
        from repro.ltqp import LinkTraversalEngine
        from repro.solidbench import discover_query

        cache = HttpCache(default_max_age=300)
        client = HttpClient(tiny_universe.internet, latency=NoLatency(), cache=cache)
        engine = LinkTraversalEngine(client)
        query = discover_query(tiny_universe, 1, 1)

        first = engine.execute_sync(query.text, seeds=query.seeds)
        hits_before = cache.hits
        second = engine.execute_sync(query.text, seeds=query.seeds)
        assert set(first.bindings) == set(second.bindings)
        assert cache.hits > hits_before  # the rerun was answered from cache
