"""Unit tests for HTTP messages and URL handling."""

import pytest

from repro.net.message import Request, Response, split_url


class TestSplitUrl:
    def test_basic(self):
        origin, path, url = split_url("https://host.example/a/b?x=1")
        assert origin == "https://host.example"
        assert path == "/a/b?x=1"
        assert url == "https://host.example/a/b?x=1"

    def test_root_path_defaults(self):
        assert split_url("https://host.example")[1] == "/"

    def test_port_preserved(self):
        assert split_url("http://localhost:8080/x")[0] == "http://localhost:8080"

    def test_rejects_non_http(self):
        with pytest.raises(ValueError):
            split_url("ftp://host/x")


class TestRequest:
    def test_header_names_lowercased(self):
        request = Request("GET", "https://h/x", headers={"Accept": "text/turtle"})
        assert request.header("accept") == "text/turtle"
        assert request.header("ACCEPT") == "text/turtle"

    def test_method_uppercased(self):
        assert Request("get", "https://h/x").method == "GET"

    def test_origin_and_path(self):
        request = Request("GET", "https://h/a/b")
        assert request.origin == "https://h"
        assert request.path == "/a/b"


class TestResponse:
    def test_ok_range(self):
        assert Response(200).ok and Response(204).ok
        assert not Response(404).ok and not Response(301).ok

    def test_content_type_strips_parameters(self):
        response = Response(200, {"content-type": "text/turtle; charset=utf-8"})
        assert response.content_type == "text/turtle"

    def test_text_decoding(self):
        assert Response(200, body="héllo".encode("utf-8")).text == "héllo"

    def test_factories(self):
        assert Response.ok_turtle("x").content_type == "text/turtle"
        assert Response.not_found("https://h/x").status == 404
        assert Response.unauthorized().status == 401
        assert Response.unauthorized().header("www-authenticate") == "Bearer"
        assert Response.forbidden().status == 403
