"""Unit tests for latency models."""

from repro.net.latency import ConstantLatency, NoLatency, SeededJitterLatency


class TestModels:
    def test_no_latency(self):
        assert NoLatency().latency_for("https://h/x", 10_000) == 0.0

    def test_constant_includes_transfer_time(self):
        model = ConstantLatency(rtt_seconds=0.01, bytes_per_second=1000)
        assert model.latency_for("u", 1000) == 0.01 + 1.0

    def test_jitter_is_deterministic_per_url(self):
        model = SeededJitterLatency(seed=1)
        assert model.latency_for("https://h/a", 0) == model.latency_for("https://h/a", 0)

    def test_jitter_differs_between_urls(self):
        model = SeededJitterLatency(seed=1)
        values = {model.latency_for(f"https://h/{i}", 0) for i in range(16)}
        assert len(values) > 1

    def test_jitter_respects_bounds(self):
        model = SeededJitterLatency(seed=5, min_rtt_seconds=0.002, max_rtt_seconds=0.004)
        for i in range(32):
            latency = model.latency_for(f"https://h/{i}", 0)
            assert 0.002 <= latency <= 0.004

    def test_different_seeds_differ(self):
        a = SeededJitterLatency(seed=1).latency_for("https://h/x", 0)
        b = SeededJitterLatency(seed=2).latency_for("https://h/x", 0)
        assert a != b
