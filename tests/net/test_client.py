"""Unit tests for the simulated HTTP client."""

import asyncio

import pytest

from repro.net import (
    ConstantLatency,
    FetchError,
    FunctionApp,
    HttpClient,
    Internet,
    NoLatency,
    Request,
    Response,
    StaticApp,
)


def make_internet():
    internet = Internet()
    app = StaticApp()
    app.put("/doc", "<http://x/a> <http://x/p> <http://x/b> .")
    internet.register("https://pods.example", app)
    return internet


def run(coro):
    return asyncio.run(coro)


class TestFetch:
    def test_successful_get(self):
        client = HttpClient(make_internet(), latency=NoLatency())
        response = run(client.fetch("https://pods.example/doc"))
        assert response.status == 200
        assert "<http://x/a>" in response.text

    def test_fragment_is_stripped_before_dispatch(self):
        client = HttpClient(make_internet(), latency=NoLatency())
        response = run(client.fetch("https://pods.example/doc#me"))
        assert response.status == 200

    def test_unknown_path_is_404(self):
        client = HttpClient(make_internet(), latency=NoLatency())
        assert run(client.fetch("https://pods.example/missing")).status == 404

    def test_unknown_origin_is_status_zero(self):
        client = HttpClient(make_internet(), latency=NoLatency())
        response = run(client.fetch("https://unknown.example/x"))
        assert response.status == 0

    def test_strict_mode_raises(self):
        client = HttpClient(make_internet(), latency=NoLatency())
        with pytest.raises(FetchError):
            run(client.fetch("https://pods.example/missing", strict=True))

    def test_crashing_app_becomes_500(self):
        internet = Internet()

        def boom(request: Request) -> Response:
            raise RuntimeError("kaboom")

        internet.register("https://bad.example", FunctionApp(boom))
        client = HttpClient(internet, latency=NoLatency())
        assert run(client.fetch("https://bad.example/x")).status == 500

    def test_default_accept_header_sent(self):
        captured = {}

        def echo(request: Request) -> Response:
            captured["accept"] = request.header("accept")
            return Response(200, {"content-type": "text/plain"}, b"")

        internet = Internet()
        internet.register("https://echo.example", FunctionApp(echo))
        client = HttpClient(internet, latency=NoLatency())
        run(client.fetch("https://echo.example/"))
        assert "text/turtle" in captured["accept"]


class TestLogging:
    def test_every_request_logged_with_parent(self):
        client = HttpClient(make_internet(), latency=NoLatency())
        run(client.fetch("https://pods.example/doc", parent_url="https://pods.example/root"))
        records = client.log.records
        assert len(records) == 1
        assert records[0].parent_url == "https://pods.example/root"
        assert records[0].status == 200
        assert records[0].response_size > 0

    def test_failures_logged_with_error(self):
        client = HttpClient(make_internet(), latency=NoLatency())
        run(client.fetch("https://unknown.example/x"))
        record = client.log.records[0]
        assert record.status == 0 and record.error


class TestLatencyAndConcurrency:
    def test_latency_model_delays_requests(self):
        client = HttpClient(
            make_internet(), latency=ConstantLatency(rtt_seconds=0.01), latency_scale=1.0
        )
        run(client.fetch("https://pods.example/doc"))
        record = client.log.records[0]
        assert record.duration >= 0.009

    def test_latency_scale_zero_disables_sleep(self):
        client = HttpClient(
            make_internet(), latency=ConstantLatency(rtt_seconds=10.0), latency_scale=0.0
        )
        run(client.fetch("https://pods.example/doc"))  # returns immediately

    def test_per_origin_connection_cap(self):
        active = {"now": 0, "peak": 0}

        async def slow(request: Request) -> Response:
            active["now"] += 1
            active["peak"] = max(active["peak"], active["now"])
            await asyncio.sleep(0.01)
            active["now"] -= 1
            return Response(200, {"content-type": "text/plain"}, b"x")

        internet = Internet()
        internet.register("https://slow.example", FunctionApp(slow))
        client = HttpClient(internet, latency=NoLatency(), max_connections_per_origin=2)

        async def many():
            await asyncio.gather(
                *[client.fetch(f"https://slow.example/{i}") for i in range(8)]
            )

        run(many())
        assert active["peak"] <= 2

    def test_get_text_convenience(self):
        client = HttpClient(make_internet(), latency=NoLatency())
        assert "<http://x/a>" in run(client.get_text("https://pods.example/doc"))
