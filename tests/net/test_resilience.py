"""Unit tests for the resilience layer: backoff, breakers, client retries."""

import asyncio

from repro.net import FunctionApp, HttpClient, Internet, NoLatency, Response, StaticApp
from repro.net.faults import FaultPlan, FaultRule
from repro.net.resilience import (
    BreakerPolicy,
    BreakerRegistry,
    CircuitBreaker,
    NetworkPolicy,
    RetryPolicy,
)

ORIGIN = "https://pods.example"


def run(coro):
    return asyncio.run(coro)


def fast_retry(**overrides) -> RetryPolicy:
    """A retry policy whose backoff sleeps are negligible in tests."""
    defaults = dict(max_attempts=4, base_delay=0.0001, max_delay=0.001)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestBackoffDeterminism:
    def test_same_url_same_delays(self):
        policy = RetryPolicy(seed=9)
        url = f"{ORIGIN}/doc"
        first = [policy.backoff_delay(url, i) for i in range(3)]
        second = [policy.backoff_delay(url, i) for i in range(3)]
        assert first == second

    def test_delays_grow_exponentially_modulo_jitter(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=10.0, jitter=0.0)
        delays = [policy.backoff_delay("u", i) for i in range(4)]
        assert delays == [0.01, 0.02, 0.04, 0.08]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=1.0, max_delay=1.0, jitter=0.5)
        for i in range(20):
            delay = policy.backoff_delay(f"u{i}", 0)
            assert 0.005 <= delay <= 0.01

    def test_max_delay_caps(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.0)
        assert policy.backoff_delay("u", 5) == 2.0

    def test_schedule_lists_all_retry_gaps(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.0)
        assert len(policy.schedule("u")) == 3

    def test_disabled_policy_never_retries(self):
        assert not RetryPolicy.disabled().enabled
        assert RetryPolicy.disabled().max_attempts == 1


class TestCircuitBreaker:
    def make(self, **kwargs):
        self.now = 0.0
        policy = BreakerPolicy(
            failure_threshold=kwargs.pop("failure_threshold", 3),
            recovery_seconds=kwargs.pop("recovery_seconds", 10.0),
            half_open_probes=kwargs.pop("half_open_probes", 1),
        )
        return CircuitBreaker(policy, clock=lambda: self.now)

    def test_starts_closed_and_allows(self):
        breaker = self.make()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = self.make(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_failure_streak(self):
        breaker = self.make(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_opens_after_recovery_window(self):
        breaker = self.make(recovery_seconds=10.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        self.now = 11.0
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_admits_limited_probes(self):
        breaker = self.make(half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        self.now = 11.0
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # second concurrent probe rejected

    def test_half_open_success_closes(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        self.now = 11.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        self.now = 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_disabled_breaker_never_opens(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=0))
        for _ in range(50):
            breaker.record_failure()
        assert breaker.allow()


class TestBreakerRegistry:
    def test_one_breaker_per_origin(self):
        registry = BreakerRegistry(BreakerPolicy(failure_threshold=1))
        a = registry.for_origin("https://a.example")
        b = registry.for_origin("https://b.example")
        assert a is not b
        assert registry.for_origin("https://a.example") is a

    def test_trips_by_origin(self):
        registry = BreakerRegistry(BreakerPolicy(failure_threshold=1))
        registry.for_origin("https://a.example").record_failure()
        assert registry.trips_by_origin() == {"https://a.example": 1}
        assert registry.trips_total == 1


class TestClientRetries:
    def flaky_internet(self, failures=1, status=503, headers=None):
        """An origin that fails the first ``failures`` requests per URL."""
        counts: dict[str, int] = {}

        def handler(request):
            counts[request.url] = counts.get(request.url, 0) + 1
            if counts[request.url] <= failures:
                return Response(status, dict(headers or {"content-type": "text/plain"}), b"boom")
            return Response.ok_turtle("<http://x/a> <http://x/p> <http://x/b> .")

        internet = Internet()
        internet.register(ORIGIN, FunctionApp(handler))
        return internet

    def test_retry_recovers_transient_503(self):
        client = HttpClient(
            self.flaky_internet(failures=2),
            latency=NoLatency(),
            policy=NetworkPolicy(retry=fast_retry()),
        )
        response = run(client.fetch(f"{ORIGIN}/doc"))
        assert response.status == 200
        assert client.resilience.retries == 2
        # Every attempt is in the log: two failures plus the success.
        assert len(client.log) == 3
        assert client.log.retry_count() == 2

    def test_no_retry_policy_preserves_single_attempt(self):
        client = HttpClient(
            self.flaky_internet(failures=1),
            latency=NoLatency(),
            policy=NetworkPolicy.no_retry(),
        )
        response = run(client.fetch(f"{ORIGIN}/doc"))
        assert response.status == 503
        assert client.resilience.retries == 0
        assert len(client.log) == 1

    def test_404_not_retried(self):
        internet = Internet()
        internet.register(ORIGIN, StaticApp())
        client = HttpClient(
            internet, latency=NoLatency(), policy=NetworkPolicy(retry=fast_retry())
        )
        assert run(client.fetch(f"{ORIGIN}/missing")).status == 404
        assert client.resilience.retries == 0

    def test_unknown_origin_not_retried(self):
        client = HttpClient(
            Internet(), latency=NoLatency(), policy=NetworkPolicy(retry=fast_retry())
        )
        response = run(client.fetch("https://unknown.example/x"))
        assert response.status == 0
        assert response.header("x-error") == "unknown-origin"
        assert client.resilience.retries == 0

    def test_retry_after_header_honoured(self):
        client = HttpClient(
            self.flaky_internet(
                failures=1,
                status=429,
                headers={"content-type": "text/plain", "retry-after": "0.001"},
            ),
            latency=NoLatency(),
            policy=NetworkPolicy(retry=fast_retry()),
        )
        response = run(client.fetch(f"{ORIGIN}/doc"))
        assert response.status == 200
        assert client.resilience.retry_after_waits == 1

    def test_timeout_produces_marker_and_counts(self):
        async def slow(request):
            await asyncio.sleep(0.2)
            return Response.ok_turtle("")

        internet = Internet()
        internet.register(ORIGIN, FunctionApp(slow))
        client = HttpClient(
            internet,
            latency=NoLatency(),
            policy=NetworkPolicy(
                request_timeout=0.01, retry=fast_retry(max_attempts=2)
            ),
        )
        response = run(client.fetch(f"{ORIGIN}/slow"))
        assert response.status == 0
        assert response.header("x-error") == "timeout"
        assert client.resilience.timeouts == 2  # both attempts timed out

    def test_breaker_fast_fails_when_origin_down(self):
        internet = Internet()
        internet.install_fault_plan(FaultPlan([FaultRule(kind="drop", origin=ORIGIN)]))
        internet.register(ORIGIN, StaticApp())
        client = HttpClient(
            internet,
            latency=NoLatency(),
            policy=NetworkPolicy(
                retry=RetryPolicy.disabled(),
                breaker=BreakerPolicy(failure_threshold=2, recovery_seconds=60.0),
            ),
        )
        for i in range(2):
            run(client.fetch(f"{ORIGIN}/doc{i}"))
        response = run(client.fetch(f"{ORIGIN}/doc9"))
        assert response.header("x-error") == "circuit-open"
        assert client.resilience.breaker_fast_fails == 1
        assert client.resilience_snapshot()["trips_by_origin"] == {ORIGIN: 1}

    def test_retry_budget_bounds_total_retries(self):
        client = HttpClient(
            self.flaky_internet(failures=10),
            latency=NoLatency(),
            policy=NetworkPolicy(retry=fast_retry(max_attempts=10, budget=2)),
        )
        run(client.fetch(f"{ORIGIN}/doc"))
        assert client.resilience.retries == 2
        assert client.resilience.budget_exhausted == 1

    def test_engine_policy_adoption(self):
        """A client built without an explicit policy adopts the engine's."""
        internet = self.flaky_internet()
        implicit = HttpClient(internet, latency=NoLatency())
        assert not implicit.has_explicit_policy
        explicit = HttpClient(internet, latency=NoLatency(), policy=NetworkPolicy.no_retry())
        assert explicit.has_explicit_policy
        custom = NetworkPolicy(request_timeout=1.23)
        implicit.apply_policy(custom)
        assert implicit.policy.request_timeout == 1.23
