"""Unit tests for deterministic fault injection (FaultPlan / FaultRule)."""

import asyncio

import pytest

from repro.net import HttpClient, Internet, NoLatency, StaticApp
from repro.net.faults import FAULT_KINDS, FaultPlan, FaultRule
from repro.net.message import Request
from repro.net.resilience import NetworkPolicy

ORIGIN = "https://pods.example"


def make_internet():
    internet = Internet()
    app = StaticApp()
    for index in range(20):
        app.put(f"/doc{index}", f"<http://x/s{index}> <http://x/p> <http://x/o> .")
    internet.register(ORIGIN, app)
    return internet


def make_client(internet, policy=None):
    return HttpClient(
        internet, latency=NoLatency(), policy=policy if policy else NetworkPolicy.no_retry()
    )


def run(coro):
    return asyncio.run(coro)


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultRule(kind="meteor")

    def test_matches_by_origin(self):
        rule = FaultRule(origin=ORIGIN)
        assert rule.matches(Request("GET", f"{ORIGIN}/doc0"))
        assert not rule.matches(Request("GET", "https://elsewhere.example/doc0"))

    def test_matches_by_url_substring(self):
        rule = FaultRule(url_pattern="/profile/")
        assert rule.matches(Request("GET", f"{ORIGIN}/profile/card"))
        assert not rule.matches(Request("GET", f"{ORIGIN}/posts/1"))

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            FaultRule(kind=kind)


class TestFaultedUrlDraw:
    def test_draw_is_deterministic(self):
        plan_a = FaultPlan([FaultRule(rate=0.5)], seed=7)
        plan_b = FaultPlan([FaultRule(rate=0.5)], seed=7)
        urls = [f"{ORIGIN}/doc{i}" for i in range(50)]
        assert [plan_a.is_faulted_url(0, u) for u in urls] == [
            plan_b.is_faulted_url(0, u) for u in urls
        ]

    def test_different_seeds_differ(self):
        urls = [f"{ORIGIN}/doc{i}" for i in range(100)]
        draws_a = [FaultPlan([FaultRule(rate=0.5)], seed=1).is_faulted_url(0, u) for u in urls]
        draws_b = [FaultPlan([FaultRule(rate=0.5)], seed=2).is_faulted_url(0, u) for u in urls]
        assert draws_a != draws_b

    def test_rate_roughly_respected(self):
        plan = FaultPlan([FaultRule(rate=0.3)], seed=11)
        urls = [f"{ORIGIN}/doc{i}" for i in range(500)]
        hit = sum(plan.is_faulted_url(0, u) for u in urls)
        assert 100 < hit < 200  # 30% of 500 = 150, generous band


class TestInjection:
    def test_drop_yields_status_zero_with_marker(self):
        internet = make_internet()
        internet.install_fault_plan(FaultPlan([FaultRule(kind="drop")]))
        response = run(make_client(internet).fetch(f"{ORIGIN}/doc0"))
        assert response.status == 0
        assert response.header("x-fault") == "drop"

    def test_status_injects_503_with_retry_after(self):
        internet = make_internet()
        internet.install_fault_plan(
            FaultPlan([FaultRule(kind="status", status=503, retry_after=0.5)])
        )
        response = run(make_client(internet).fetch(f"{ORIGIN}/doc0"))
        assert response.status == 503
        assert response.header("x-fault") == "status"
        assert response.header("retry-after") == "0.5"

    def test_delay_forwards_to_origin(self):
        internet = make_internet()
        internet.install_fault_plan(
            FaultPlan([FaultRule(kind="delay", delay_seconds=0.001)])
        )
        response = run(make_client(internet).fetch(f"{ORIGIN}/doc0"))
        assert response.status == 200  # delayed, not broken

    def test_transient_fault_recovers_after_fail_attempts(self):
        internet = make_internet()
        internet.install_fault_plan(FaultPlan.transient(rate=1.0, fail_attempts=2))
        client = make_client(internet)
        url = f"{ORIGIN}/doc0"
        assert run(client.fetch(url)).status == 503
        assert run(client.fetch(url)).status == 503
        assert run(client.fetch(url)).status == 200  # third attempt passes

    def test_flap_oscillates_per_origin_window(self):
        internet = make_internet()
        internet.install_fault_plan(
            FaultPlan([FaultRule(kind="flap", flap_period=4, flap_down=2)])
        )
        client = make_client(internet)
        statuses = [run(client.fetch(f"{ORIGIN}/doc{i}")).status for i in range(8)]
        assert statuses == [0, 0, 200, 200, 0, 0, 200, 200]

    def test_unmatched_origin_untouched(self):
        internet = make_internet()
        internet.install_fault_plan(
            FaultPlan([FaultRule(kind="drop", origin="https://elsewhere.example")])
        )
        assert run(make_client(internet).fetch(f"{ORIGIN}/doc0")).status == 200

    def test_counters_track_injections(self):
        internet = make_internet()
        plan = FaultPlan([FaultRule(kind="drop")])
        internet.install_fault_plan(plan)
        client = make_client(internet)
        run(client.fetch(f"{ORIGIN}/doc0"))
        run(client.fetch(f"{ORIGIN}/doc1"))
        assert plan.injected_by_kind == {"drop": 2}
        assert plan.injected_by_origin == {ORIGIN: 2}
        assert plan.total_injected == 2

    def test_uninstall_restores_clean_network(self):
        internet = make_internet()
        internet.install_fault_plan(FaultPlan([FaultRule(kind="drop")]))
        internet.install_fault_plan(None)
        assert run(make_client(internet).fetch(f"{ORIGIN}/doc0")).status == 200
