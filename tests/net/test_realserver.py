"""Integration tests: simulated apps served over real sockets."""

import urllib.request

from repro.net import Internet, RealHttpServer, StaticApp


def make_internet():
    internet = Internet()
    app = StaticApp()
    app.put("/profile/card", "<https://pod.example/profile/card#me> a <http://x/Person> .")
    internet.register("https://pod.example", app)
    return internet


class TestRealHttpServer:
    def test_serves_registered_origin_over_sockets(self):
        with RealHttpServer(make_internet()) as server:
            url = server.url_for("https://pod.example/profile/card")
            with urllib.request.urlopen(url, timeout=5) as response:
                body = response.read().decode("utf-8")
                assert response.status == 200
                assert "Person" in body
                assert response.headers["content-type"] == "text/turtle"

    def test_404_passthrough(self):
        with RealHttpServer(make_internet()) as server:
            url = server.url_for("https://pod.example/nope")
            try:
                urllib.request.urlopen(url, timeout=5)
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:
                raise AssertionError("expected 404")

    def test_single_origin_shorthand_path(self):
        with RealHttpServer(make_internet()) as server:
            url = f"{server.base_url}/profile/card"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
