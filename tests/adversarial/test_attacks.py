"""Each attack class is contained by the hardening — and demonstrably
not contained without it.

Structure per attack:

* a *lure-only* cost comparison (seeds = the hostile entry URL alone):
  the hardened engine's attack cost — requests answered by the hostile
  apps, bytes in the request log, fault-injection counters — is bounded
  by its budget, while the unhardened engine's cost is at least 10×;
* a *combined* run (benign Discover seeds + lure) proving benign results
  are untouched by the attack under hardening, with the refusals
  attributed in ``completeness()`` by kind and origin.

Costs are counted deterministically; only the slow-trickle test touches
wall clock (the attack *is* time), and there only with a ≥10× seeded
sleep margin.
"""

from __future__ import annotations

import time

from repro.ltqp import TraversalPolicy
from repro.solidbench.adversary import (
    AdversaryPlan,
    POISON_WATERMARK,
    is_tainted_binding,
)

from .conftest import (
    baseline_results,
    hardened_traversal,
    no_retry_network,
    result_key,
    run_discover,
)

#: Budget generous enough for the benign host (~91 documents for
#: Discover 1.5 on the tiny universe) yet binding for hostile origins.
GENEROUS_DEREFS = 256


class TestLinkTrap:
    def test_lure_only_cost_bounded_10x(self, tiny_universe, adversary):
        hard_dep = adversary(AdversaryPlan(seed=11, kinds=("link-trap",), origin_prefix="adv-th"))
        run_discover(
            tiny_universe,
            lures=hard_dep.lures,
            traversal=hardened_traversal(max_origin_derefs=8),
            benign_seeds=False,
        )
        assert hard_dep.total_requests() == 8

        soft_dep = adversary(AdversaryPlan(seed=11, kinds=("link-trap",), origin_prefix="adv-ts"))
        run_discover(
            tiny_universe,
            lures=soft_dep.lures,
            max_documents=120,  # backstop: without it the trap never ends
            benign_seeds=False,
        )
        assert soft_dep.total_requests() >= 10 * hard_dep.total_requests()

    def test_benign_results_identical_and_refusals_attributed(self, tiny_universe, adversary):
        dep = adversary(AdversaryPlan(seed=12, kinds=("link-trap",), origin_prefix="adv-tb"))
        execution = run_discover(
            tiny_universe,
            lures=dep.lures,
            traversal=hardened_traversal(max_origin_derefs=GENEROUS_DEREFS),
        )
        assert result_key(execution) == baseline_results(tiny_universe)
        report = execution.stats.completeness()
        assert not report["complete"]
        assert report["refusals_by_kind"]["origin-derefs"] > 0
        assert set(report["refusals_by_origin"]) == {dep.origins[0]}
        assert dep.total_requests() <= GENEROUS_DEREFS

    def test_origin_byte_budget_also_contains_the_trap(self, tiny_universe, adversary):
        dep = adversary(AdversaryPlan(seed=13, kinds=("link-trap",), origin_prefix="adv-ty"))
        execution = run_discover(
            tiny_universe,
            lures=dep.lures,
            traversal=hardened_traversal(max_origin_derefs=0, max_origin_bytes=4096),
            benign_seeds=False,
        )
        report = execution.stats.completeness()
        assert report["refusals_by_kind"]["origin-bytes"] > 0
        # Charged bytes stop a little past the budget (the admitting fetch
        # may overshoot once), never grow unboundedly.
        hostile_bytes = sum(
            r.response_size for r in execution.client.log.records if dep.origins[0] in r.url
        )
        assert hostile_bytes < 4 * 4096


class TestGrowingDocument:
    def test_growth_is_cut_at_the_read_cap(self, tiny_universe, adversary):
        cap = 16 * 1024
        plan = AdversaryPlan(seed=21, kinds=("growing-doc",), growth_step_triples=192)

        soft_dep = adversary(
            AdversaryPlan(
                seed=21, kinds=("growing-doc",), growth_step_triples=192, origin_prefix="adv-gs"
            )
        )
        soft_sizes = []
        for _ in range(12):
            execution = run_discover(tiny_universe, lures=soft_dep.lures, benign_seeds=False)
            soft_sizes.append(
                max(r.response_size for r in execution.client.log.records if "/doc" in r.url)
            )
        # The attack is real: the document grows on every re-fetch, and the
        # unhardened engine eventually buffers >= 10x what the cap allows.
        assert soft_sizes == sorted(soft_sizes) and soft_sizes[0] < soft_sizes[-1]
        assert soft_sizes[-1] >= 10 * cap

        hard_dep = adversary(plan.__class__(**{**_asdict(plan), "origin_prefix": "adv-gh"}))
        refused_rounds = 0
        for _ in range(12):
            execution = run_discover(
                tiny_universe,
                lures=hard_dep.lures,
                network=no_retry_network(max_response_bytes=cap),
                benign_seeds=False,
            )
            report = execution.stats.completeness()
            if report["refusals_by_kind"].get("doc-bytes"):
                refused_rounds += 1
            # No parsed hostile body ever exceeded the cap.
            assert all(
                r.response_size <= cap
                for r in execution.client.log.records
                if "/doc" in r.url
            )
        assert refused_rounds >= 10  # every round past the cap is refused

    def test_benign_results_identical_under_read_cap(self, tiny_universe, adversary):
        dep = adversary(AdversaryPlan(seed=22, kinds=("growing-doc",), origin_prefix="adv-gb"))
        execution = run_discover(
            tiny_universe,
            lures=dep.lures,
            traversal=hardened_traversal(max_origin_derefs=GENEROUS_DEREFS),
            network=no_retry_network(max_response_bytes=16 * 1024),
        )
        assert result_key(execution) == baseline_results(tiny_universe)


class TestOversizedDocument:
    def test_read_cap_aborts_the_transfer(self, tiny_universe, adversary):
        cap = 64 * 1024
        soft_dep = adversary(
            AdversaryPlan(seed=31, kinds=("oversized-doc",), oversized_bytes=1 << 20,
                          origin_prefix="adv-os")
        )
        execution = run_discover(tiny_universe, lures=soft_dep.lures, benign_seeds=False)
        soft_bytes = sum(
            r.response_size for r in execution.client.log.records if soft_dep.origins[0] in r.url
        )
        assert soft_bytes >= 10 * cap  # the unhardened engine swallowed it whole

        hard_dep = adversary(
            AdversaryPlan(seed=31, kinds=("oversized-doc",), oversized_bytes=1 << 20,
                          origin_prefix="adv-oh")
        )
        execution = run_discover(
            tiny_universe,
            lures=hard_dep.lures,
            network=no_retry_network(max_response_bytes=cap),
            benign_seeds=False,
        )
        report = execution.stats.completeness()
        assert report["refusals_by_kind"] == {"doc-bytes": 1}
        assert set(report["refusals_by_origin"]) == {hard_dep.origins[0]}
        hard_bytes = sum(
            r.response_size for r in execution.client.log.records if hard_dep.origins[0] in r.url
        )
        assert hard_bytes < cap  # only the tiny container body was ever parsed
        # The refusal is permanent: no retries were burned on it.
        assert execution.stats.http_retries == 0

    def test_parse_cap_refuses_before_tokenizing(self, tiny_universe, adversary):
        dep = adversary(
            AdversaryPlan(seed=32, kinds=("oversized-doc",), oversized_bytes=1 << 20,
                          origin_prefix="adv-op")
        )
        execution = run_discover(
            tiny_universe,
            lures=dep.lures,
            traversal=TraversalPolicy(max_parse_bytes=64 * 1024),
            benign_seeds=False,
        )
        report = execution.stats.completeness()
        assert report["refusals_by_kind"] == {"parse-bytes": 1}
        assert not report["complete"]

    def test_benign_results_identical_under_caps(self, tiny_universe, adversary):
        dep = adversary(
            AdversaryPlan(seed=33, kinds=("oversized-doc",), oversized_bytes=1 << 20,
                          origin_prefix="adv-ob")
        )
        execution = run_discover(
            tiny_universe,
            lures=dep.lures,
            traversal=hardened_traversal(
                max_origin_derefs=GENEROUS_DEREFS, max_parse_bytes=256 * 1024
            ),
            network=no_retry_network(max_response_bytes=256 * 1024),
        )
        assert result_key(execution) == baseline_results(tiny_universe)
        assert execution.stats.completeness()["refusals_by_kind"]["doc-bytes"] == 1


class TestSlowTrickle:
    def test_timeout_plus_budget_bound_the_stall(self, tiny_universe, adversary):
        delay = 0.03
        soft_dep = adversary(
            AdversaryPlan(seed=41, kinds=("slow-trickle",), trickle_chain=40,
                          trickle_delay=delay, origin_prefix="adv-ss")
        )
        started = time.monotonic()
        run_discover(tiny_universe, lures=soft_dep.lures, benign_seeds=False)
        soft_elapsed = time.monotonic() - started
        soft_injected = soft_dep.fault_plan.injected_by_kind.get("trickle", 0)
        assert soft_injected >= 40  # paid the full drip for the whole chain
        assert soft_elapsed >= 40 * delay * 0.9
        soft_dep.uninstall()  # retract its fault plan before the hardened run

        hard_dep = adversary(
            AdversaryPlan(seed=41, kinds=("slow-trickle",), trickle_chain=40,
                          trickle_delay=delay, origin_prefix="adv-sh")
        )
        started = time.monotonic()
        execution = run_discover(
            tiny_universe,
            lures=hard_dep.lures,
            traversal=hardened_traversal(max_origin_derefs=2),
            network=no_retry_network(request_timeout=0.01, max_link_requeues=2),
            benign_seeds=False,
        )
        hard_elapsed = time.monotonic() - started
        hard_injected = hard_dep.fault_plan.injected_by_kind.get("trickle", 0)
        assert hard_injected <= 2  # the origin budget stops re-feeding the stall
        assert soft_injected >= 10 * hard_injected
        assert hard_elapsed < soft_elapsed / 2
        report = execution.stats.completeness()
        assert report["http_timeouts"] >= 1
        assert report["refusals_by_kind"].get("origin-derefs", 0) >= 1
        assert not report["complete"]

    def test_benign_results_identical_under_timeout(self, tiny_universe, adversary):
        dep = adversary(
            AdversaryPlan(seed=42, kinds=("slow-trickle",), trickle_chain=8,
                          trickle_delay=0.05, origin_prefix="adv-sb")
        )
        execution = run_discover(
            tiny_universe,
            lures=dep.lures,
            traversal=hardened_traversal(max_origin_derefs=GENEROUS_DEREFS),
            network=no_retry_network(request_timeout=0.01),
        )
        assert result_key(execution) == baseline_results(tiny_universe)
        assert execution.stats.http_timeouts >= 1


class TestPoisoning:
    def _targets(self, universe):
        from repro.solidbench import discover_query

        query = discover_query(universe, 1, 5)
        return [universe.webid(query.person_index)]

    def test_unhardened_results_are_poisoned(self, tiny_universe, adversary):
        dep = adversary(
            AdversaryPlan(seed=51, kinds=("poison",), poison_docs=12, origin_prefix="adv-ps"),
            targets=self._targets(tiny_universe),
        )
        execution = run_discover(tiny_universe, lures=dep.lures)
        tainted = [b for b in execution.bindings if is_tainted_binding(b)]
        assert tainted, "fabricated posts should reach the unhardened results"
        assert any(POISON_WATERMARK in repr(b) for b in tainted)
        assert result_key(execution) != baseline_results(tiny_universe)

    def test_hardened_restricted_results_equal_baseline(self, tiny_universe, adversary):
        dep = adversary(
            AdversaryPlan(seed=52, kinds=("poison",), poison_docs=300, origin_prefix="adv-ph"),
            targets=self._targets(tiny_universe),
        )
        execution = run_discover(
            tiny_universe,
            lures=dep.lures,
            traversal=hardened_traversal(max_origin_derefs=GENEROUS_DEREFS),
        )
        benign = sorted(
            repr(b) for b in execution.bindings if not is_tainted_binding(b)
        )
        assert benign == baseline_results(tiny_universe)
        report = execution.stats.completeness()
        assert report["refusals_by_kind"]["origin-derefs"] > 0
        assert dep.total_requests() <= GENEROUS_DEREFS

    def test_lure_only_cost_bounded_10x(self, tiny_universe, adversary):
        hard_dep = adversary(
            AdversaryPlan(seed=53, kinds=("poison",), poison_docs=120, origin_prefix="adv-pc"),
            targets=self._targets(tiny_universe),
        )
        run_discover(
            tiny_universe,
            lures=hard_dep.lures,
            traversal=hardened_traversal(max_origin_derefs=8),
            benign_seeds=False,
        )
        assert hard_dep.total_requests() == 8

        soft_dep = adversary(
            AdversaryPlan(seed=53, kinds=("poison",), poison_docs=120, origin_prefix="adv-pd"),
            targets=self._targets(tiny_universe),
        )
        run_discover(tiny_universe, lures=soft_dep.lures, benign_seeds=False)
        assert soft_dep.total_requests() >= 10 * hard_dep.total_requests()


def _asdict(plan: AdversaryPlan) -> dict:
    import dataclasses

    return {f.name: getattr(plan, f.name) for f in dataclasses.fields(plan)}
