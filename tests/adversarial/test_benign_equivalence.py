"""Hypothesis property: hardening makes any adversary unobservable in
benign results.

For *any* seeded :class:`AdversaryPlan` (any non-empty subset of the five
attack classes, any seed), the hardened engine's results restricted to
benign pods are multiset-identical to the adversary-free run.  Lures are
delivered as extra seeds — benign documents are never modified — so the
only way the property could fail is hostile data displacing, duplicating,
or suppressing benign results.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.solidbench import deploy_adversary, discover_query
from repro.solidbench.adversary import ATTACK_KINDS, AdversaryPlan, is_tainted_binding

from .conftest import baseline_results, hardened_traversal, no_retry_network, run_discover

#: Budgets generous for the benign host, binding for hostile origins.
_DEREFS = 256
_READ_CAP = 32 * 1024


def _plan(seed: int, kinds: tuple[str, ...]) -> AdversaryPlan:
    return AdversaryPlan(
        seed=seed,
        kinds=kinds,
        oversized_bytes=128 * 1024,
        trickle_chain=6,
        trickle_delay=0.004,
        poison_docs=6,
        growth_step_triples=64,
    )


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=99_999),
    kinds=st.sets(st.sampled_from(ATTACK_KINDS), min_size=1).map(
        lambda s: tuple(sorted(s))
    ),
)
def test_hardened_benign_results_equal_adversary_free_run(tiny_universe, seed, kinds):
    query = discover_query(tiny_universe, 1, 5)
    deployment = deploy_adversary(
        tiny_universe.internet,
        _plan(seed, kinds),
        targets=[tiny_universe.webid(query.person_index)],
    )
    try:
        execution = run_discover(
            tiny_universe,
            lures=deployment.lures,
            traversal=hardened_traversal(max_origin_derefs=_DEREFS),
            network=no_retry_network(max_response_bytes=_READ_CAP, request_timeout=0.05),
        )
    finally:
        deployment.uninstall()
    benign = sorted(repr(b) for b in execution.bindings if not is_tainted_binding(b))
    assert benign == baseline_results(tiny_universe)
