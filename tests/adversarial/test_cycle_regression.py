"""Regression: container cycles terminate under the seen-URL set even
when every revisit serves a *different* validator.

The DocumentStore keys parsed documents by HTTP validator (ETag, else a
body digest).  A hostile pair of containers linking to each other whose
ETags mutate per request defeats that dedup completely — every fetch
looks like a brand-new revision.  Termination must therefore come from
the link queue's per-execution seen-URL set, never from validator
identity.  This pins that down: each cycle document is fetched exactly
once per execution, executions re-fetch (the mutated validator misses
the store) but never loop.
"""

from __future__ import annotations

from repro.ltqp.dereference import Dereferencer
from repro.ltqp.engine import EngineConfig, LinkTraversalEngine
from repro.net.client import HttpClient
from repro.net.latency import NoLatency
from repro.net.router import Internet
from repro.service.docstore import DocumentStore
from repro.solidbench.adversary import AdversaryPlan, deploy_adversary

QUERY = "SELECT ?s WHERE { ?s ?p ?o }"


def _cycle_engine():
    internet = Internet()
    deployment = deploy_adversary(
        internet, AdversaryPlan(seed=9, kinds=("growing-doc",), origin_prefix="adv-cyc")
    )
    app = deployment.apps[deployment.origins[0]]
    client = HttpClient(internet, latency=NoLatency())
    store = DocumentStore()
    dereferencer = Dereferencer(client, document_store=store)
    engine = LinkTraversalEngine(
        client, config=EngineConfig(worker_count=2), dereferencer=dereferencer
    )
    return engine, app, store


class TestMutatingEtagCycle:
    def test_single_execution_fetches_each_cycle_node_once(self):
        engine, app, _ = _cycle_engine()
        seeds = [app.url("/cycle/a")]
        execution = engine.query(QUERY, seeds=seeds).run_sync()
        assert app.requests_by_path.get("/cycle/a") == 1
        assert app.requests_by_path.get("/cycle/b") == 1
        assert execution.stats.documents_fetched == 2

    def test_revisits_reparse_but_still_terminate(self):
        engine, app, store = _cycle_engine()
        seeds = [app.url("/cycle/a")]
        for round_number in range(1, 4):
            execution = engine.query(QUERY, seeds=seeds).run_sync()
            # Exactly one more fetch per node per execution — the cycle
            # never spins within a run, no matter how often it is re-run.
            assert app.requests_by_path["/cycle/a"] == round_number
            assert app.requests_by_path["/cycle/b"] == round_number
            # The mutating validator defeats store dedup every time: no
            # execution ever gets a store hit, each re-parses both nodes.
            assert execution.stats.documents_from_store == 0
        assert store.invalidations >= 2  # the defeated dedup is visible

    def test_cycle_counts_are_attributed_in_completeness(self):
        engine, app, _ = _cycle_engine()
        execution = engine.query(QUERY, seeds=[app.url("/cycle/a")]).run_sync()
        report = execution.stats.completeness()
        assert report["documents_fetched"] == 2
        assert report["documents_attempted"] == 2
        assert report["complete"]
