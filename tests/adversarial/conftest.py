"""Shared helpers for the adversarial suite.

Every test here follows the same scheme: deploy a seeded
:class:`~repro.solidbench.adversary.AdversaryPlan` on the session
universe's internet, run a benign Discover query whose seed list has the
adversary's lure URLs appended, and compare against the adversary-free
baseline.  Benign documents are never modified, so the baseline is
computed once per universe.

Cost is measured deterministically (requests answered by the hostile
apps, bytes in the request log, fault-injection counters) rather than by
wall clock wherever possible.
"""

from __future__ import annotations

import pytest

from repro.ltqp import EngineConfig, NetworkPolicy, TraversalPolicy
from repro.net.resilience import BreakerPolicy, RetryPolicy
from repro.solidbench import deploy_adversary, discover_query


def no_retry_network(**kwargs) -> NetworkPolicy:
    """Retries/breakers off so attack costs are exact request counts."""
    kwargs.setdefault("retry", RetryPolicy.disabled())
    kwargs.setdefault("breaker", BreakerPolicy(failure_threshold=0))
    kwargs.setdefault("max_link_requeues", 0)
    return NetworkPolicy(**kwargs)


def hardened_traversal(**kwargs) -> TraversalPolicy:
    """The suite's reference hardening: tight per-origin budgets."""
    kwargs.setdefault("max_origin_derefs", 8)
    kwargs.setdefault("queue_policy", "fair")
    return TraversalPolicy(**kwargs)


def run_discover(
    universe,
    lures=(),
    traversal=None,
    network=None,
    template: int = 1,
    variant: int = 5,
    max_documents: int = 0,
    benign_seeds: bool = True,
):
    """Run one Discover query (optionally luring traversal to hostile
    origins) and return the finished execution handle.

    ``benign_seeds=False`` drops the query's own seeds, leaving only the
    lures — a pure attack-cost measurement with no benign traffic."""
    query = discover_query(universe, template, variant)
    config = EngineConfig(
        network=network if network is not None else no_retry_network(),
        traversal=traversal if traversal is not None else TraversalPolicy(),
    )
    if max_documents:
        config.max_documents = max_documents
    engine = universe.fast_engine(config=config)
    seeds = (list(query.seeds) if benign_seeds else []) + list(lures)
    execution = engine.query(query.text, seeds=seeds).run_sync()
    execution.client = engine.client  # the per-run request log, for byte counts
    return execution


def result_key(execution) -> list[str]:
    """Canonical (order-independent) multiset of result bindings."""
    return sorted(repr(binding) for binding in execution.bindings)


_BASELINES: dict[tuple, list[str]] = {}


def baseline_results(universe, template: int = 1, variant: int = 5) -> list[str]:
    """The adversary-free answer, cached per (universe, query)."""
    key = (id(universe), template, variant)
    if key not in _BASELINES:
        _BASELINES[key] = result_key(run_discover(universe, template=template, variant=variant))
    return _BASELINES[key]


@pytest.fixture()
def adversary(tiny_universe):
    """Factory fixture: deploy a plan, guarantee uninstall afterwards."""
    deployments = []

    def deploy(plan, targets=()):
        deployment = deploy_adversary(tiny_universe.internet, plan, targets=targets)
        deployments.append(deployment)
        return deployment

    yield deploy
    for deployment in deployments:
        deployment.uninstall()
