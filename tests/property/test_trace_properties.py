"""Property tests: the span tree is a faithful account of execution.

For *any* seeded transient fault plan, a traced Discover run must
produce a trace that (a) is structurally well-formed — unique ids,
closed spans, child intervals nested inside parents, sibling starts
monotone; (b) reconciles 1:1 with the request log — every
``RequestRecord`` has exactly one matching ``attempt`` span and vice
versa; (c) agrees with :class:`ExecutionStats` on every derived count;
and (d) is deterministic — the same seed yields the identical tree.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ltqp import EngineConfig, NetworkPolicy
from repro.net.faults import FaultPlan
from repro.net.resilience import RetryPolicy
from repro.obs import (
    Metrics,
    Tracer,
    check_trace_invariants,
    match_requests_to_attempts,
    span_tree_signature,
    trace_execution_stats,
)
from repro.solidbench import discover_query


def _engine_config(deterministic: bool = False) -> EngineConfig:
    network = NetworkPolicy(
        retry=RetryPolicy(max_attempts=4, base_delay=0.0001, max_delay=0.001)
    )
    if deterministic:
        # Per-quad advances with the wall-clock flush timer disabled make
        # the pipeline spans a pure function of the delta sequence.
        return EngineConfig(
            network=network, advance_batch_quads=1, advance_flush_interval=0.0
        )
    return EngineConfig(network=network)


def traced_run(universe, plan, deterministic: bool = False):
    """One traced Discover 1.5 execution under ``plan``; fault plan removed after."""
    universe.internet.install_fault_plan(plan)
    try:
        query = discover_query(universe, 1, 5)
        engine = universe.fast_engine(config=_engine_config(deterministic))
        tracer = Tracer()
        metrics = Metrics()
        execution = engine.query(
            query.text, seeds=query.seeds, tracer=tracer, metrics=metrics
        ).run_sync()
        return execution, tracer, engine.client.log
    finally:
        universe.internet.install_fault_plan(None)


def _plan(rate, fault_seed, fail_attempts, status):
    return FaultPlan.transient(
        rate=rate, seed=fault_seed, fail_attempts=fail_attempts, status=status
    )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    rate=st.floats(min_value=0.0, max_value=0.5),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    fail_attempts=st.integers(min_value=1, max_value=3),
    status=st.sampled_from([429, 500, 503]),
)
def test_trace_well_formed_under_faults(
    tiny_universe, rate, fault_seed, fail_attempts, status
):
    _, tracer, _ = traced_run(
        tiny_universe, _plan(rate, fault_seed, fail_attempts, status)
    )
    assert check_trace_invariants(tracer) == []


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    rate=st.floats(min_value=0.0, max_value=0.5),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    fail_attempts=st.integers(min_value=1, max_value=3),
    status=st.sampled_from([429, 500, 503]),
)
def test_every_request_record_has_exactly_one_attempt_span(
    tiny_universe, rate, fault_seed, fail_attempts, status
):
    _, tracer, log = traced_run(
        tiny_universe, _plan(rate, fault_seed, fail_attempts, status)
    )
    assert len(log.records) > 0
    assert match_requests_to_attempts(log, tracer) == []


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    rate=st.floats(min_value=0.0, max_value=0.5),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    fail_attempts=st.integers(min_value=1, max_value=3),
    status=st.sampled_from([429, 500, 503]),
)
def test_stats_reconcile_with_trace_under_faults(
    tiny_universe, rate, fault_seed, fail_attempts, status
):
    execution, tracer, _ = traced_run(
        tiny_universe, _plan(rate, fault_seed, fail_attempts, status)
    )
    stats = execution.stats
    derived = trace_execution_stats(tracer)
    assert derived["documents_fetched"] == stats.documents_fetched
    assert derived["http_retries"] == stats.http_retries
    assert derived["time_to_first_result"] == stats.time_to_first_result


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(fault_seed=st.integers(min_value=0, max_value=10_000))
def test_same_seed_gives_identical_span_tree(tiny_universe, fault_seed):
    # A FaultPlan tracks per-URL attempt streaks, so each run needs a
    # fresh plan built from the same seed.
    def plan():
        return FaultPlan.transient(rate=0.2, seed=fault_seed, fail_attempts=2)

    first_exec, first_trace, _ = traced_run(tiny_universe, plan(), deterministic=True)
    second_exec, second_trace, _ = traced_run(tiny_universe, plan(), deterministic=True)
    assert len(first_exec) == len(second_exec)
    assert span_tree_signature(first_trace) == span_tree_signature(second_trace)
