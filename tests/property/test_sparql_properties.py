"""Property-based tests for SPARQL expression and path semantics."""

from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, NamedNode, Triple
from repro.rdf.terms import XSD_INTEGER
from repro.sparql.algebra import (
    AlternativePath,
    Arithmetic,
    Compare,
    InversePath,
    OneOrMorePath,
    PredicatePath,
    SequencePath,
    TermExpr,
    ZeroOrMorePath,
)
from repro.sparql.bindings import Binding
from repro.sparql.expr import ExpressionError, ExpressionEvaluator, compare_terms
from repro.sparql.paths import evaluate_path

EMPTY = Binding()
EVALUATOR = ExpressionEvaluator()

integers = st.integers(-10**6, 10**6)


def int_lit(value: int) -> Literal:
    return Literal(str(value), datatype=XSD_INTEGER)


class TestArithmeticProperties:
    @given(integers, integers)
    def test_addition_matches_python(self, a, b):
        result = EVALUATOR.evaluate(
            Arithmetic("+", TermExpr(int_lit(a)), TermExpr(int_lit(b))), EMPTY
        )
        assert result.to_python() == a + b

    @given(integers, integers)
    def test_addition_commutative(self, a, b):
        ab = EVALUATOR.evaluate(Arithmetic("+", TermExpr(int_lit(a)), TermExpr(int_lit(b))), EMPTY)
        ba = EVALUATOR.evaluate(Arithmetic("+", TermExpr(int_lit(b)), TermExpr(int_lit(a))), EMPTY)
        assert ab == ba

    @given(integers, integers)
    def test_subtraction_inverts_addition(self, a, b):
        summed = EVALUATOR.evaluate(
            Arithmetic("+", TermExpr(int_lit(a)), TermExpr(int_lit(b))), EMPTY
        )
        back = EVALUATOR.evaluate(
            Arithmetic("-", TermExpr(summed), TermExpr(int_lit(b))), EMPTY
        )
        assert back.to_python() == a


class TestComparisonProperties:
    @given(integers, integers)
    def test_trichotomy(self, a, b):
        left, right = int_lit(a), int_lit(b)
        outcomes = [
            compare_terms(left, right, "<"),
            compare_terms(left, right, "="),
            compare_terms(left, right, ">"),
        ]
        assert outcomes.count(True) == 1

    @given(integers, integers)
    def test_comparison_matches_python(self, a, b):
        assert compare_terms(int_lit(a), int_lit(b), "<=") == (a <= b)

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_string_comparison_matches_python(self, a, b):
        assert compare_terms(Literal(a), Literal(b), "<") == (a < b)

    @given(integers)
    def test_numeric_equality_across_datatypes(self, a):
        from repro.rdf.terms import XSD_DECIMAL

        assert compare_terms(int_lit(a), Literal(str(a), datatype=XSD_DECIMAL), "=")


# -- path properties over random small graphs ------------------------------

nodes = st.sampled_from([NamedNode(f"http://x/n{i}") for i in range(5)])
edges = st.lists(st.tuples(nodes, nodes), max_size=15)
P = NamedNode("http://x/p")


def graph_of(edge_list):
    return Graph(Triple(s, P, o) for s, o in edge_list)


class TestPathProperties:
    @given(edges)
    @settings(max_examples=60)
    def test_inverse_swaps_pairs(self, edge_list):
        graph = graph_of(edge_list)
        forward = set(evaluate_path(graph, None, PredicatePath(P), None))
        backward = set(evaluate_path(graph, None, InversePath(PredicatePath(P)), None))
        assert backward == {(o, s) for s, o in forward}

    @given(edges)
    @settings(max_examples=60)
    def test_alternative_is_union(self, edge_list):
        graph = graph_of(edge_list)
        base = PredicatePath(P)
        single = set(evaluate_path(graph, None, base, None))
        doubled = set(evaluate_path(graph, None, AlternativePath((base, base)), None))
        assert doubled == single

    @given(edges)
    @settings(max_examples=60)
    def test_one_or_more_contains_single_step(self, edge_list):
        graph = graph_of(edge_list)
        single = set(evaluate_path(graph, None, PredicatePath(P), None))
        closure = set(evaluate_path(graph, None, OneOrMorePath(PredicatePath(P)), None))
        assert single <= closure

    @given(edges)
    @settings(max_examples=60)
    def test_closure_is_transitive(self, edge_list):
        graph = graph_of(edge_list)
        closure = set(evaluate_path(graph, None, OneOrMorePath(PredicatePath(P)), None))
        for a, b in closure:
            for c, d in closure:
                if b == c:
                    assert (a, d) in closure

    @given(edges)
    @settings(max_examples=40)
    def test_sequence_of_self_is_two_hops(self, edge_list):
        graph = graph_of(edge_list)
        base = PredicatePath(P)
        two_hop = set(evaluate_path(graph, None, SequencePath((base, base)), None))
        single = set(evaluate_path(graph, None, base, None))
        manual = {(a, d) for a, b in single for c, d in single if b == c}
        assert two_hop == manual

    @given(edges, nodes)
    @settings(max_examples=40)
    def test_zero_or_more_reflexive_at_bound_subject(self, edge_list, start):
        graph = graph_of(edge_list)
        result = set(evaluate_path(graph, start, ZeroOrMorePath(PredicatePath(P)), None))
        assert (start, start) in result
