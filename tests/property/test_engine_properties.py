"""Property-based tests for query evaluation and the incremental pipeline.

The central property: for any (monotonic) BGP query and any dataset,
feeding the data incrementally through the pipelined operators must yield
exactly the same solution multiset as snapshot evaluation over the final
data — regardless of how the data is partitioned into delta batches or
ordered.  This is the invariant that makes "query processing in parallel
with traversal" (paper §2) sound.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.ltqp.pipeline import compile_pipeline
from repro.rdf import Dataset, Graph, Literal, NamedNode, Quad, Triple, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.algebra import BGP, Distinct, Join, Project, Union
from repro.sparql.bindings import Binding
from repro.sparql.eval import SnapshotEvaluator
from repro.sparql.planner import plan_bgp_order

# A tiny closed world: few node/predicate names → dense joins.
nodes = st.sampled_from([NamedNode(f"http://x/n{i}") for i in range(6)])
predicates = st.sampled_from([NamedNode(f"http://x/p{i}") for i in range(3)])
values = st.sampled_from([Literal(str(i)) for i in range(3)])
triples = st.builds(Triple, nodes, predicates, nodes | values)
datasets = st.lists(triples, min_size=0, max_size=25)

variables = st.sampled_from([Variable(name) for name in "abcd"])
pattern_terms = nodes | variables
patterns = st.builds(TriplePattern, pattern_terms, predicates | variables, pattern_terms | values)
bgps = st.lists(patterns, min_size=1, max_size=3).map(lambda ps: BGP(tuple(ps)))


def snapshot_solutions(op, data: list[Triple]) -> list[Binding]:
    return sorted(
        SnapshotEvaluator(Graph(data)).evaluate(op),
        key=lambda b: sorted((v.value, str(t)) for v, t in b.items()),
    )


def incremental_solutions(op, data: list[Triple], chunk: int) -> list[Binding]:
    pipeline = compile_pipeline(op)
    dataset = Dataset()
    produced: list[Binding] = []
    graph_counter = 0
    for start in range(0, len(data), chunk):
        graph_counter += 1
        graph = NamedNode(f"https://h/doc{graph_counter}")
        for triple in data[start:start + chunk]:
            dataset.add(Quad(triple.subject, triple.predicate, triple.object, graph))
        produced.extend(pipeline.advance(dataset))
    return sorted(
        produced, key=lambda b: sorted((v.value, str(t)) for v, t in b.items())
    )


class TestPipelineEquivalence:
    @given(bgps, datasets, st.integers(1, 7))
    @settings(max_examples=80, deadline=None)
    def test_incremental_bgp_equals_snapshot(self, bgp, data, chunk):
        assert incremental_solutions(bgp, data, chunk) == snapshot_solutions(bgp, data)

    @given(bgps, bgps, datasets, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_incremental_union_equals_snapshot(self, left, right, data, chunk):
        op = Union(left, right)
        assert incremental_solutions(op, data, chunk) == snapshot_solutions(op, data)

    @given(bgps, datasets, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_incremental_distinct_equals_snapshot(self, bgp, data, chunk):
        op = Distinct(Project(bgp, tuple(sorted(bgp.variables(), key=lambda v: v.value))))
        assert incremental_solutions(op, data, chunk) == snapshot_solutions(op, data)

    @given(bgps, datasets)
    @settings(max_examples=40, deadline=None)
    def test_chunking_is_irrelevant(self, bgp, data):
        one_by_one = incremental_solutions(bgp, data, 1)
        all_at_once = incremental_solutions(bgp, data, max(1, len(data)))
        assert one_by_one == all_at_once


class TestPlannerProperties:
    @given(st.lists(patterns, min_size=1, max_size=5))
    @settings(max_examples=60)
    def test_plan_is_a_permutation(self, pattern_list):
        ordered = plan_bgp_order(pattern_list)
        assert sorted(map(id, ordered)) == sorted(map(id, pattern_list))

    @given(bgps, datasets)
    @settings(max_examples=40, deadline=None)
    def test_plan_order_does_not_change_results(self, bgp, data):
        # Evaluating with the planner's order and the original order agree.
        planned = snapshot_solutions(bgp, data)
        reversed_bgp = BGP(tuple(reversed(bgp.patterns)))
        assert planned == snapshot_solutions(reversed_bgp, data)


class TestJoinAlgebraProperties:
    @given(bgps, bgps, datasets)
    @settings(max_examples=40, deadline=None)
    def test_join_commutativity(self, left, right, data):
        assert snapshot_solutions(Join(left, right), data) == snapshot_solutions(
            Join(right, left), data
        )

    @given(bgps, datasets)
    @settings(max_examples=40, deadline=None)
    def test_union_idempotent_under_distinct(self, bgp, data):
        projected = Project(bgp, tuple(sorted(bgp.variables(), key=lambda v: v.value)))
        once = snapshot_solutions(Distinct(projected), data)
        doubled = snapshot_solutions(Distinct(Union(projected, projected)), data)
        assert once == doubled
