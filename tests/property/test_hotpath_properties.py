"""Property tests for the hot-path machinery: routing, batching, interning.

Two invariants introduced by the hot-path overhaul:

* Predicate-routed, micro-batched delta dispatch is *semantically
  invisible*: for any BGP, any dataset, any partition of the data into
  documents, and any document arrival order, the pipeline produces exactly
  the snapshot answer multiset.
* Term interning is *observationally invisible*: an interned term is
  ``==`` to, and hashes identically to, a freshly constructed term with
  the same value — so interned and non-interned terms mix freely in sets,
  dicts, and indexes.
"""

from hypothesis import given, settings, strategies as st

from repro.ltqp.pipeline import compile_pipeline
from repro.rdf import Dataset, Graph, Literal, NamedNode, Quad, Triple, Variable
from repro.rdf.terms import intern, intern_iri
from repro.rdf.triples import TriplePattern
from repro.sparql.algebra import BGP
from repro.sparql.eval import SnapshotEvaluator

# Same tiny closed world as test_engine_properties: dense joins, few names.
nodes = st.sampled_from([NamedNode(f"http://x/n{i}") for i in range(6)])
predicates = st.sampled_from([NamedNode(f"http://x/p{i}") for i in range(3)])
values = st.sampled_from([Literal(str(i)) for i in range(3)])
triples = st.builds(Triple, nodes, predicates, nodes | values)

variables = st.sampled_from([Variable(name) for name in "abcd"])
pattern_terms = nodes | variables
patterns = st.builds(
    TriplePattern, pattern_terms, predicates | variables, pattern_terms | values
)
bgps = st.lists(patterns, min_size=1, max_size=3).map(lambda ps: BGP(tuple(ps)))

# A "universe" is a handful of documents, each holding a few triples.
documents = st.lists(st.lists(triples, min_size=0, max_size=6), min_size=0, max_size=6)


def _key(binding):
    return sorted((v.value, str(t)) for v, t in binding.items())


class TestRoutedBatchedEquivalence:
    @given(bgps, documents, st.randoms(use_true_random=False), st.integers(1, 3))
    @settings(max_examples=80, deadline=None)
    def test_any_arrival_order_matches_snapshot(self, bgp, docs, rng, docs_per_advance):
        """Routing + batching never change answers, whatever order documents
        arrive in and however many are coalesced into one advance."""
        arrival = list(range(len(docs)))
        rng.shuffle(arrival)

        pipeline = compile_pipeline(bgp)
        dataset = Dataset()
        produced = []
        for start in range(0, len(arrival), docs_per_advance):
            for doc_index in arrival[start:start + docs_per_advance]:
                graph = NamedNode(f"https://h/doc{doc_index}")
                for triple in docs[doc_index]:
                    dataset.add(
                        Quad(triple.subject, triple.predicate, triple.object, graph)
                    )
            produced.extend(pipeline.advance(dataset))

        all_triples = [t for doc in docs for t in doc]
        expected = SnapshotEvaluator(Graph(all_triples)).evaluate(bgp)
        assert sorted(produced, key=_key) == sorted(expected, key=_key)


iri_texts = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters='<>"{}|^`\\'),
    min_size=1,
    max_size=40,
).map(lambda s: "http://x/" + s)


class TestInternTransparency:
    @given(iri_texts)
    @settings(max_examples=100, deadline=None)
    def test_interned_iri_equals_fresh_node(self, value):
        interned = intern_iri(value)
        fresh = NamedNode(value)
        assert interned == fresh
        assert hash(interned) == hash(fresh)
        assert len({interned, fresh}) == 1

    @given(iri_texts)
    @settings(max_examples=50, deadline=None)
    def test_interning_is_idempotent(self, value):
        assert intern_iri(value) is intern_iri(value)
        node = NamedNode(value)
        assert intern(intern(node)) is intern(node)

    @given(st.text(max_size=20), st.sampled_from(["", "en", "en-GB"]))
    @settings(max_examples=50, deadline=None)
    def test_interned_literal_equals_fresh_literal(self, value, language):
        fresh = Literal(value, language=language)
        interned = intern(fresh)
        again = Literal(value, language=language)
        assert interned == again
        assert hash(interned) == hash(again)
