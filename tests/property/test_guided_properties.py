"""Property tests for queue-discipline equivalence and guided traversal.

The invariant that makes the queue discipline an *optimization knob*
rather than a semantics knob: at equal budgets, every discipline —
including ``guided`` with no spec and no hints — must yield the result
multiset that fifo yields; traversal saturates the same reachable
document set regardless of pop order.  With a subweb specification the
answer is the *spec-restricted* one: still order-independent (the
defer/release machinery re-queues links whose source is admitted later),
and equal to the unrestricted answer whenever the spec only excludes
non-contributing documents.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ltqp import EngineConfig, LinkTraversalEngine
from repro.ltqp.guided import SubwebRule, SubwebSpecification
from repro.net import NoLatency
from repro.rdf.namespaces import SNVOC
from repro.solidbench import SolidBenchConfig, build_universe, discover_query

#: (template, variant) pairs that exercise distinct traversal shapes:
#: single-pod fan-out, forum hops, cross-pod likes.
QUERIES = [(1, 1), (2, 1), (3, 1), (5, 1), (6, 1)]

DISCIPLINES = ["lifo", "priority", "fair", "guided"]


@pytest.fixture(scope="module")
def hinted_universe():
    """Tiny universe whose pods publish cardinality-hint documents."""
    return build_universe(SolidBenchConfig(scale=0.01, seed=7, emit_hints=True))


def run(universe, template, variant, **config_kwargs):
    query = discover_query(universe, template, variant)
    engine = LinkTraversalEngine(
        universe.client(latency=NoLatency()), config=EngineConfig(**config_kwargs)
    )
    return engine.query(query.text, seeds=query.seeds).run_sync()


def multiset(execution) -> list[str]:
    return sorted(repr(binding) for binding in execution.bindings)


#: The bench-style spec: content scoped per pod (source = origin + 2 path
#: segments), foreign sources admitted only when reached via these
#: predicates — exactly how SolidBench data links pods together.
def declared_spec() -> SubwebSpecification:
    return SubwebSpecification(
        origins="declared",
        source_depth=2,
        admit_origins_via=(
            SNVOC.likes.value,
            SNVOC.hasPost.value,
            SNVOC.hasComment.value,
            SNVOC.hasReply.value,
            SNVOC.hasModerator.value,
        ),
    )


class TestDisciplineEquivalence:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        discipline=st.sampled_from(DISCIPLINES),
        query=st.sampled_from(QUERIES),
    )
    def test_every_discipline_matches_fifo(self, tiny_universe, discipline, query):
        template, variant = query
        fifo = run(tiny_universe, template, variant, queue_policy="fifo")
        other = run(tiny_universe, template, variant, queue_policy=discipline)
        assert multiset(other) == multiset(fifo)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        discipline=st.sampled_from(DISCIPLINES),
        query=st.sampled_from(QUERIES),
    )
    def test_hinted_guided_matches_unhinted_fifo(
        self, tiny_universe, hinted_universe, discipline, query
    ):
        # Hints prune infrastructure and irrelevant containers, never
        # answer-contributing documents: the hinted universe must answer
        # exactly like the plain one, under every discipline.
        template, variant = query
        plain = run(tiny_universe, template, variant, queue_policy="fifo")
        hinted = run(hinted_universe, template, variant, queue_policy=discipline)
        assert multiset(hinted) == multiset(plain)


class TestSpecRestrictedAnswer:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(query=st.sampled_from(QUERIES))
    def test_declared_origins_spec_preserves_discover_answers(
        self, hinted_universe, query
    ):
        # The Discover answers live entirely in sources reachable through
        # the admit predicates, so the spec-restricted answer equals the
        # full answer — while links_pruned shows the spec did engage.
        template, variant = query
        full = run(hinted_universe, template, variant, queue_policy="fifo")
        guided = run(
            hinted_universe,
            template,
            variant,
            queue_policy="guided",
            subweb=declared_spec(),
        )
        assert multiset(guided) == multiset(full)
        assert guided.stats.completeness()["spec_restricted"]

    def test_deny_rule_restricts_the_answer(self, hinted_universe):
        # Denying the posts containers removes exactly the post results.
        full = run(hinted_universe, 1, 1, queue_policy="fifo")
        spec = SubwebSpecification(
            rules=(SubwebRule(match="**/posts/**", action="deny", label="no-posts"),)
        )
        restricted = run(
            hinted_universe, 1, 1, queue_policy="guided", subweb=spec
        )
        assert set(multiset(restricted)) < set(multiset(full))
        report = restricted.stats.completeness()
        assert report["spec_restricted"]
        assert any(rule.startswith("spec:") for rule in report["pruned_by_rule"])
