"""Property test: resilient traversal masks any under-budget transient fault.

For *any* seeded transient FaultPlan whose per-URL failure streak is
shorter than the client's retry budget, the Discover answer multiset must
equal the fault-free run — fault injection with retries enabled is
unobservable in the results (only in the stats).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ltqp import EngineConfig, NetworkPolicy
from repro.net.faults import FaultPlan
from repro.net.resilience import RetryPolicy
from repro.solidbench import discover_query

_BASELINES: dict[int, list[str]] = {}


def run_discover(universe, plan, max_attempts=4):
    universe.internet.install_fault_plan(plan)
    try:
        query = discover_query(universe, 1, 5)
        network = NetworkPolicy(
            retry=RetryPolicy(
                max_attempts=max_attempts, base_delay=0.0001, max_delay=0.001
            )
        )
        engine = universe.fast_engine(config=EngineConfig(network=network))
        execution = engine.query(query.text, seeds=query.seeds).run_sync()
        return sorted(repr(binding) for binding in execution.bindings)
    finally:
        universe.internet.install_fault_plan(None)


def baseline(universe) -> list[str]:
    key = id(universe)
    if key not in _BASELINES:
        _BASELINES[key] = run_discover(universe, None)
    return _BASELINES[key]


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    rate=st.floats(min_value=0.05, max_value=0.5),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    fail_attempts=st.integers(min_value=1, max_value=3),
    status=st.sampled_from([429, 500, 503]),
)
def test_under_budget_faults_are_masked(
    tiny_universe, rate, fault_seed, fail_attempts, status
):
    # fail_attempts <= 3 < max_attempts=4: every faulted URL recovers
    # within one fetch's retry loop, so the answer must be unchanged.
    plan = FaultPlan.transient(
        rate=rate, seed=fault_seed, fail_attempts=fail_attempts, status=status
    )
    assert run_discover(tiny_universe, plan) == baseline(tiny_universe)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(fault_seed=st.integers(min_value=0, max_value=10_000))
def test_drop_faults_also_masked(tiny_universe, fault_seed):
    plan = FaultPlan.transient(rate=0.3, seed=fault_seed, fail_attempts=2, kind="drop")
    assert run_discover(tiny_universe, plan) == baseline(tiny_universe)
