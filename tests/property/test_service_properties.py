"""Property test: concurrency through the service is unobservable.

For *any* mix of Discover queries and any under-budget transient fault
plan, running them concurrently through one :class:`QueryService` —
sharing one client, HTTP cache, and parsed-document store — must yield,
per query, exactly the result multiset of a serial fault-free run.
Faults stay masked by retries, and no shared state leaks between
concurrent executions.
"""

import asyncio

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ltqp import EngineConfig, NetworkPolicy
from repro.net import NoLatency
from repro.net.faults import FaultPlan
from repro.net.resilience import RetryPolicy
from repro.service import QueryService, SharedResources
from repro.solidbench import discover_query

_SERIAL_BASELINES: dict[tuple[int, int], list[str]] = {}


def _network() -> NetworkPolicy:
    return NetworkPolicy(
        retry=RetryPolicy(max_attempts=4, base_delay=0.0001, max_delay=0.001)
    )


def serial_baseline(universe, template: int) -> list[str]:
    key = (id(universe), template)
    if key not in _SERIAL_BASELINES:
        named = discover_query(universe, template, 5)
        engine = universe.fast_engine(config=EngineConfig(network=_network()))
        execution = engine.query(named.text, seeds=named.seeds).run_sync()
        _SERIAL_BASELINES[key] = sorted(repr(b) for b in execution.bindings)
    return _SERIAL_BASELINES[key]


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    templates=st.lists(st.sampled_from([1, 2, 4, 5]), min_size=2, max_size=5),
    rate=st.floats(min_value=0.0, max_value=0.4),
    fault_seed=st.integers(min_value=0, max_value=10_000),
)
def test_concurrent_service_matches_serial_runs(
    tiny_universe, templates, rate, fault_seed
):
    # A *fresh* plan per run: FaultPlan is stateful (it counts attempts).
    plan = (
        FaultPlan.transient(rate=rate, seed=fault_seed, fail_attempts=2)
        if rate > 0
        else None
    )
    tiny_universe.internet.install_fault_plan(plan)
    try:
        resources = SharedResources.for_universe(tiny_universe, latency=NoLatency())
        service = QueryService(
            resources,
            config=EngineConfig(network=_network()),
            max_concurrent=len(templates),
        )
        queries = [discover_query(tiny_universe, t, 5) for t in templates]

        async def scenario():
            handles = [
                service.submit(named.text, seeds=named.seeds) for named in queries
            ]
            return await asyncio.gather(*(h.wait() for h in handles))

        results = asyncio.run(scenario())
    finally:
        tiny_universe.internet.install_fault_plan(None)

    for template, result in zip(templates, results):
        got = sorted(repr(timed.binding) for timed in result.results)
        assert got == serial_baseline(tiny_universe, template), (
            f"concurrent Discover {template} diverged from its serial run"
        )
    assert service.completed == len(templates)
