"""Property-based tests for the RDF layer (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st

from repro.rdf import (
    Graph,
    Literal,
    NamedNode,
    Triple,
    parse_ntriples,
    parse_turtle,
    serialize_ntriples,
    serialize_turtle,
)
from repro.rdf.terms import (
    XSD_BOOLEAN,
    XSD_INTEGER,
    escape_string_literal,
    unescape_string_literal,
)

# -- strategies -------------------------------------------------------------

_iri_chars = st.text(
    alphabet=string.ascii_letters + string.digits + "-._~/",
    min_size=1,
    max_size=24,
)

iris = st.builds(lambda tail: NamedNode("http://example.org/" + tail), _iri_chars)

literal_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",),  # no lone surrogates
        min_codepoint=0x09,
    ),
    max_size=48,
)

plain_literals = st.builds(Literal, literal_text)
lang_literals = st.builds(
    lambda value, lang: Literal(value, language=lang),
    literal_text,
    st.sampled_from(["en", "de", "nl-be", "fr"]),
)
typed_literals = st.builds(
    lambda n: Literal(str(n), datatype=XSD_INTEGER), st.integers(-10**9, 10**9)
) | st.builds(
    lambda b: Literal("true" if b else "false", datatype=XSD_BOOLEAN), st.booleans()
)
literals = plain_literals | lang_literals | typed_literals

triples = st.builds(Triple, iris, iris, iris | literals)
triple_lists = st.lists(triples, max_size=30)


class TestStringEscaping:
    @given(literal_text)
    def test_escape_roundtrip(self, text):
        assert unescape_string_literal(escape_string_literal(text)) == text

    @given(literal_text)
    def test_escaped_form_has_no_raw_quotes_or_newlines(self, text):
        escaped = escape_string_literal(text)
        assert "\n" not in escaped and '"' not in escaped.replace('\\"', "")


class TestSerializationRoundTrips:
    @given(triple_lists)
    @settings(max_examples=60)
    def test_ntriples_roundtrip(self, items):
        assert list(parse_ntriples(serialize_ntriples(items))) == items

    @given(triple_lists)
    @settings(max_examples=60)
    def test_turtle_roundtrip(self, items):
        text = serialize_turtle(items, prefixes={})
        assert set(parse_turtle(text)) == set(items)

    @given(triple_lists)
    @settings(max_examples=30)
    def test_turtle_roundtrip_with_prefixes(self, items):
        text = serialize_turtle(items, prefixes={"ex": "http://example.org/"})
        assert set(parse_turtle(text)) == set(items)


class TestGraphInvariants:
    @given(triple_lists)
    @settings(max_examples=60)
    def test_graph_is_a_set(self, items):
        graph = Graph(items)
        assert len(graph) == len(set(items))

    @given(triple_lists, triples)
    @settings(max_examples=60)
    def test_add_then_discard_restores(self, items, extra):
        graph = Graph(items)
        before = set(graph)
        was_new = graph.add(extra)
        if was_new:
            graph.discard(extra)
        assert set(graph) == before

    @given(triple_lists)
    @settings(max_examples=40)
    def test_every_index_agrees_with_full_scan(self, items):
        graph = Graph(items)
        for triple in list(graph)[:10]:
            assert triple in set(graph.match(triple.subject, None, None))
            assert triple in set(graph.match(None, triple.predicate, None))
            assert triple in set(graph.match(None, None, triple.object))
            assert triple in set(graph.match(triple.subject, triple.predicate, None))
            assert triple in set(graph.match(None, triple.predicate, triple.object))
            assert triple in set(graph.match(triple.subject, None, triple.object))

    @given(triple_lists)
    @settings(max_examples=40)
    def test_match_results_actually_match(self, items):
        graph = Graph(items)
        if not items:
            return
        probe = items[0]
        for triple in graph.match(None, probe.predicate, None):
            assert triple.predicate == probe.predicate
