"""Property tests: live maintenance ≡ fresh evaluation over the final state.

The correctness anchor for standing queries: for ANY operator tree drawn
from the once-non-monotonic families (OPTIONAL, MINUS, GROUP BY,
ORDER BY + LIMIT/OFFSET, FILTER [NOT] EXISTS), ANY initial partition of
data into documents, and ANY sequence of document *rewrites* (including
rewrites to empty — a deleted document), replaying the initial results
plus every signed change batch from ``poll_changes`` yields exactly the
multiset a :class:`SnapshotEvaluator` computes over the final document
states.

Determinism notes (same as the unified-pipeline suite):

* ORDER BY covers every variable, so sort keys determine bindings;
  page *order* is not conveyed by signed diffs, so ordered shapes are
  compared as multisets.
* Aggregates are restricted to COUNT(*) / COUNT(?v) [DISTINCT] —
  SAMPLE and GROUP_CONCAT are arrival-order dependent by design and
  have no canonical value after a rebuild.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.ltqp.pipeline import compile_pipeline
from repro.ltqp.source import GrowingTripleSource
from repro.rdf import Graph, Literal, NamedNode, Triple, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.algebra import (
    AggregateExpr,
    BGP,
    ExistsExpr,
    Filter,
    GroupBy,
    LeftJoin,
    Minus,
    Not,
    OrderBy,
    OrderCondition,
    Slice,
    VariableExpr,
    operator_variables,
)
from repro.sparql.eval import SnapshotEvaluator

# Same tiny closed world as the other property suites: dense joins, few names.
nodes = st.sampled_from([NamedNode(f"http://x/n{i}") for i in range(6)])
predicates = st.sampled_from([NamedNode(f"http://x/p{i}") for i in range(3)])
values = st.sampled_from([Literal(str(i)) for i in range(3)])
triples = st.builds(Triple, nodes, predicates, nodes | values)

variables = st.sampled_from([Variable(name) for name in "abcd"])
pattern_terms = nodes | variables
patterns = st.builds(
    TriplePattern, pattern_terms, predicates | variables, pattern_terms | values
)
bgps = st.lists(patterns, min_size=1, max_size=3).map(lambda ps: BGP(tuple(ps)))

DOC_COUNT = 4
documents = st.lists(
    st.lists(triples, min_size=0, max_size=5), min_size=1, max_size=DOC_COUNT
)
#: An edit rewrites one document to an arbitrary new triple list
#: (possibly empty — the document went away).
edits = st.lists(
    st.tuples(
        st.integers(0, DOC_COUNT - 1), st.lists(triples, min_size=0, max_size=5)
    ),
    min_size=1,
    max_size=5,
)


def _order_all_vars(op):
    conditions = tuple(
        OrderCondition(VariableExpr(var), descending=index % 2 == 1)
        for index, var in enumerate(
            sorted(operator_variables(op), key=lambda v: v.value)
        )
    )
    return OrderBy(op, conditions)


@st.composite
def operator_trees(draw):
    """A random tree exercising each once-non-monotonic operator family."""
    base = draw(bgps)
    kind = draw(
        st.sampled_from(["bgp", "optional", "minus", "group", "order-slice", "exists"])
    )
    if kind == "bgp":
        return base
    if kind == "optional":
        return LeftJoin(base, draw(bgps), None)
    if kind == "minus":
        return Minus(base, draw(bgps))
    if kind == "group":
        group_vars = sorted(operator_variables(base), key=lambda v: v.value)
        keys = tuple((VariableExpr(var), None) for var in group_vars[:1])
        counted = draw(st.sampled_from(group_vars)) if group_vars else None
        operand = draw(
            st.sampled_from(
                [None, VariableExpr(counted)] if counted is not None else [None]
            )
        )
        distinct = operand is not None and draw(st.booleans())
        bindings = ((Variable("n"), AggregateExpr("COUNT", operand, distinct)),)
        return GroupBy(base, keys, bindings, ())
    if kind == "order-slice":
        offset = draw(st.integers(0, 2))
        limit = draw(st.sampled_from([None, 0, 1, 3, 10]))
        return Slice(_order_all_vars(base), offset, limit)
    exists = ExistsExpr(draw(bgps), negated=False)
    expression = draw(st.sampled_from([exists, Not(exists)]))
    return Filter(expression, base)


def _key(binding):
    return tuple(sorted((v.value, str(t)) for v, t in binding.items()))


def _multiset(bindings) -> Counter:
    return Counter(_key(b) for b in bindings)


def _doc_url(index: int) -> str:
    return f"https://h/doc{index}"


class TestLiveMaintenanceEquivalence:
    @given(operator_trees(), documents, edits)
    @settings(max_examples=120, deadline=None)
    def test_maintained_matches_fresh_over_final_state(self, tree, docs, edit_seq):
        """Any tree × any initial docs × any rewrite sequence ⇒ the
        maintained multiset is the fresh answer over the final state."""
        pipeline = compile_pipeline(tree, live=True)
        source = GrowingTripleSource()
        state = {index: list(doc) for index, doc in enumerate(docs)}
        maintained: Counter = Counter()
        for index, doc in state.items():
            source.add_document(_doc_url(index), doc)
            maintained.update(_key(b) for b in pipeline.advance(source.dataset))
        maintained.update(_key(b) for b in pipeline.finalize(source.dataset))
        pipeline.prepare_live(source.dataset)

        for doc_index, new_triples in edit_seq:
            index = doc_index % len(docs)
            state[index] = list(new_triples)
            source.update_document(_doc_url(index), new_triples)
            for binding, delta in pipeline.poll_changes(source.dataset):
                maintained[_key(binding)] += delta

        surviving = [t for doc in state.values() for t in doc]
        expected = SnapshotEvaluator(Graph(surviving)).evaluate(tree)
        assert +maintained == _multiset(expected)

    @given(documents, edits)
    @settings(max_examples=60, deadline=None)
    def test_edit_then_revert_nets_to_zero(self, docs, edit_seq):
        """Rewriting documents and then restoring the originals must net
        every signed change out: the maintained multiset ends exactly
        where it started."""
        pattern = TriplePattern(Variable("a"), NamedNode("http://x/p0"), Variable("b"))
        tree = LeftJoin(
            BGP((pattern,)),
            BGP((TriplePattern(Variable("b"), NamedNode("http://x/p1"), Variable("c")),)),
            None,
        )
        pipeline = compile_pipeline(tree, live=True)
        source = GrowingTripleSource()
        for index, doc in enumerate(docs):
            source.add_document(_doc_url(index), doc)
            pipeline.advance(source.dataset)
        initial = _multiset(pipeline.finalize(source.dataset))
        snapshot = Counter(initial)
        pipeline.prepare_live(source.dataset)

        net: Counter = Counter()
        for doc_index, new_triples in edit_seq:
            index = doc_index % len(docs)
            source.update_document(_doc_url(index), new_triples)
            for binding, delta in pipeline.poll_changes(source.dataset):
                net[_key(binding)] += delta
        for index, doc in enumerate(docs):
            source.update_document(_doc_url(index), doc)
            for binding, delta in pipeline.poll_changes(source.dataset):
                net[_key(binding)] += delta

        assert {k: v for k, v in net.items() if v} == {}
        assert +(snapshot + net) == +snapshot
