"""Property tests: unified incremental pipeline ≡ snapshot evaluation.

The tentpole invariant of the unified execution stack: for ANY operator
tree — including the non-monotonic operators that previously fell back to
monolithic snapshot re-evaluation (OPTIONAL, MINUS, GROUP BY, ORDER BY +
LIMIT/OFFSET, FILTER EXISTS) — ANY partition of the data into documents,
ANY document arrival order, and ANY fault plan (a subset of documents that
never arrives), feeding deltas through the incremental pipeline and
finalizing at quiescence yields exactly the answer multiset a
:class:`SnapshotEvaluator` computes over the final snapshot.

Notes on determinism:

* ORDER BY conditions cover *every* variable of the subtree, so sort keys
  determine bindings and the top-k cut cannot diverge from the snapshot
  sort on ties (ties are identical bindings).
* Aggregates are restricted to COUNT(*) / COUNT(?v) [DISTINCT], whose
  results are arrival-order independent (SAMPLE and GROUP_CONCAT are not).
* The *non-adaptive* pipeline is used: ``AdaptivePipeline`` deduplicates
  across replans by documented design, so it is not multiset-preserving.
"""

from hypothesis import given, settings, strategies as st

from repro.ltqp.pipeline import compile_pipeline
from repro.rdf import Dataset, Graph, Literal, NamedNode, Quad, Triple, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.algebra import (
    AggregateExpr,
    BGP,
    ExistsExpr,
    Filter,
    GroupBy,
    LeftJoin,
    Minus,
    Not,
    OrderBy,
    OrderCondition,
    Slice,
    VariableExpr,
    operator_variables,
)
from repro.sparql.eval import SnapshotEvaluator

# Same tiny closed world as the other property suites: dense joins, few names.
nodes = st.sampled_from([NamedNode(f"http://x/n{i}") for i in range(6)])
predicates = st.sampled_from([NamedNode(f"http://x/p{i}") for i in range(3)])
values = st.sampled_from([Literal(str(i)) for i in range(3)])
triples = st.builds(Triple, nodes, predicates, nodes | values)

variables = st.sampled_from([Variable(name) for name in "abcd"])
pattern_terms = nodes | variables
patterns = st.builds(
    TriplePattern, pattern_terms, predicates | variables, pattern_terms | values
)
bgps = st.lists(patterns, min_size=1, max_size=3).map(lambda ps: BGP(tuple(ps)))

documents = st.lists(st.lists(triples, min_size=0, max_size=6), min_size=0, max_size=6)


def _order_all_vars(op):
    """ORDER BY over every variable: keys uniquely determine bindings."""
    conditions = tuple(
        OrderCondition(VariableExpr(var), descending=index % 2 == 1)
        for index, var in enumerate(sorted(operator_variables(op), key=lambda v: v.value))
    )
    return OrderBy(op, conditions)


@st.composite
def operator_trees(draw):
    """A random tree exercising each once-non-monotonic operator family."""
    base = draw(bgps)
    kind = draw(
        st.sampled_from(
            ["bgp", "optional", "minus", "group", "order-slice", "exists"]
        )
    )
    if kind == "bgp":
        return base
    if kind == "optional":
        return LeftJoin(base, draw(bgps), None)
    if kind == "minus":
        return Minus(base, draw(bgps))
    if kind == "group":
        group_vars = sorted(operator_variables(base), key=lambda v: v.value)
        keys = tuple((VariableExpr(var), None) for var in group_vars[:1])
        counted = draw(st.sampled_from(group_vars)) if group_vars else None
        operand = draw(
            st.sampled_from(
                [None, VariableExpr(counted)] if counted is not None else [None]
            )
        )
        distinct = operand is not None and draw(st.booleans())
        bindings = ((Variable("n"), AggregateExpr("COUNT", operand, distinct)),)
        return GroupBy(base, keys, bindings, ())
    if kind == "order-slice":
        offset = draw(st.integers(0, 2))
        limit = draw(st.sampled_from([None, 0, 1, 3, 10]))
        return Slice(_order_all_vars(base), offset, limit)
    # FILTER [NOT] EXISTS over a second pattern.
    exists = ExistsExpr(draw(bgps), negated=False)
    expression = draw(st.sampled_from([exists, Not(exists)]))
    return Filter(expression, base)


def _key(binding):
    return sorted((v.value, str(t)) for v, t in binding.items())


def _canon(bindings, ordered):
    rows = [_key(b) for b in bindings]
    return rows if ordered else sorted(rows)


class TestUnifiedEquivalence:
    @given(
        operator_trees(),
        documents,
        st.randoms(use_true_random=False),
        st.integers(1, 3),
        st.lists(st.integers(0, 5), max_size=3),
    )
    @settings(max_examples=120, deadline=None)
    def test_incremental_matches_snapshot(self, tree, docs, rng, docs_per_advance, faults):
        """Any tree × any arrival order × any fault plan ⇒ snapshot answers."""
        dropped = {index for index in faults if index < len(docs)}
        arrival = [index for index in range(len(docs)) if index not in dropped]
        rng.shuffle(arrival)

        pipeline = compile_pipeline(tree)
        dataset = Dataset()
        produced = []
        for start in range(0, len(arrival), docs_per_advance):
            for doc_index in arrival[start : start + docs_per_advance]:
                graph = NamedNode(f"https://h/doc{doc_index}")
                for triple in docs[doc_index]:
                    dataset.add(
                        Quad(triple.subject, triple.predicate, triple.object, graph)
                    )
            produced.extend(pipeline.advance(dataset))
        produced.extend(pipeline.finalize(dataset))

        surviving = [t for i, doc in enumerate(docs) if i not in dropped for t in doc]
        expected = SnapshotEvaluator(Graph(surviving)).evaluate(tree)

        ordered = isinstance(tree, Slice)  # the ORDER+LIMIT/OFFSET shape
        assert _canon(produced, ordered) == _canon(expected, ordered)

    @given(documents, st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_blocking_plans_hold_output_until_finalize(self, docs, rng):
        """A blocking root emits nothing from advance(); everything arrives
        in the finalize pass — and still matches the snapshot."""
        pattern = TriplePattern(Variable("a"), NamedNode("http://x/p0"), Variable("b"))
        tree = Minus(BGP((pattern,)), BGP((pattern,)))
        arrival = list(range(len(docs)))
        rng.shuffle(arrival)

        pipeline = compile_pipeline(tree)
        assert pipeline.blocking_nodes
        dataset = Dataset()
        for doc_index in arrival:
            graph = NamedNode(f"https://h/doc{doc_index}")
            for triple in docs[doc_index]:
                dataset.add(Quad(triple.subject, triple.predicate, triple.object, graph))
            assert pipeline.advance(dataset) == []
        produced = pipeline.finalize(dataset)
        expected = SnapshotEvaluator(
            Graph([t for doc in docs for t in doc])
        ).evaluate(tree)
        assert _canon(produced, False) == _canon(expected, False)
