"""Unit tests for the span tracer: recording, nesting, invariant checks."""

from repro.obs import Span, TickClock, Tracer, check_trace_invariants


def ticked() -> Tracer:
    return Tracer(clock=TickClock(step=1.0))


class TestTickClock:
    def test_advances_on_every_call(self):
        clock = TickClock(step=0.5, start=10.0)
        assert clock() == 10.5
        assert clock() == 11.0

    def test_sequence_is_reproducible(self):
        assert [TickClock()() for _ in range(3)] == [TickClock()() for _ in range(3)]


class TestSpanRecording:
    def test_begin_assigns_sequential_ids_from_one(self):
        tracer = ticked()
        a = tracer.begin("a")
        b = tracer.begin("b", parent=a)
        assert (a.span_id, b.span_id) == (1, 2)
        assert b.parent_id == a.span_id

    def test_roots_and_children(self):
        tracer = ticked()
        root = tracer.begin("root")
        child = tracer.begin("child", parent=root)
        assert tracer.roots == [root]
        assert root.children == [child]
        assert tracer.spans == [root, child]

    def test_child_inherits_parent_track(self):
        tracer = ticked()
        root = tracer.begin("root", track=3)
        child = tracer.begin("child", parent=root)
        override = tracer.begin("other", parent=root, track=7)
        assert child.track == 3
        assert override.track == 7

    def test_end_is_idempotent_but_merges_args(self):
        tracer = ticked()
        span = tracer.begin("s")
        tracer.end(span, end=5.0, outcome="ok")
        tracer.end(span, end=99.0, extra=1)
        assert span.end == 5.0
        assert span.args == {"outcome": "ok", "extra": 1}

    def test_add_records_retroactive_closed_span(self):
        tracer = ticked()
        span = tracer.add("attempt", 2.0, 3.5, url="https://h/x")
        assert span.closed and (span.start, span.end) == (2.0, 3.5)
        assert span.duration == 1.5

    def test_instant_has_zero_duration_and_kind(self):
        tracer = ticked()
        marker = tracer.instant("first-result", ts=4.0)
        assert marker.kind == "instant"
        assert marker.start == marker.end == 4.0

    def test_duration_zero_while_open(self):
        tracer = ticked()
        span = tracer.begin("s")
        assert not span.closed and span.duration == 0.0


class TestContextManagerNesting:
    def test_cm_spans_nest_via_stack(self):
        tracer = ticked()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.closed and inner.closed

    def test_explicit_parent_overrides_stack(self):
        tracer = ticked()
        other = tracer.begin("other")
        with tracer.span("outer"):
            with tracer.span("inner", parent=other) as inner:
                pass
        assert inner.parent_id == other.span_id

    def test_cm_closes_on_exception(self):
        tracer = ticked()
        try:
            with tracer.span("boom") as span:
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert span.closed

    def test_close_open_spans(self):
        tracer = ticked()
        tracer.begin("a")
        b = tracer.begin("b")
        tracer.end(b)
        assert len(tracer.open_spans()) == 1
        assert tracer.close_open_spans(end=50.0) == 1
        assert tracer.open_spans() == []
        assert tracer.spans[0].end == 50.0


class TestInvariantChecker:
    def _well_formed(self) -> Tracer:
        tracer = ticked()
        root = tracer.begin("query", start=0.0)
        child = tracer.add("plan", 1.0, 2.0, parent=root)
        tracer.add("traversal", 2.0, 9.0, parent=root)
        tracer.end(root, end=10.0)
        return tracer

    def test_clean_tree_has_no_violations(self):
        assert check_trace_invariants(self._well_formed()) == []

    def test_unclosed_span_reported(self):
        tracer = ticked()
        tracer.begin("query")
        assert any("never closed" in v for v in check_trace_invariants(tracer))

    def test_end_before_start_reported(self):
        tracer = ticked()
        span = tracer.begin("s", start=5.0)
        span.end = 1.0
        assert check_trace_invariants(tracer) != []

    def test_child_escaping_parent_reported(self):
        tracer = ticked()
        root = tracer.begin("query", start=0.0)
        tracer.add("plan", 1.0, 99.0, parent=root)  # ends after the parent
        tracer.end(root, end=10.0)
        assert check_trace_invariants(tracer) != []

    def test_sibling_start_regression_reported(self):
        tracer = ticked()
        root = tracer.begin("query", start=0.0)
        tracer.add("a", 5.0, 6.0, parent=root)
        tracer.add("b", 1.0, 2.0, parent=root)  # recorded after, starts before
        tracer.end(root, end=10.0)
        assert check_trace_invariants(tracer) != []
