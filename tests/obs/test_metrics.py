"""Unit tests for the counters/gauges/histograms registry."""

from repro.obs import Counter, Gauge, Histogram, Metrics


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.as_dict() == {"type": "counter", "value": 3.5}


class TestGauge:
    def test_tracks_extremes_and_samples(self):
        gauge = Gauge("g")
        for value in (3.0, -1.0, 7.0):
            gauge.set(value)
        assert gauge.value == 7.0
        assert (gauge.min, gauge.max, gauge.samples) == (-1.0, 7.0, 3)

    def test_inc_dec(self):
        gauge = Gauge("g")
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 3.0
        assert gauge.samples == 2


class TestHistogram:
    def test_bucketing_and_overflow(self):
        histogram = Histogram("h", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 99.0):
            histogram.observe(value)
        assert histogram.buckets == [1, 2]
        assert histogram.overflow == 1
        assert histogram.count == 4
        assert histogram.min == 0.05 and histogram.max == 99.0

    def test_mean_and_quantile(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            histogram.observe(value)
        assert histogram.mean == 2.125
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(1.0) == 4.0

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.quantile(0.95) == 0.0


class TestMetricsRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        metrics = Metrics()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.gauge("y") is metrics.gauge("y")
        assert metrics.histogram("z") is metrics.histogram("z")
        assert len(metrics) == 3
        assert "x" in metrics and "missing" not in metrics

    def test_as_dict_sorted_and_typed(self):
        metrics = Metrics()
        metrics.counter("b.count").inc()
        metrics.gauge("a.depth").set(4)
        snapshot = metrics.as_dict()
        assert list(snapshot) == ["a.depth", "b.count"]
        assert snapshot["b.count"]["type"] == "counter"
        assert snapshot["a.depth"]["type"] == "gauge"

    def test_render_mentions_every_instrument(self):
        metrics = Metrics()
        metrics.counter("http.attempts").inc(7)
        metrics.gauge("queue.depth").set(12)
        metrics.histogram("fetch.latency_s").observe(0.03)
        text = metrics.render()
        for name in ("http.attempts", "queue.depth", "fetch.latency_s"):
            assert name in text
        assert "counter" in text and "gauge" in text and "histogram" in text
