"""Unit tests for the Chrome trace-event and text-summary exporters."""

import json

from repro.obs import (
    TickClock,
    Tracer,
    chrome_trace_events,
    render_trace_summary,
    write_chrome_trace,
)


def small_trace() -> Tracer:
    tracer = Tracer(clock=TickClock(step=0.001))
    query = tracer.begin("query", start=1.0)
    tracer.add("plan", 1.0, 1.25, parent=query)
    deref = tracer.add(
        "dereference", 1.25, 1.75, parent=query, track=2, url="https://h/doc"
    )
    tracer.add("attempt", 1.3, 1.6, parent=deref, url="https://h/doc", status=200)
    tracer.instant("first-result", parent=query, ts=1.5)
    tracer.end(query, end=2.0)
    return tracer


class TestChromeTraceEvents:
    def test_metadata_names_process_and_tracks(self):
        events = chrome_trace_events(small_trace(), process_name="test-proc")
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"test-proc", "engine", "worker-2"} <= names

    def test_complete_events_use_relative_microseconds(self):
        events = chrome_trace_events(small_trace())
        query = next(e for e in events if e["name"] == "query")
        assert query["ph"] == "X"
        assert query["ts"] == 0  # epoch = earliest span start
        assert query["dur"] == 1_000_000
        deref = next(e for e in events if e["name"] == "dereference")
        assert deref["ts"] == 250_000 and deref["dur"] == 500_000
        assert deref["tid"] == 2

    def test_parent_links_preserved_in_args(self):
        events = chrome_trace_events(small_trace())
        attempt = next(e for e in events if e["name"] == "attempt")
        deref = next(e for e in events if e["name"] == "dereference")
        assert attempt["args"]["parent_id"] == deref["args"]["span_id"]

    def test_instant_events(self):
        events = chrome_trace_events(small_trace())
        marker = next(e for e in events if e["name"] == "first-result")
        assert marker["ph"] == "i" and marker["s"] == "p"
        assert marker["ts"] == 500_000
        assert "dur" not in marker

    def test_open_spans_skipped(self):
        tracer = Tracer(clock=TickClock())
        tracer.begin("still-open")
        assert chrome_trace_events(tracer) == []

    def test_non_primitive_args_stringified(self):
        tracer = Tracer(clock=TickClock())
        tracer.add("s", 0.0, 1.0, payload=["a", "b"])
        events = chrome_trace_events(tracer)
        span = next(e for e in events if e["name"] == "s")
        assert span["args"]["payload"] == "['a', 'b']"

    def test_deterministic_under_tick_clock(self):
        assert chrome_trace_events(small_trace()) == chrome_trace_events(small_trace())


class TestWriteChromeTrace:
    def test_writes_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(small_trace(), str(path))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == count
        assert count > 0


class TestRenderTraceSummary:
    def test_tree_and_rollup(self):
        text = render_trace_summary(small_trace())
        assert "query" in text and "dereference" in text
        assert "first-result" in text
        assert "by span name" in text
        assert "https://h/doc" in text

    def test_empty_trace(self):
        assert render_trace_summary(Tracer(clock=TickClock())) == "(empty trace)"

    def test_child_cap(self):
        tracer = Tracer(clock=TickClock())
        root = tracer.begin("query", start=0.0)
        for index in range(12):
            tracer.add("child", float(index), float(index) + 0.5, parent=root)
        tracer.end(root, end=20.0)
        text = render_trace_summary(tracer, max_children=8)
        assert "… 4 more" in text
