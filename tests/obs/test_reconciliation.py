"""Trace/stats/metrics reconciliation on real engine executions.

The trace is only trustworthy if it agrees with every other account of
the same run: the engine's :class:`ExecutionStats`, the client's
:class:`RequestLog`, and the metrics registry must all derive the same
numbers.  These tests run Discover queries (clean and under injected
faults) and cross-check all four books.
"""

import pytest

from repro.ltqp import EngineConfig, NetworkPolicy
from repro.net.faults import FaultPlan
from repro.net.resilience import BreakerPolicy, CircuitBreaker, RetryPolicy
from repro.obs import (
    Metrics,
    Tracer,
    check_trace_invariants,
    match_requests_to_attempts,
    trace_execution_stats,
)
from repro.solidbench import discover_query


def traced_discover(universe, template=1, variant=5, plan=None, network=None):
    universe.internet.install_fault_plan(plan)
    try:
        query = discover_query(universe, template, variant)
        config = EngineConfig(network=network) if network is not None else None
        engine = universe.fast_engine(config=config)
        tracer = Tracer()
        metrics = Metrics()
        execution = engine.query(
            query.text, seeds=query.seeds, tracer=tracer, metrics=metrics
        ).run_sync()
        return execution, tracer, metrics, engine.client.log
    finally:
        universe.internet.install_fault_plan(None)


def fast_retry() -> NetworkPolicy:
    return NetworkPolicy(
        retry=RetryPolicy(max_attempts=4, base_delay=0.0001, max_delay=0.001)
    )


def assert_books_agree(execution, tracer, metrics, log):
    stats = execution.stats
    derived = trace_execution_stats(tracer)

    assert check_trace_invariants(tracer) == []
    assert match_requests_to_attempts(log, tracer) == []

    assert derived["documents_fetched"] == stats.documents_fetched
    assert derived["documents_retried"] == stats.documents_retried
    assert derived["documents_abandoned"] == stats.documents_abandoned
    assert derived["documents_refused"] == stats.documents_refused
    # Depth suppression is attribution-only (the document itself was
    # taken, so there is no refused dereference span); every other kind
    # must reconcile count-for-count with the trace.
    engine_kinds = {
        kind: count
        for kind, count in stats.refusals_by_kind.items()
        if kind != "depth"
    }
    assert derived["refusals_by_kind"] == engine_kinds
    assert derived["http_retries"] == stats.http_retries
    assert derived["http_timeouts"] == stats.http_timeouts
    assert derived["breaker_fast_fails"] == stats.breaker_fast_fails
    assert derived["time_to_first_result"] == stats.time_to_first_result

    assert metrics.counter("documents.fetched").value == stats.documents_fetched
    assert metrics.counter("results.emitted").value == stats.result_count
    if stats.http_retries:
        assert metrics.counter("http.retries").value == stats.http_retries


class TestCleanRun:
    def test_all_books_agree(self, tiny_universe):
        execution, tracer, metrics, log = traced_discover(tiny_universe)
        assert len(execution) > 0
        assert_books_agree(execution, tracer, metrics, log)

    def test_first_result_marker_matches_stats_exactly(self, tiny_universe):
        execution, tracer, _, _ = traced_discover(tiny_universe)
        markers = [s for s in tracer.spans if s.name == "first-result"]
        assert len(markers) == 1
        query_span = next(s for s in tracer.spans if s.name == "query")
        derived_ttfr = markers[0].start - query_span.start
        assert derived_ttfr == execution.stats.time_to_first_result

    def test_one_dereference_span_per_fetched_document(self, tiny_universe):
        execution, tracer, _, _ = traced_discover(tiny_universe)
        ok_derefs = [
            s
            for s in tracer.spans
            if s.name == "dereference" and s.args.get("outcome") == "ok"
        ]
        assert len(ok_derefs) == execution.stats.documents_fetched

    def test_http_attempt_metric_matches_log(self, tiny_universe):
        _, tracer, metrics, log = traced_discover(tiny_universe)
        network_records = [r for r in log.records if not r.from_cache]
        assert metrics.counter("http.attempts").value == len(network_records)
        assert metrics.histogram("fetch.latency_s").count == len(network_records)


class TestFaultedRun:
    def test_books_agree_under_transient_faults(self, tiny_universe):
        plan = FaultPlan.transient(rate=0.3, seed=13, fail_attempts=2)
        execution, tracer, metrics, log = traced_discover(
            tiny_universe, plan=plan, network=fast_retry()
        )
        assert execution.stats.http_retries > 0  # faults actually fired
        assert_books_agree(execution, tracer, metrics, log)

    def test_retry_attempts_carry_backoff_spans(self, tiny_universe):
        plan = FaultPlan.transient(rate=0.3, seed=13, fail_attempts=2)
        execution, tracer, _, _ = traced_discover(
            tiny_universe, plan=plan, network=fast_retry()
        )
        backoffs = [s for s in tracer.spans if s.name == "backoff"]
        assert len(backoffs) == execution.stats.http_retries
        for span in backoffs:
            assert span.end >= span.start

    def test_answer_unchanged_but_trace_differs(self, tiny_universe):
        clean_exec, clean_trace, _, _ = traced_discover(
            tiny_universe, network=fast_retry()
        )
        plan = FaultPlan.transient(rate=0.3, seed=13, fail_attempts=2)
        faulted_exec, faulted_trace, _, _ = traced_discover(
            tiny_universe, plan=plan, network=fast_retry()
        )
        assert sorted(map(repr, clean_exec.bindings)) == sorted(
            map(repr, faulted_exec.bindings)
        )
        clean_attempts = sum(1 for s in clean_trace.spans if s.name == "attempt")
        faulted_attempts = sum(1 for s in faulted_trace.spans if s.name == "attempt")
        assert faulted_attempts > clean_attempts


class TestRefusedRun:
    """Budget refusals must keep all four books in agreement.

    A link-trap origin is lured into an origin-budgeted traversal: every
    refusal the engine counts must appear in the trace as a dereference
    span with ``outcome="refused"`` and the budget kind, and
    :func:`trace_execution_stats` must re-derive the same counters.
    """

    def _refused_run(self, universe):
        from repro.ltqp import TraversalPolicy
        from repro.solidbench.adversary import AdversaryPlan, deploy_adversary

        deployment = deploy_adversary(
            universe.internet,
            AdversaryPlan(seed=7, kinds=("link-trap",), origin_prefix="adv-rec"),
        )
        try:
            query = discover_query(universe, 1, 5)
            config = EngineConfig(
                network=NetworkPolicy(
                    retry=RetryPolicy.disabled(),
                    breaker=BreakerPolicy(failure_threshold=0),
                    max_link_requeues=0,
                ),
                traversal=TraversalPolicy(max_origin_derefs=128, queue_policy="fair"),
            )
            engine = universe.fast_engine(config=config)
            tracer = Tracer()
            metrics = Metrics()
            execution = engine.query(
                query.text,
                seeds=list(query.seeds) + list(deployment.lures),
                tracer=tracer,
                metrics=metrics,
            ).run_sync()
            return execution, tracer, metrics, engine.client.log
        finally:
            deployment.uninstall()

    def test_books_agree_under_refusals(self, tiny_universe):
        execution, tracer, metrics, log = self._refused_run(tiny_universe)
        stats = execution.stats
        assert stats.documents_refused > 0  # the budget actually fired
        assert stats.refusals_by_kind.get("origin-derefs", 0) > 0
        assert_books_agree(execution, tracer, metrics, log)

    def test_every_refusal_leaves_an_attributed_span(self, tiny_universe):
        execution, tracer, _, _ = self._refused_run(tiny_universe)
        refused_spans = [
            s
            for s in tracer.spans
            if s.name == "dereference" and s.args.get("outcome") == "refused"
        ]
        assert len(refused_spans) == execution.stats.documents_refused
        for span in refused_spans:
            assert span.args.get("refused") in (
                "origin-derefs",
                "origin-bytes",
                "doc-bytes",
                "parse-bytes",
            )

    def test_refusals_are_not_failures_in_any_book(self, tiny_universe):
        execution, tracer, _, _ = self._refused_run(tiny_universe)
        derived = trace_execution_stats(tracer)
        # Refusals never double-count as failures: both books agree on
        # the (benign, pre-existing) failure count, and no failed span
        # is on the adversary's origin — every hostile-origin denial is
        # a refusal, not a failure.
        assert derived["documents_failed"] == execution.stats.documents_failed
        failed_spans = [
            s
            for s in tracer.spans
            if s.name == "dereference"
            and s.args.get("outcome") not in ("ok", "refused")
        ]
        assert not [s for s in failed_spans if "adv-rec" in s.args.get("url", "")]


class TestBreakerTransitionMetrics:
    def test_transitions_counted(self):
        metrics = Metrics()

        def hook(old: str, new: str) -> None:
            metrics.counter(f"breaker.transitions.{old}->{new}").inc()

        clock_now = [0.0]
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=2, recovery_seconds=1.0),
            clock=lambda: clock_now[0],
            on_transition=hook,
        )
        breaker.record_failure()
        breaker.record_failure()  # trips: closed -> open
        clock_now[0] = 2.0
        assert breaker.allow()  # recovery elapsed: open -> half-open probe
        breaker.record_success()  # half-open -> closed
        snapshot = metrics.as_dict()
        assert snapshot["breaker.transitions.closed->open"]["value"] == 1
        assert snapshot["breaker.transitions.open->half-open"]["value"] == 1
        assert snapshot["breaker.transitions.half-open->closed"]["value"] == 1


class TestLiveRun:
    """Live-maintenance spans must reconcile with the LiveQuery's state.

    A standing query leaves its own books: ``refresh`` spans (outcome
    changed/unchanged/failed with diff sizes) and ``apply-batch`` spans
    (signed maintenance batches).  :func:`trace_execution_stats` derives
    counters from them that must agree with the LiveQuery's event history
    and failure record — and the trace must stay well-formed even though
    maintenance happens after the query span closed.
    """

    def _traced_live(self):
        import asyncio

        from repro.ltqp.live import LiveQuery
        from repro.net.message import Request
        from repro.solidbench import SolidBenchConfig, build_universe

        universe = build_universe(SolidBenchConfig(scale=0.005, seed=7))
        pod = next(iter(universe.pods.values()))
        foaf = "http://xmlns.com/foaf/0.1/"
        query = f"SELECT ?name WHERE {{ <{pod.webid}> <{foaf}name> ?name }}"
        tracer = Tracer()
        engine = universe.fast_engine()
        live = LiveQuery(engine, query, seeds=[pod.profile_url], tracer=tracer)

        async def scenario():
            from urllib.parse import urlsplit

            await live.start()
            await live.refresh(pod.profile_url)  # unchanged: 304, no events
            parts = urlsplit(pod.profile_url)
            app = universe.internet.app_for(f"{parts.scheme}://{parts.netloc}")
            headers = {"content-type": "application/sparql-update"}
            headers.update(app.login_owner(parts.path))
            update = (
                f'DELETE DATA {{ <{pod.webid}> <{foaf}name> "{pod.owner_name}" }} ;\n'
                f'INSERT DATA {{ <{pod.webid}> <{foaf}name> "Reconciled" }}'
            )
            response = await universe.internet.dispatch(
                Request("PATCH", pod.profile_url, headers, update.encode("utf-8"))
            )
            assert response.status == 200
            await live.refresh(pod.profile_url)  # changed: -1/+1 events
            await live.refresh("ftp://nowhere.invalid/doc")  # failed

        asyncio.run(scenario())
        return live, tracer

    def test_live_counters_reconcile_with_event_history(self):
        live, tracer = self._traced_live()
        derived = trace_execution_stats(tracer)

        assert derived["refreshes"] == 3
        assert derived["refreshes_unchanged"] == 1
        assert derived["refreshes_changed"] == 1
        assert derived["refreshes_failed"] == len(live.failed_refreshes) == 1
        # One rename is exactly one retraction plus one addition.
        assert derived["diff_added"] == 1
        assert derived["diff_removed"] == 1
        # Every maintenance change the pipeline published is an event in
        # the history (initial results are not maintenance changes).
        initial = sum(1 for e in live.events if e.url == "")
        assert derived["maintenance_changes"] == len(live.events) - initial == 2
        assert derived["apply_batches"] >= 1
        assert derived["retraction_batches"] >= 1

    def test_live_trace_stays_well_formed_past_quiescence(self):
        _, tracer = self._traced_live()
        assert check_trace_invariants(tracer) == []
        # apply-batch spans nest under their refresh, never the closed
        # query span.
        by_id = {span.span_id: span for span in tracer.spans}
        for span in tracer.spans:
            if span.name == "apply-batch":
                assert by_id[span.parent_id].name == "refresh"
