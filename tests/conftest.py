"""Shared fixtures: small SolidBench universes and common RDF snippets."""

from __future__ import annotations

import pytest

from repro.solidbench import SolidBenchConfig, build_universe


@pytest.fixture(scope="session")
def tiny_universe():
    """~15 pods; enough for every Discover template to return results."""
    return build_universe(SolidBenchConfig(scale=0.01, seed=7))


@pytest.fixture(scope="session")
def small_universe():
    """~31 pods; used by heavier integration tests."""
    return build_universe(SolidBenchConfig(scale=0.02, seed=42))


@pytest.fixture()
def fast_engine(tiny_universe):
    return tiny_universe.fast_engine()
