"""Tests for RDF graph isomorphism."""

from hypothesis import given, settings, strategies as st

from repro.rdf import BlankNode, Literal, NamedNode, Triple, parse_turtle
from repro.rdf.isomorphism import find_bnode_bijection, isomorphic


def n(suffix):
    return NamedNode(f"http://x/{suffix}")


def b(label):
    return BlankNode(label)


class TestGroundGraphs:
    def test_equal_ground_graphs(self):
        triples = [Triple(n("a"), n("p"), n("b"))]
        assert isomorphic(triples, list(triples))

    def test_different_ground_graphs(self):
        assert not isomorphic(
            [Triple(n("a"), n("p"), n("b"))], [Triple(n("a"), n("p"), n("c"))]
        )

    def test_ground_difference_with_matching_bnodes(self):
        shared = Triple(b("x"), n("p"), Literal("1"))
        assert not isomorphic(
            [shared, Triple(n("a"), n("q"), n("b"))],
            [shared, Triple(n("a"), n("q"), n("c"))],
        )


class TestBlankNodeBijections:
    def test_renamed_blank_nodes_isomorphic(self):
        first = [Triple(b("x"), n("p"), Literal("1")), Triple(b("x"), n("q"), Literal("2"))]
        second = [Triple(b("y"), n("p"), Literal("1")), Triple(b("y"), n("q"), Literal("2"))]
        mapping = find_bnode_bijection(first, second)
        assert mapping == {b("x"): b("y")}

    def test_structurally_different_bnodes(self):
        first = [Triple(b("x"), n("p"), Literal("1"))]
        second = [Triple(b("y"), n("q"), Literal("1"))]
        assert not isomorphic(first, second)

    def test_chain_vs_fork(self):
        # x -> y -> z  (chain) vs  x -> y, x -> z (fork): not isomorphic.
        chain = [Triple(b("x"), n("p"), b("y")), Triple(b("y"), n("p"), b("z"))]
        fork = [Triple(b("x"), n("p"), b("y")), Triple(b("x"), n("p"), b("z"))]
        assert not isomorphic(chain, fork)

    def test_cycle_isomorphism(self):
        first = [Triple(b("a"), n("p"), b("b")), Triple(b("b"), n("p"), b("a"))]
        second = [Triple(b("u"), n("p"), b("v")), Triple(b("v"), n("p"), b("u"))]
        assert isomorphic(first, second)

    def test_different_bnode_counts(self):
        first = [Triple(b("x"), n("p"), b("y"))]
        second = [Triple(b("x"), n("p"), b("x"))]
        assert not isomorphic(first, second)

    def test_symmetric_pair_with_distinguishing_literal(self):
        first = [
            Triple(b("x"), n("p"), Literal("1")),
            Triple(b("y"), n("p"), Literal("2")),
        ]
        second = [
            Triple(b("u"), n("p"), Literal("2")),
            Triple(b("v"), n("p"), Literal("1")),
        ]
        mapping = find_bnode_bijection(first, second)
        assert mapping == {b("x"): b("v"), b("y"): b("u")}


class TestParserIntegration:
    def test_reparsed_document_is_isomorphic(self):
        text = """
        @prefix ex: <http://x/> .
        ex:a ex:p [ ex:q 1 ; ex:r [ ex:s 2 ] ] .
        _:named ex:t ex:a .
        """
        first = parse_turtle(text, bnode_prefix="one")
        second = parse_turtle(text, bnode_prefix="two")
        assert first != second  # labels differ
        assert isomorphic(first, second)

    def test_turtle_roundtrip_with_bnodes(self):
        from repro.rdf import serialize_turtle

        triples = [
            Triple(b("x"), n("p"), b("y")),
            Triple(b("y"), n("p"), Literal("leaf")),
            Triple(n("a"), n("q"), b("x")),
        ]
        text = serialize_turtle(triples, prefixes={})
        assert isomorphic(triples, parse_turtle(text))


# Property: relabelling blank nodes never breaks isomorphism.
labels = st.sampled_from(["b0", "b1", "b2", "b3"])
predicates = st.sampled_from([n("p"), n("q")])
bnode_triples = st.lists(
    st.builds(Triple, st.builds(BlankNode, labels), predicates,
              st.builds(BlankNode, labels) | st.sampled_from([Literal("1"), n("o")])),
    max_size=8,
)


class TestIsomorphismProperties:
    @given(bnode_triples)
    @settings(max_examples=60, deadline=None)
    def test_relabelling_preserves_isomorphism(self, triples):
        mapping = {BlankNode(f"b{i}"): BlankNode(f"renamed{i}") for i in range(4)}

        def rename(term):
            return mapping.get(term, term) if isinstance(term, BlankNode) else term

        renamed = [Triple(rename(t.subject), t.predicate, rename(t.object)) for t in triples]
        assert isomorphic(triples, renamed)

    @given(bnode_triples)
    @settings(max_examples=60, deadline=None)
    def test_reflexive(self, triples):
        assert isomorphic(triples, list(triples))
