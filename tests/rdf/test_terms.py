"""Unit tests for the RDF term model."""

from datetime import date, datetime, timezone
from decimal import Decimal

import pytest

from repro.rdf.terms import (
    RDF_LANGSTRING,
    XSD_BOOLEAN,
    XSD_DATE,
    XSD_DATETIME,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    BlankNode,
    Literal,
    NamedNode,
    Variable,
    escape_string_literal,
    literal_from_python,
    term_to_ntriples,
    unescape_string_literal,
)


class TestNamedNode:
    def test_equality_by_value(self):
        assert NamedNode("http://example.org/a") == NamedNode("http://example.org/a")
        assert NamedNode("http://example.org/a") != NamedNode("http://example.org/b")

    def test_hashable(self):
        nodes = {NamedNode("http://x/1"), NamedNode("http://x/1"), NamedNode("http://x/2")}
        assert len(nodes) == 2

    def test_str_is_ntriples(self):
        assert str(NamedNode("http://x/a")) == "<http://x/a>"

    def test_distinct_from_literal_with_same_value(self):
        assert NamedNode("abc") != Literal("abc")


class TestBlankNodeAndVariable:
    def test_blank_node_rendering(self):
        assert str(BlankNode("b1")) == "_:b1"

    def test_variable_rendering(self):
        assert str(Variable("name")) == "?name"

    def test_blank_node_not_equal_to_variable(self):
        assert BlankNode("x") != Variable("x")


class TestLiteral:
    def test_plain_literal_defaults_to_xsd_string(self):
        assert Literal("hello").datatype == XSD_STRING

    def test_language_tag_forces_langstring(self):
        lit = Literal("hallo", language="DE")
        assert lit.datatype == RDF_LANGSTRING
        assert lit.language == "de"  # normalized to lowercase

    def test_numeric_detection(self):
        assert Literal("4", datatype=XSD_INTEGER).is_numeric
        assert Literal("4.5", datatype=XSD_DECIMAL).is_numeric
        assert not Literal("4").is_numeric

    @pytest.mark.parametrize(
        "value,datatype,expected",
        [
            ("42", XSD_INTEGER, 42),
            ("-7", XSD_INTEGER, -7),
            ("2.5", XSD_DECIMAL, Decimal("2.5")),
            ("1.5e2", XSD_DOUBLE, 150.0),
            ("true", XSD_BOOLEAN, True),
            ("false", XSD_BOOLEAN, False),
            ("2010-10-12", XSD_DATE, date(2010, 10, 12)),
        ],
    )
    def test_to_python(self, value, datatype, expected):
        assert Literal(value, datatype=datatype).to_python() == expected

    def test_datetime_with_zulu_suffix(self):
        lit = Literal("2010-10-12T08:30:00Z", datatype=XSD_DATETIME)
        assert lit.to_python() == datetime(2010, 10, 12, 8, 30, tzinfo=timezone.utc)

    def test_ill_typed_boolean_raises(self):
        with pytest.raises(ValueError):
            Literal("maybe", datatype=XSD_BOOLEAN).to_python()

    def test_equality_is_lexical(self):
        # "1" and "01" are different literals even though numerically equal.
        assert Literal("1", datatype=XSD_INTEGER) != Literal("01", datatype=XSD_INTEGER)


class TestLiteralFromPython:
    @pytest.mark.parametrize(
        "value,datatype",
        [
            (True, XSD_BOOLEAN),
            (3, XSD_INTEGER),
            (2.5, XSD_DOUBLE),
            (Decimal("1.25"), XSD_DECIMAL),
            ("text", XSD_STRING),
            (date(2020, 1, 2), XSD_DATE),
        ],
    )
    def test_types(self, value, datatype):
        assert literal_from_python(value).datatype == datatype

    def test_bool_is_not_int(self):
        # bool is a subclass of int; must map to xsd:boolean, not integer.
        assert literal_from_python(True).value == "true"

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            literal_from_python(object())


class TestEscaping:
    def test_escape_roundtrip(self):
        original = 'line1\nline2\t"quoted"\\backslash'
        assert unescape_string_literal(escape_string_literal(original)) == original

    def test_unicode_escape(self):
        assert unescape_string_literal("\\u00e9") == "é"
        assert unescape_string_literal("\\U0001F600") == "😀"

    def test_invalid_escape_raises(self):
        with pytest.raises(ValueError):
            unescape_string_literal("\\q")


class TestTermToNtriples:
    def test_typed_literal(self):
        rendered = term_to_ntriples(Literal("5", datatype=XSD_INTEGER))
        assert rendered == '"5"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_lang_literal(self):
        assert term_to_ntriples(Literal("hi", language="en")) == '"hi"@en'

    def test_plain_string_has_no_datatype_suffix(self):
        assert term_to_ntriples(Literal("hi")) == '"hi"'

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            term_to_ntriples("not a term")
