"""Unit tests for N-Triples / N-Quads parsing and serialization."""

import pytest

from repro.rdf import (
    BlankNode,
    Literal,
    NamedNode,
    NTriplesParseError,
    Quad,
    Triple,
    parse_nquads,
    parse_ntriples,
    serialize_nquads,
    serialize_ntriples,
)


class TestParsing:
    def test_simple_triple(self):
        ts = list(parse_ntriples("<http://x/a> <http://x/p> <http://x/b> ."))
        assert ts == [Triple(NamedNode("http://x/a"), NamedNode("http://x/p"), NamedNode("http://x/b"))]

    def test_blank_nodes(self):
        ts = list(parse_ntriples("_:s <http://x/p> _:o ."))
        assert ts[0].subject == BlankNode("s")
        assert ts[0].object == BlankNode("o")

    def test_typed_literal(self):
        line = '<http://x/a> <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#long> .'
        ts = list(parse_ntriples(line))
        assert ts[0].object.datatype.endswith("long")

    def test_language_literal(self):
        ts = list(parse_ntriples('<http://x/a> <http://x/p> "hoi"@nl-BE .'))
        assert ts[0].object.language == "nl-be"

    def test_escaped_literal(self):
        ts = list(parse_ntriples('<http://x/a> <http://x/p> "a\\nb" .'))
        assert ts[0].object.value == "a\nb"

    def test_comments_and_blank_lines_skipped(self):
        text = "# comment\n\n<http://x/a> <http://x/p> <http://x/b> .\n"
        assert len(list(parse_ntriples(text))) == 1

    def test_quad_with_graph(self):
        qs = list(parse_nquads("<http://x/a> <http://x/p> <http://x/b> <http://x/g> ."))
        assert qs[0].graph == NamedNode("http://x/g")

    def test_quad_without_graph(self):
        qs = list(parse_nquads("<http://x/a> <http://x/p> <http://x/b> ."))
        assert qs[0].graph is None

    @pytest.mark.parametrize(
        "bad",
        [
            "<http://x/a> <http://x/p> .",
            '"lit" <http://x/p> <http://x/o> .',
            "<http://x/a> _:p <http://x/o> .",
            "<http://x/a> <http://x/p> <http://x/o>",
        ],
    )
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(NTriplesParseError):
            list(parse_ntriples(bad))

    def test_error_reports_line_number(self):
        text = "<http://x/a> <http://x/p> <http://x/b> .\nbroken line\n"
        try:
            list(parse_ntriples(text))
        except NTriplesParseError as error:
            assert error.line_number == 2
        else:
            pytest.fail("expected NTriplesParseError")


class TestSerialization:
    def test_roundtrip_triples(self):
        triples = [
            Triple(NamedNode("http://x/a"), NamedNode("http://x/p"), Literal("v\n1")),
            Triple(BlankNode("b"), NamedNode("http://x/p"), Literal("x", language="en")),
        ]
        text = serialize_ntriples(triples)
        assert list(parse_ntriples(text)) == triples

    def test_roundtrip_quads(self):
        quads = [
            Quad(NamedNode("http://x/a"), NamedNode("http://x/p"), Literal("v"), NamedNode("http://x/g")),
            Quad(NamedNode("http://x/a"), NamedNode("http://x/p"), Literal("w"), None),
        ]
        text = serialize_nquads(quads)
        assert list(parse_nquads(text)) == quads
