"""Unit tests for Triple, Quad, and TriplePattern."""

from repro.rdf import Literal, NamedNode, Quad, Triple, TriplePattern, Variable


def n(suffix: str) -> NamedNode:
    return NamedNode(f"http://x/{suffix}")


class TestTriple:
    def test_iteration_order(self):
        t = Triple(n("s"), n("p"), Literal("o"))
        assert list(t) == [n("s"), n("p"), Literal("o")]

    def test_ntriples_rendering(self):
        t = Triple(n("s"), n("p"), Literal("o"))
        assert t.to_ntriples() == '<http://x/s> <http://x/p> "o" .'

    def test_hashable(self):
        assert len({Triple(n("s"), n("p"), n("o")), Triple(n("s"), n("p"), n("o"))}) == 1


class TestQuad:
    def test_triple_projection(self):
        q = Quad(n("s"), n("p"), n("o"), n("g"))
        assert q.triple == Triple(n("s"), n("p"), n("o"))

    def test_nquads_rendering_with_and_without_graph(self):
        with_graph = Quad(n("s"), n("p"), n("o"), n("g"))
        without = Quad(n("s"), n("p"), n("o"))
        assert with_graph.to_nquads().endswith("<http://x/g> .")
        assert without.to_nquads().endswith("<http://x/o> .")


class TestTriplePattern:
    def test_variables(self):
        p = TriplePattern(Variable("s"), n("p"), Variable("o"))
        assert p.variables() == {Variable("s"), Variable("o")}

    def test_matches_with_variables_as_wildcards(self):
        p = TriplePattern(Variable("s"), n("p"), None)
        assert p.matches(Triple(n("a"), n("p"), Literal("x")))
        assert not p.matches(Triple(n("a"), n("q"), Literal("x")))

    def test_matches_concrete_terms(self):
        p = TriplePattern(n("a"), n("p"), Literal("x"))
        assert p.matches(Triple(n("a"), n("p"), Literal("x")))
        assert not p.matches(Triple(n("a"), n("p"), Literal("y")))

    def test_str_rendering(self):
        p = TriplePattern(None, n("p"), Variable("o"))
        assert str(p) == "_ <http://x/p> ?o"
