"""Pickle round-trips for slotted terms (the sharded service's data plane).

The slotted term classes cache their hash at construction, salted with
the *current* process's string hash.  Shipping a term to another process
(shard workers do this for every result row that bypasses the wire
codec, and for ShardSpec contents) must therefore rebuild the term via
``__init__`` — carrying the cached ``_hash`` across would poison every
dict and set on the receiving side whenever hash randomization differs.
"""

import os
import pickle
import subprocess
import sys
import textwrap

from hypothesis import given, strategies as st

from repro.rdf.terms import (
    BlankNode,
    Literal,
    NamedNode,
    Variable,
    intern_iri,
)
from repro.rdf.triples import Quad, Triple
from repro.sparql.bindings import Binding

_values = st.text(min_size=1, max_size=30)
_iris = st.from_regex(r"https?://[a-z]{1,10}\.example/[a-zA-Z0-9/_-]{0,20}", fullmatch=True)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestTermRoundtrip:
    @given(_iris)
    def test_named_node(self, iri):
        node = NamedNode(iri)
        back = roundtrip(node)
        assert back == node
        assert hash(back) == hash(node)

    @given(_iris)
    def test_named_node_reinterns(self, iri):
        # Unpickling funnels through intern_iri: within one process the
        # unpickled node IS the pooled object.
        pooled = intern_iri(iri)
        assert roundtrip(pooled) is intern_iri(iri)

    @given(_values)
    def test_blank_node(self, value):
        node = BlankNode(value)
        back = roundtrip(node)
        assert back == node and hash(back) == hash(node)

    @given(_values)
    def test_variable(self, value):
        var = Variable(value)
        back = roundtrip(var)
        assert back == var and hash(back) == hash(var)

    @given(_values, st.one_of(st.none(), st.just("en"), st.just("nl")))
    def test_literal(self, value, language):
        literal = Literal(value, language=language)
        back = roundtrip(literal)
        assert back == literal
        assert hash(back) == hash(literal)
        assert back.language == literal.language
        assert back.datatype == literal.datatype

    def test_typed_literal(self):
        literal = Literal("42", datatype="http://www.w3.org/2001/XMLSchema#integer")
        back = roundtrip(literal)
        assert back == literal and back.datatype == literal.datatype

    @given(_iris, _iris, _values)
    def test_triple_and_quad(self, s, p, o):
        triple = Triple(NamedNode(s), NamedNode(p), Literal(o))
        back = roundtrip(triple)
        assert back == triple and hash(back) == hash(triple)
        quad = Quad(NamedNode(s), NamedNode(p), Literal(o), NamedNode(s))
        back_quad = roundtrip(quad)
        assert back_quad == quad and hash(back_quad) == hash(quad)

    @given(_iris, _values)
    def test_binding(self, iri, value):
        binding = Binding(((Variable("s"), NamedNode(iri)), (Variable("o"), Literal(value))))
        back = roundtrip(binding)
        assert back == binding
        assert hash(back) == hash(binding)
        assert back[Variable("s")] == NamedNode(iri)


class TestCrossProcess:
    def test_hash_recomputed_under_different_hash_seed(self, tmp_path):
        """A term pickled here must hash *consistently* in a process with a
        different PYTHONHASHSEED — i.e. land in the same dict bucket as a
        locally-built equal term."""
        blob = pickle.dumps(
            {
                "named": NamedNode("https://pods.example/pods/alice/profile"),
                "literal": Literal("Alice", language="en"),
                "triple": Triple(
                    NamedNode("https://a.example/s"),
                    NamedNode("https://a.example/p"),
                    Literal("x"),
                ),
                "binding": Binding(((Variable("v"), NamedNode("https://a.example/s")),)),
            }
        )
        blob_path = tmp_path / "terms.pickle"
        blob_path.write_bytes(blob)
        script = textwrap.dedent(
            """
            import pickle, sys
            from repro.rdf.terms import NamedNode, Literal, Variable, intern_iri
            from repro.rdf.triples import Triple
            from repro.sparql.bindings import Binding
            data = pickle.loads(open(sys.argv[1], 'rb').read())
            local = {
                "named": NamedNode("https://pods.example/pods/alice/profile"),
                "literal": Literal("Alice", language="en"),
                "triple": Triple(
                    NamedNode("https://a.example/s"),
                    NamedNode("https://a.example/p"),
                    Literal("x"),
                ),
                "binding": Binding(((Variable("v"), NamedNode("https://a.example/s")),)),
            }
            for key, value in data.items():
                assert value == local[key], key
                assert hash(value) == hash(local[key]), key
                assert value in {local[key]}, key
            # Unpickled IRIs re-intern into *this* process's pool.
            assert data["named"] is intern_iri("https://pods.example/pods/alice/profile")
            print("OK")
            """
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
        )
        completed = subprocess.run(
            [sys.executable, "-c", script, str(blob_path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        assert "OK" in completed.stdout
