"""Unit tests for the indexed Graph and Dataset stores."""

import pytest

from repro.rdf import Dataset, Graph, Literal, NamedNode, Quad, Triple


def n(suffix: str) -> NamedNode:
    return NamedNode(f"http://example.org/{suffix}")


@pytest.fixture()
def graph() -> Graph:
    g = Graph()
    g.add(Triple(n("a"), n("p"), n("b")))
    g.add(Triple(n("a"), n("p"), n("c")))
    g.add(Triple(n("a"), n("q"), Literal("x")))
    g.add(Triple(n("b"), n("p"), n("c")))
    return g


class TestGraph:
    def test_add_is_idempotent(self, graph):
        assert not graph.add(Triple(n("a"), n("p"), n("b")))
        assert len(graph) == 4

    def test_match_fully_bound(self, graph):
        assert list(graph.match(n("a"), n("p"), n("b"))) == [Triple(n("a"), n("p"), n("b"))]
        assert list(graph.match(n("a"), n("p"), n("zzz"))) == []

    def test_match_by_subject_predicate(self, graph):
        objects = {t.object for t in graph.match(n("a"), n("p"), None)}
        assert objects == {n("b"), n("c")}

    def test_match_by_predicate_object(self, graph):
        subjects = {t.subject for t in graph.match(None, n("p"), n("c"))}
        assert subjects == {n("a"), n("b")}

    def test_match_by_subject_object(self, graph):
        predicates = {t.predicate for t in graph.match(n("a"), None, n("b"))}
        assert predicates == {n("p")}

    def test_match_single_position(self, graph):
        assert graph.count(n("a"), None, None) == 3
        assert graph.count(None, n("p"), None) == 3
        assert graph.count(None, None, n("c")) == 2

    def test_match_all(self, graph):
        assert graph.count() == 4

    def test_discard_updates_all_indexes(self, graph):
        assert graph.discard(Triple(n("a"), n("p"), n("b")))
        assert not graph.discard(Triple(n("a"), n("p"), n("b")))
        assert graph.count(n("a"), n("p"), None) == 1
        assert graph.count(None, n("p"), n("b")) == 0
        assert graph.count(n("a"), None, n("b")) == 0

    def test_discard_then_match_empty_bucket(self, graph):
        graph.discard(Triple(n("b"), n("p"), n("c")))
        assert list(graph.match(n("b"), None, None)) == []

    def test_subjects_objects_value(self, graph):
        assert set(graph.subjects(n("p"), None)) == {n("a"), n("b")}
        assert set(graph.objects(n("a"), n("p"))) == {n("b"), n("c")}
        assert graph.value(n("a"), n("q"), None) == Literal("x")
        assert graph.value(n("zzz"), n("q"), None) is None

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add(Triple(n("z"), n("p"), n("z")))
        assert len(clone) == len(graph) + 1

    def test_contains(self, graph):
        assert Triple(n("a"), n("p"), n("b")) in graph
        assert Triple(n("z"), n("p"), n("b")) not in graph


class TestDataset:
    def test_union_deduplicates_across_graphs(self):
        ds = Dataset()
        triple = Triple(n("a"), n("p"), n("b"))
        assert ds.add(Quad(triple.subject, triple.predicate, triple.object, n("g1")))
        assert ds.add(Quad(triple.subject, triple.predicate, triple.object, n("g2")))
        assert ds.union.count() == 1
        assert len(ds) == 2  # per-graph provenance preserved

    def test_duplicate_in_same_graph_rejected(self):
        ds = Dataset()
        quad = Quad(n("a"), n("p"), n("b"), n("g1"))
        assert ds.add(quad)
        assert not ds.add(quad)

    def test_match_specific_graph(self):
        ds = Dataset()
        ds.add(Quad(n("a"), n("p"), n("b"), n("g1")))
        ds.add(Quad(n("c"), n("p"), n("d"), n("g2")))
        assert ds.union.count() == 2
        assert list(ds.match(graph=n("g1"))) == [Triple(n("a"), n("p"), n("b"))]
        assert list(ds.match(graph=n("missing"))) == []

    def test_log_positions_are_monotonic(self):
        ds = Dataset()
        assert ds.log_position == 0
        ds.add(Quad(n("a"), n("p"), n("b"), None))
        position = ds.log_position
        ds.add(Quad(n("a"), n("p"), n("c"), None))
        assert ds.log_position == position + 1

    def test_match_since_returns_only_new_quads(self):
        ds = Dataset()
        ds.add(Quad(n("a"), n("p"), n("b"), None))
        cursor = ds.log_position
        ds.add(Quad(n("a"), n("p"), n("c"), None))
        ds.add(Quad(n("x"), n("q"), n("y"), None))
        new = list(ds.match_since(cursor, predicate=n("p")))
        assert [q.object for q in new] == [n("c")]

    def test_add_triples_helper(self):
        ds = Dataset()
        count = ds.add_triples([Triple(n("a"), n("p"), n("b"))], graph=n("doc"))
        assert count == 1
        assert ds.has_graph(n("doc"))
