"""Unit tests for the indexed Graph and Dataset stores."""

import pytest

from repro.rdf import Dataset, Graph, Literal, NamedNode, Quad, Triple


def n(suffix: str) -> NamedNode:
    return NamedNode(f"http://example.org/{suffix}")


@pytest.fixture()
def graph() -> Graph:
    g = Graph()
    g.add(Triple(n("a"), n("p"), n("b")))
    g.add(Triple(n("a"), n("p"), n("c")))
    g.add(Triple(n("a"), n("q"), Literal("x")))
    g.add(Triple(n("b"), n("p"), n("c")))
    return g


class TestGraph:
    def test_add_is_idempotent(self, graph):
        assert not graph.add(Triple(n("a"), n("p"), n("b")))
        assert len(graph) == 4

    def test_match_fully_bound(self, graph):
        assert list(graph.match(n("a"), n("p"), n("b"))) == [Triple(n("a"), n("p"), n("b"))]
        assert list(graph.match(n("a"), n("p"), n("zzz"))) == []

    def test_match_by_subject_predicate(self, graph):
        objects = {t.object for t in graph.match(n("a"), n("p"), None)}
        assert objects == {n("b"), n("c")}

    def test_match_by_predicate_object(self, graph):
        subjects = {t.subject for t in graph.match(None, n("p"), n("c"))}
        assert subjects == {n("a"), n("b")}

    def test_match_by_subject_object(self, graph):
        predicates = {t.predicate for t in graph.match(n("a"), None, n("b"))}
        assert predicates == {n("p")}

    def test_match_single_position(self, graph):
        assert graph.count(n("a"), None, None) == 3
        assert graph.count(None, n("p"), None) == 3
        assert graph.count(None, None, n("c")) == 2

    def test_match_all(self, graph):
        assert graph.count() == 4

    def test_discard_updates_all_indexes(self, graph):
        assert graph.discard(Triple(n("a"), n("p"), n("b")))
        assert not graph.discard(Triple(n("a"), n("p"), n("b")))
        assert graph.count(n("a"), n("p"), None) == 1
        assert graph.count(None, n("p"), n("b")) == 0
        assert graph.count(n("a"), None, n("b")) == 0

    def test_discard_then_match_empty_bucket(self, graph):
        graph.discard(Triple(n("b"), n("p"), n("c")))
        assert list(graph.match(n("b"), None, None)) == []

    def test_subjects_objects_value(self, graph):
        assert set(graph.subjects(n("p"), None)) == {n("a"), n("b")}
        assert set(graph.objects(n("a"), n("p"))) == {n("b"), n("c")}
        assert graph.value(n("a"), n("q"), None) == Literal("x")
        assert graph.value(n("zzz"), n("q"), None) is None

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add(Triple(n("z"), n("p"), n("z")))
        assert len(clone) == len(graph) + 1

    def test_contains(self, graph):
        assert Triple(n("a"), n("p"), n("b")) in graph
        assert Triple(n("z"), n("p"), n("b")) not in graph


class TestDataset:
    def test_union_deduplicates_across_graphs(self):
        ds = Dataset()
        triple = Triple(n("a"), n("p"), n("b"))
        assert ds.add(Quad(triple.subject, triple.predicate, triple.object, n("g1")))
        assert ds.add(Quad(triple.subject, triple.predicate, triple.object, n("g2")))
        assert ds.union.count() == 1
        assert len(ds) == 2  # per-graph provenance preserved

    def test_duplicate_in_same_graph_rejected(self):
        ds = Dataset()
        quad = Quad(n("a"), n("p"), n("b"), n("g1"))
        assert ds.add(quad)
        assert not ds.add(quad)

    def test_match_specific_graph(self):
        ds = Dataset()
        ds.add(Quad(n("a"), n("p"), n("b"), n("g1")))
        ds.add(Quad(n("c"), n("p"), n("d"), n("g2")))
        assert ds.union.count() == 2
        assert list(ds.match(graph=n("g1"))) == [Triple(n("a"), n("p"), n("b"))]
        assert list(ds.match(graph=n("missing"))) == []

    def test_log_positions_are_monotonic(self):
        ds = Dataset()
        assert ds.log_position == 0
        ds.add(Quad(n("a"), n("p"), n("b"), None))
        position = ds.log_position
        ds.add(Quad(n("a"), n("p"), n("c"), None))
        assert ds.log_position == position + 1

    def test_match_since_returns_only_new_quads(self):
        ds = Dataset()
        ds.add(Quad(n("a"), n("p"), n("b"), None))
        cursor = ds.log_position
        ds.add(Quad(n("a"), n("p"), n("c"), None))
        ds.add(Quad(n("x"), n("q"), n("y"), None))
        new = list(ds.match_since(cursor, predicate=n("p")))
        assert [q.object for q in new] == [n("c")]

    def test_add_triples_helper(self):
        ds = Dataset()
        count = ds.add_triples([Triple(n("a"), n("p"), n("b"))], graph=n("doc"))
        assert count == 1
        assert ds.has_graph(n("doc"))


class TestSignedLog:
    """The signed append-only log behind live standing queries."""

    def quad(self, s, o, g="doc"):
        return Quad(n(s), n("p"), n(o), n(g))

    def test_remove_retracts_and_logs_negative(self):
        ds = Dataset()
        quad = self.quad("a", "b")
        ds.add(quad)
        assert ds.remove(quad)
        assert quad.triple not in ds.union
        assert len(ds) == 0
        assert ds.signed_runs(0) == [(1, [quad]), (-1, [quad])]

    def test_remove_absent_quad_is_a_noop(self):
        ds = Dataset()
        assert not ds.remove(self.quad("a", "b"))
        assert not ds.remove(self.quad("a", "b", g="never-created"))
        assert ds.log_position == 0
        assert ds.retractions_since(0) == 0

    def test_union_survives_while_another_graph_holds_the_triple(self):
        ds = Dataset()
        ds.add(self.quad("a", "b", g="doc1"))
        ds.add(self.quad("a", "b", g="doc2"))
        assert ds.remove(self.quad("a", "b", g="doc1"))
        # doc2 still holds it: the union keeps the triple alive.
        assert Triple(n("a"), n("p"), n("b")) in ds.union
        assert ds.remove(self.quad("a", "b", g="doc2"))
        assert Triple(n("a"), n("p"), n("b")) not in ds.union

    def test_signed_runs_groups_maximal_same_sign_windows(self):
        ds = Dataset()
        a, b, c = self.quad("a", "x"), self.quad("b", "x"), self.quad("c", "x")
        for quad in (a, b, c):
            ds.add(quad)
        ds.remove(a)
        ds.remove(b)
        ds.add(a)
        runs = ds.signed_runs(0)
        assert [(sign, len(quads)) for sign, quads in runs] == [(1, 3), (-1, 2), (1, 1)]
        assert runs[1][1] == [a, b]
        # A window can start mid-run: only entries >= start appear.
        assert ds.signed_runs(4) == [(-1, [b]), (1, [a])]
        assert ds.signed_runs(0, stop=3) == [(1, [a, b, c])]

    def test_retractions_since_counts_only_the_window(self):
        ds = Dataset()
        a, b = self.quad("a", "x"), self.quad("b", "x")
        ds.add(a)
        ds.add(b)
        assert ds.retractions_since(0) == 0
        ds.remove(a)
        cursor = ds.log_position
        ds.remove(b)
        assert ds.retractions_since(0) == 2
        assert ds.retractions_since(cursor) == 1

    def test_match_since_skips_retraction_entries(self):
        ds = Dataset()
        a = self.quad("a", "x")
        ds.add(a)
        cursor = ds.log_position
        ds.remove(a)
        ds.add(self.quad("b", "x"))
        assert [q.subject for q in ds.match_since(cursor)] == [n("b")]

    def test_quads_filters_dead_entries_in_first_insertion_order(self):
        ds = Dataset()
        a, b, c = self.quad("a", "x"), self.quad("b", "x"), self.quad("c", "x")
        for quad in (a, b, c):
            ds.add(quad)
        ds.remove(b)
        assert list(ds.quads()) == [a, c]
        # Re-adding after retraction: live again at its *first-insertion*
        # position, with no duplicate emission.
        ds.add(b)
        assert list(ds.quads()) == [a, b, c]
        assert len(ds) == 3
