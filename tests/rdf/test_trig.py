"""Unit tests for the TriG parser."""

import pytest

from repro.rdf import Dataset, Literal, NamedNode, Quad, Triple
from repro.rdf.trig import parse_trig
from repro.rdf.turtle import TurtleParseError


def n(suffix):
    return NamedNode(f"http://x/{suffix}")


class TestTriG:
    def test_default_graph_plain_statement(self):
        quads = parse_trig("<http://x/a> <http://x/p> <http://x/b> .")
        assert quads == [Quad(n("a"), n("p"), n("b"), None)]

    def test_default_graph_block(self):
        quads = parse_trig("{ <http://x/a> <http://x/p> 1 . <http://x/b> <http://x/p> 2 }")
        assert len(quads) == 2
        assert all(q.graph is None for q in quads)

    def test_labelled_graph_block(self):
        quads = parse_trig("<http://x/g> { <http://x/a> <http://x/p> <http://x/b> }")
        assert quads[0].graph == n("g")

    def test_graph_keyword(self):
        quads = parse_trig("GRAPH <http://x/g> { <http://x/a> <http://x/p> 1 . }")
        assert quads[0].graph == n("g")

    def test_prefixed_graph_label(self):
        text = "@prefix ex: <http://x/> . ex:g { ex:a ex:p ex:b }"
        quads = parse_trig(text)
        assert quads[0].graph == n("g")

    def test_prefixed_subject_not_mistaken_for_label(self):
        text = "@prefix ex: <http://x/> . ex:a ex:p ex:b ."
        quads = parse_trig(text)
        assert quads[0].graph is None
        assert quads[0].subject == n("a")

    def test_mixed_document(self):
        text = """
        @prefix ex: <http://x/> .
        ex:a ex:p 1 .
        ex:g1 { ex:a ex:p 2 . ex:b ex:p 3 }
        GRAPH ex:g2 { ex:c ex:p 4 }
        { ex:d ex:p 5 }
        """
        quads = parse_trig(text)
        graphs = [q.graph for q in quads]
        assert graphs == [None, n("g1"), n("g1"), n("g2"), None]

    def test_optional_trailing_dot_inside_block(self):
        with_dot = parse_trig("<http://x/g> { <http://x/a> <http://x/p> 1 . }")
        without = parse_trig("<http://x/g> { <http://x/a> <http://x/p> 1 }")
        assert with_dot == without

    def test_turtle_abbreviations_inside_block(self):
        text = "<http://x/g> { <http://x/a> <http://x/p> 1, 2 ; <http://x/q> [ <http://x/r> 3 ] }"
        quads = parse_trig(text)
        assert len(quads) == 4
        assert all(q.graph == n("g") for q in quads)

    def test_base_resolution_applies(self):
        quads = parse_trig("<g> { <a> <p> <b> }", base_iri="http://host/dir/")
        assert quads[0].graph == NamedNode("http://host/dir/g")
        assert quads[0].subject == NamedNode("http://host/dir/a")

    def test_quads_load_into_dataset(self):
        quads = parse_trig("<http://x/g> { <http://x/a> <http://x/p> 1 }")
        dataset = Dataset()
        dataset.update(quads)
        assert dataset.has_graph(n("g"))
        assert dataset.union.count() == 1

    def test_unterminated_block_raises(self):
        with pytest.raises(TurtleParseError):
            parse_trig("<http://x/g> { <http://x/a> <http://x/p> 1 ")

    def test_empty_block(self):
        assert parse_trig("<http://x/g> { }") == []
