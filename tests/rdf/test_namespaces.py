"""Unit tests for namespace helpers."""

import pytest

from repro.rdf import FOAF, LDP, Namespace, NamedNode, PREFIXES, SNVOC


class TestNamespace:
    def test_attribute_access(self):
        assert FOAF.name == NamedNode("http://xmlns.com/foaf/0.1/name")

    def test_item_access_for_non_identifiers(self):
        ns = Namespace("http://x/")
        assert ns["with-dash"] == NamedNode("http://x/with-dash")

    def test_contains(self):
        assert FOAF.name in FOAF
        assert LDP.contains not in FOAF
        assert "not a node" not in FOAF

    def test_local_name(self):
        assert FOAF.local_name(FOAF.knows) == "knows"
        with pytest.raises(ValueError):
            FOAF.local_name(LDP.contains)

    def test_underscore_attributes_raise(self):
        with pytest.raises(AttributeError):
            FOAF._private

    def test_snvoc_matches_solidbench_host(self):
        assert SNVOC.base.startswith("https://solidbench.linkeddatafragments.org/")

    def test_default_prefix_map_is_consistent(self):
        assert PREFIXES["foaf"] == FOAF.base
        assert PREFIXES["snvoc"] == SNVOC.base
