"""Unit tests for the Turtle parser."""

import pytest

from repro.rdf import (
    BlankNode,
    Literal,
    NamedNode,
    RDF,
    Triple,
    TurtleParseError,
    TurtleParser,
    parse_turtle,
)
from repro.rdf.terms import XSD_BOOLEAN, XSD_DECIMAL, XSD_DOUBLE, XSD_INTEGER


def triples_of(text: str, base: str = "") -> list[Triple]:
    return parse_turtle(text, base_iri=base)


class TestDirectives:
    def test_prefix_directive(self):
        ts = triples_of("@prefix ex: <http://x/> . ex:a ex:p ex:b .")
        assert ts == [Triple(NamedNode("http://x/a"), NamedNode("http://x/p"), NamedNode("http://x/b"))]

    def test_sparql_style_prefix_without_dot(self):
        ts = triples_of("PREFIX ex: <http://x/>\nex:a ex:p ex:b .")
        assert len(ts) == 1

    def test_base_resolution(self):
        ts = triples_of("@base <http://host/dir/> . <doc> <p> <../up> .")
        assert ts[0].subject == NamedNode("http://host/dir/doc")
        assert ts[0].object == NamedNode("http://host/up")

    def test_external_base_parameter(self):
        ts = triples_of("<> <p> <child> .", base="http://host/container/")
        assert ts[0].subject == NamedNode("http://host/container/")
        assert ts[0].object == NamedNode("http://host/container/child")

    def test_empty_prefix(self):
        ts = triples_of("@prefix : <http://x/> . :a :p :b .")
        assert ts[0].subject == NamedNode("http://x/a")

    def test_undefined_prefix_raises(self):
        with pytest.raises(TurtleParseError):
            triples_of("ex:a ex:p ex:b .")


class TestTermSyntax:
    def test_a_keyword(self):
        ts = triples_of("<http://x/s> a <http://x/C> .")
        assert ts[0].predicate == RDF.type

    def test_literal_with_language(self):
        ts = triples_of('<http://x/s> <http://x/p> "hallo"@de .')
        assert ts[0].object == Literal("hallo", language="de")

    def test_literal_with_datatype_iri(self):
        ts = triples_of('<http://x/s> <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .')
        assert ts[0].object == Literal("5", datatype=XSD_INTEGER)

    def test_literal_with_prefixed_datatype(self):
        text = (
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> . "
            '<http://x/s> <http://x/p> "5"^^xsd:integer .'
        )
        assert triples_of(text)[0].object == Literal("5", datatype=XSD_INTEGER)

    @pytest.mark.parametrize(
        "token,datatype",
        [("42", XSD_INTEGER), ("-3", XSD_INTEGER), ("4.5", XSD_DECIMAL), ("1e3", XSD_DOUBLE)],
    )
    def test_numeric_shorthand(self, token, datatype):
        ts = triples_of(f"<http://x/s> <http://x/p> {token} .")
        assert ts[0].object.datatype == datatype

    def test_boolean_shorthand(self):
        ts = triples_of("<http://x/s> <http://x/p> true, false .")
        assert {t.object.value for t in ts} == {"true", "false"}
        assert all(t.object.datatype == XSD_BOOLEAN for t in ts)

    def test_long_string_with_newlines(self):
        ts = triples_of('<http://x/s> <http://x/p> """line1\nline2""" .')
        assert ts[0].object.value == "line1\nline2"

    def test_single_quoted_string(self):
        ts = triples_of("<http://x/s> <http://x/p> 'hi' .")
        assert ts[0].object == Literal("hi")

    def test_escapes_in_string(self):
        ts = triples_of('<http://x/s> <http://x/p> "tab\\there" .')
        assert ts[0].object.value == "tab\there"

    def test_comments_ignored(self):
        ts = triples_of("# leading comment\n<http://x/s> <http://x/p> 1 . # trailing")
        assert len(ts) == 1


class TestAbbreviations:
    def test_predicate_object_lists(self):
        ts = triples_of("<http://x/s> <http://x/p> 1 ; <http://x/q> 2, 3 .")
        assert len(ts) == 3

    def test_trailing_semicolon_allowed(self):
        ts = triples_of("<http://x/s> <http://x/p> 1 ; .")
        assert len(ts) == 1

    def test_blank_node_labels_are_stable_within_document(self):
        ts = triples_of("_:a <http://x/p> _:b . _:a <http://x/q> _:b .")
        assert ts[0].subject == ts[1].subject
        assert ts[0].object == ts[1].object

    def test_blank_node_labels_differ_across_parsers(self):
        first = parse_turtle("_:a <http://x/p> 1 .", bnode_prefix="x")
        second = parse_turtle("_:a <http://x/p> 1 .", bnode_prefix="y")
        assert first[0].subject != second[0].subject

    def test_anonymous_blank_node_property_list(self):
        ts = triples_of("<http://x/s> <http://x/p> [ <http://x/q> 1 ] .")
        assert len(ts) == 2
        inner = [t for t in ts if t.predicate == NamedNode("http://x/q")][0]
        assert isinstance(inner.subject, BlankNode)

    def test_collection(self):
        ts = triples_of("<http://x/s> <http://x/p> (1 2) .")
        firsts = [t for t in ts if t.predicate == RDF.first]
        rests = [t for t in ts if t.predicate == RDF.rest]
        assert len(firsts) == 2
        assert rests[-1].object == RDF.nil

    def test_empty_collection_is_nil(self):
        ts = triples_of("<http://x/s> <http://x/p> () .")
        assert ts[0].object == RDF.nil


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "<http://x/s> <http://x/p> .",  # missing object
            '<http://x/s> <http://x/p> "unterminated .',
            "<http://x/s> <http://x/p> 1",  # missing dot
            "<http://x/s> <http://x/p> 1 . <http://x/s>",  # dangling subject
        ],
    )
    def test_malformed_documents_raise(self, bad):
        with pytest.raises(TurtleParseError):
            triples_of(bad)

    def test_error_carries_position(self):
        try:
            triples_of("<http://x/s>\n<http://x/p> .")
        except TurtleParseError as error:
            assert error.line == 2
        else:
            pytest.fail("expected TurtleParseError")

    def test_parser_exposes_collected_prefixes(self):
        parser = TurtleParser("@prefix ex: <http://x/> . ex:a ex:p 1 .")
        parser.parse()
        assert parser.prefixes == {"ex": "http://x/"}
