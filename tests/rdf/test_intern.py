"""Unit tests for the bounded term intern pool."""

import pytest

from repro.rdf.terms import (
    INTERN_POOL_LIMIT,
    BlankNode,
    Literal,
    NamedNode,
    Variable,
    clear_intern_pools,
    intern,
    intern_iri,
    intern_pool_stats,
)


@pytest.fixture(autouse=True)
def fresh_pools():
    clear_intern_pools()
    yield
    clear_intern_pools()


class TestInternIri:
    def test_returns_same_object_for_same_iri(self):
        a = intern_iri("http://example.org/a")
        b = intern_iri("http://example.org/a")
        assert a is b

    def test_interned_and_fresh_nodes_are_interchangeable(self):
        interned = intern_iri("http://example.org/a")
        fresh = NamedNode("http://example.org/a")
        assert interned == fresh
        assert fresh == interned
        assert hash(interned) == hash(fresh)
        # They collapse in hash containers, as dataset indexes rely on.
        assert {interned: 1}[fresh] == 1
        assert len({interned, fresh}) == 1

    def test_distinct_iris_stay_distinct(self):
        assert intern_iri("http://x/a") != intern_iri("http://x/b")


class TestInternGeneric:
    def test_named_node_goes_through_iri_pool(self):
        node = NamedNode("http://example.org/n")
        assert intern(node) is intern_iri("http://example.org/n")

    def test_literal_blank_variable_pool(self):
        for term in (Literal("hi", language="en"), BlankNode("b0"), Variable("v")):
            pooled = intern(term)
            assert pooled == term
            assert hash(pooled) == hash(term)
            assert intern(term) is pooled

    def test_interning_preserves_literal_facets(self):
        lit = intern(Literal("42", datatype="http://www.w3.org/2001/XMLSchema#integer"))
        assert lit.is_integer
        assert lit.to_python() == 42


class TestPoolBounds:
    def test_stats_track_pool_sizes(self):
        intern_iri("http://x/a")
        intern_iri("http://x/b")
        intern(Literal("x"))
        stats = intern_pool_stats()
        assert stats["iris"] == 2
        assert stats["terms"] == 1
        assert stats["limit"] == INTERN_POOL_LIMIT

    def test_pool_stops_growing_at_limit(self, monkeypatch):
        import repro.rdf.terms as terms_module

        monkeypatch.setattr(terms_module, "INTERN_POOL_LIMIT", 2)
        intern_iri("http://x/a")
        intern_iri("http://x/b")
        overflow = intern_iri("http://x/c")
        # Still a correct term — just not retained in the pool.
        assert overflow == NamedNode("http://x/c")
        assert intern_pool_stats()["iris"] == 2
        assert intern_iri("http://x/c") is not overflow

    def test_clear_empties_pools(self):
        intern_iri("http://x/a")
        clear_intern_pools()
        assert intern_pool_stats()["iris"] == 0
