"""Unit tests for the Turtle writer, including parse→write→parse round-trips."""

from repro.rdf import (
    Literal,
    NamedNode,
    RDF,
    Triple,
    parse_turtle,
    serialize_turtle,
)
from repro.rdf.terms import XSD_DECIMAL, XSD_INTEGER


def roundtrip(triples, **kwargs):
    return set(parse_turtle(serialize_turtle(triples, **kwargs)))


class TestWriter:
    def test_prefix_compaction(self):
        triples = [Triple(NamedNode("http://x/a"), RDF.type, NamedNode("http://x/C"))]
        text = serialize_turtle(triples, prefixes={"ex": "http://x/"})
        assert "ex:a" in text and "ex:C" in text
        assert "@prefix ex:" in text

    def test_unused_prefixes_omitted(self):
        triples = [Triple(NamedNode("http://x/a"), NamedNode("http://x/p"), Literal("v"))]
        text = serialize_turtle(triples, prefixes={"foaf": "http://xmlns.com/foaf/0.1/", "ex": "http://x/"})
        assert "foaf" not in text

    def test_rdf_type_renders_as_a(self):
        triples = [Triple(NamedNode("http://x/a"), RDF.type, NamedNode("http://x/C"))]
        text = serialize_turtle(triples, prefixes={"ex": "http://x/"})
        assert " a ex:C" in text

    def test_subject_grouping_with_semicolons(self):
        s = NamedNode("http://x/s")
        triples = [
            Triple(s, NamedNode("http://x/p"), Literal("1", datatype=XSD_INTEGER)),
            Triple(s, NamedNode("http://x/q"), Literal("2", datatype=XSD_INTEGER)),
        ]
        text = serialize_turtle(triples, prefixes={})
        assert text.count("http://x/s") == 1
        assert ";" in text

    def test_integer_shorthand(self):
        triples = [Triple(NamedNode("http://x/s"), NamedNode("http://x/p"), Literal("42", datatype=XSD_INTEGER))]
        text = serialize_turtle(triples, prefixes={})
        assert " 42 " in text or " 42 ." in text

    def test_decimal_shorthand(self):
        triples = [Triple(NamedNode("http://x/s"), NamedNode("http://x/p"), Literal("4.5", datatype=XSD_DECIMAL))]
        text = serialize_turtle(triples, prefixes={})
        assert "4.5" in text and "^^" not in text

    def test_base_relative_rendering(self):
        base = "https://pod.example/"
        triples = [Triple(NamedNode(base + "posts/x"), NamedNode("http://x/p"), NamedNode(base))]
        text = serialize_turtle(triples, prefixes={}, base_iri=base)
        assert "<posts/x>" in text and "<>" in text

    def test_roundtrip_preserves_triples(self):
        triples = [
            Triple(NamedNode("http://x/a"), RDF.type, NamedNode("http://x/C")),
            Triple(NamedNode("http://x/a"), NamedNode("http://x/p"), Literal("hi", language="en")),
            Triple(NamedNode("http://x/a"), NamedNode("http://x/q"), Literal("x\ny")),
            Triple(NamedNode("http://x/b"), NamedNode("http://x/p"), Literal("5", datatype=XSD_INTEGER)),
        ]
        assert roundtrip(triples, prefixes={"ex": "http://x/"}) == set(triples)

    def test_roundtrip_with_base(self):
        base = "https://pod.example/dir/"
        triples = [
            Triple(NamedNode(base + "doc"), NamedNode("http://x/p"), NamedNode(base)),
        ]
        text = serialize_turtle(triples, prefixes={}, base_iri=base)
        assert set(parse_turtle(text, base_iri=base)) == set(triples)

    def test_empty_input(self):
        assert serialize_turtle([], prefixes={}) == ""
