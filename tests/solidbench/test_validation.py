"""Tests for validation manifests."""

import pytest

from repro.solidbench import discover_query
from repro.solidbench.validation import (
    build_manifest,
    load_manifest,
    validate_results,
    write_manifest,
)


@pytest.fixture(scope="module")
def manifest(tiny_universe):
    queries = [discover_query(tiny_universe, t, 1) for t in (1, 2, 6)]
    return build_manifest(tiny_universe, queries)


class TestBuildManifest:
    def test_structure(self, manifest, tiny_universe):
        assert manifest["generator"]["seed"] == tiny_universe.config.seed
        assert set(manifest["queries"]) == {"Discover 1.1", "Discover 2.1", "Discover 6.1"}
        entry = manifest["queries"]["Discover 1.1"]
        assert entry["expected_count"] == len(entry["expected"])
        assert entry["seeds"]

    def test_full_suite_manifest(self, tiny_universe):
        full = build_manifest(tiny_universe)
        assert len(full["queries"]) == 37

    def test_roundtrip_to_disk(self, manifest, tmp_path):
        path = write_manifest(manifest, tmp_path / "manifests" / "validation.json")
        assert load_manifest(path) == manifest


class TestValidateResults:
    def test_engine_results_validate(self, manifest, tiny_universe):
        query = discover_query(tiny_universe, 1, 1)
        engine = tiny_universe.fast_engine()
        execution = engine.execute_sync(query.text, seeds=query.seeds)
        report = validate_results(manifest, query.name, execution.bindings)
        assert report.valid, (report.missing, report.unexpected)

    def test_missing_results_detected(self, manifest, tiny_universe):
        query = discover_query(tiny_universe, 1, 1)
        engine = tiny_universe.fast_engine()
        execution = engine.execute_sync(query.text, seeds=query.seeds)
        partial = execution.bindings[:-1]
        report = validate_results(manifest, query.name, partial)
        assert not report.valid
        assert len(report.missing) == 1 and not report.unexpected

    def test_unexpected_results_detected(self, manifest, tiny_universe):
        from repro.rdf import Literal, Variable
        from repro.sparql.bindings import Binding

        fake = [Binding({Variable("messageId"): Literal("not-real")})]
        report = validate_results(manifest, "Discover 1.1", fake)
        assert report.unexpected and report.missing

    def test_unknown_query_raises(self, manifest):
        with pytest.raises(KeyError):
            validate_results(manifest, "Discover 99.9", [])
