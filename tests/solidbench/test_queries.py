"""Unit tests for the Discover query suite."""

import pytest

from repro.sparql import parse_query
from repro.sparql.algebra import is_monotonic
from repro.solidbench.queries import TEMPLATE_DESCRIPTIONS, discover_query, discover_suite


class TestSuite:
    def test_exactly_37_default_queries(self, tiny_universe):
        # §4.2: "we provide a total of 37 default queries".
        queries = discover_suite(tiny_universe)
        assert len(queries) == 37

    def test_all_eight_templates_covered(self, tiny_universe):
        templates = {q.template for q in discover_suite(tiny_universe)}
        assert templates == set(range(1, 9))
        assert set(TEMPLATE_DESCRIPTIONS) == templates

    def test_all_queries_parse(self, tiny_universe):
        for query in discover_suite(tiny_universe):
            parsed = parse_query(query.text)
            assert parsed.form == "SELECT"

    def test_all_queries_are_monotonic(self, tiny_universe):
        # The Discover suite exercises the pipelined (monotonic) engine path.
        for query in discover_suite(tiny_universe):
            assert is_monotonic(parse_query(query.text).where), query.name

    def test_ids_follow_solidbench_convention(self, tiny_universe):
        names = {q.name for q in discover_suite(tiny_universe)}
        assert "Discover 1.5" in names
        assert "Discover 8.4" in names

    def test_seeds_are_person_webids(self, tiny_universe):
        for query in discover_suite(tiny_universe):
            assert len(query.seeds) == 1
            assert query.seeds[0].endswith("profile/card#me")

    def test_variants_use_different_persons(self, tiny_universe):
        persons = {q.person_index for q in discover_suite(tiny_universe) if q.template == 1}
        assert len(persons) > 1


class TestUnifiedCompilation:
    def test_all_37_queries_compile_through_unified_planner(self, tiny_universe):
        from repro.ltqp import compile_query_pipeline

        for named in discover_suite(tiny_universe):
            pipeline = compile_query_pipeline(parse_query(named.text))
            # The Discover templates are monotonic, so the unified planner
            # produces fully streaming plans: no blocking boundary.
            assert not pipeline.blocking_nodes, named.name


class TestDiscoverQuery:
    def test_explicit_person_index(self, tiny_universe):
        query = discover_query(tiny_universe, 1, 5, person_index=3)
        assert query.person_index == 3
        assert tiny_universe.webid(3) in query.text

    def test_template_8_person_has_likes(self, tiny_universe):
        query = discover_query(tiny_universe, 8, 1)
        assert tiny_universe.network.likes_of(query.person_index)

    def test_unknown_template_raises(self, tiny_universe):
        with pytest.raises(ValueError):
            discover_query(tiny_universe, 99, 1)

    def test_template_8_uses_alternative_path(self, tiny_universe):
        query = discover_query(tiny_universe, 8, 1)
        assert "(snvoc:hasPost|snvoc:hasComment)" in query.text
