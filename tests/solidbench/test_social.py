"""Unit tests for the social network generator."""

import pytest

from repro.solidbench.config import SolidBenchConfig
from repro.solidbench.social import generate_social_network


@pytest.fixture(scope="module")
def network():
    return generate_social_network(SolidBenchConfig(scale=0.01, seed=11))


class TestDeterminism:
    def test_same_seed_same_network(self):
        config = SolidBenchConfig(scale=0.01, seed=5)
        first = generate_social_network(config)
        second = generate_social_network(config)
        assert [p.ldbc_id for p in first.persons] == [p.ldbc_id for p in second.persons]
        assert sorted(first.messages) == sorted(second.messages)
        assert len(first.likes) == len(second.likes)

    def test_different_seed_differs(self):
        first = generate_social_network(SolidBenchConfig(scale=0.01, seed=1))
        second = generate_social_network(SolidBenchConfig(scale=0.01, seed=2))
        assert sorted(first.messages) != sorted(second.messages)


class TestStructure:
    def test_person_count_matches_scale(self, network):
        config = SolidBenchConfig(scale=0.01)
        assert len(network.persons) == config.person_count

    def test_knows_is_symmetric(self, network):
        for person in network.persons:
            for friend in person.knows:
                assert person.index in network.persons[friend].knows

    def test_nobody_knows_themselves(self, network):
        for person in network.persons:
            assert person.index not in person.knows

    def test_every_person_has_a_wall(self, network):
        for person in network.persons:
            kinds = {f.kind for f in network.forums_of(person.index)}
            assert "wall" in kinds

    def test_forum_titles_match_paper_format(self, network):
        titles = [f.title for f in network.forums.values()]
        assert any(t.startswith("Wall of ") for t in titles)
        assert any(t.startswith("Album ") and " of " in t for t in titles)

    def test_posts_are_assigned_to_owners_forums(self, network):
        for forum in network.forums.values():
            for message_id in forum.message_ids:
                assert network.messages[message_id].creator_index == forum.owner_index

    def test_every_post_belongs_to_a_forum(self, network):
        for message in network.messages.values():
            if message.kind == "post":
                assert message.forum_id in network.forums

    def test_comments_reply_to_existing_messages(self, network):
        for message in network.messages.values():
            if message.kind == "comment":
                assert message.reply_of_id in network.messages

    def test_likes_reference_existing_messages(self, network):
        for like in network.likes:
            assert like.message_id in network.messages
            assert network.messages[like.message_id].kind == like.message_kind

    def test_likes_target_friends_content(self, network):
        for like in network.likes[:50]:
            liker = network.persons[like.person_index]
            creator = network.messages[like.message_id].creator_index
            assert creator in liker.knows

    def test_message_ids_unique_and_dates_in_window(self, network):
        config = network.config
        for message in network.messages.values():
            assert config.start_year <= message.creation_date.year <= config.end_year

    def test_ldbc_ids_are_distinct(self, network):
        ids = [p.ldbc_id for p in network.persons]
        assert len(ids) == len(set(ids))

    def test_pod_names_are_20_digit(self, network):
        assert all(len(p.pod_name) == 20 and p.pod_name.isdigit() for p in network.persons)
