"""Unit tests for universe assembly and statistics."""

import asyncio

from repro.net import NoLatency
from repro.rdf import SNTAG
from repro.solidbench.config import PAPER_SCALE_TARGETS, SolidBenchConfig


class TestUniverse:
    def test_pods_served_over_internet(self, tiny_universe):
        client = tiny_universe.client(latency=NoLatency())
        webid = tiny_universe.webid(0)
        response = asyncio.run(client.fetch(webid))
        assert response.status == 200
        assert "publicTypeIndex" in response.text

    def test_vocabulary_origin_serves_tags(self, tiny_universe):
        client = tiny_universe.client(latency=NoLatency())
        tag_url = SNTAG["Albert_Einstein"].value
        response = asyncio.run(client.fetch(tag_url))
        assert response.status == 200

    def test_oracle_dataset_covers_all_documents(self, tiny_universe):
        oracle = tiny_universe.oracle_dataset()
        stats = tiny_universe.statistics()
        assert len(oracle) == stats["triples"]
        graph_count = sum(1 for _ in oracle.graph_names())
        assert graph_count == stats["files"]

    def test_oracle_is_cached(self, tiny_universe):
        assert tiny_universe.oracle_dataset() is tiny_universe.oracle_dataset()

    def test_statistics_ratios_close_to_paper(self, small_universe):
        # §4.2: 158,233 files / 1,531 pods and 3,556,159 triples / 158,233 files.
        stats = small_universe.statistics()
        assert stats["files_per_pod"] == (
            stats["files"] / stats["pods"]
        )
        paper_files_per_pod = PAPER_SCALE_TARGETS["files_per_pod"]
        paper_triples_per_file = PAPER_SCALE_TARGETS["triples_per_file"]
        assert abs(stats["files_per_pod"] - paper_files_per_pod) / paper_files_per_pod < 0.15
        assert (
            abs(stats["triples_per_file"] - paper_triples_per_file) / paper_triples_per_file < 0.15
        )

    def test_person_count_scales(self):
        assert SolidBenchConfig(scale=1.0).person_count == 1531
        assert SolidBenchConfig(scale=0.1).person_count == 153

    def test_idp_issues_usable_sessions(self, tiny_universe):
        session = tiny_universe.idp.login(tiny_universe.webid(1))
        assert tiny_universe.idp.resolve(session.token) == tiny_universe.webid(1)
