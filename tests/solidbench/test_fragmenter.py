"""Unit tests for the pod fragmenter."""

import pytest

from repro.rdf import LDP, NamedNode, PIM, RDF, SNVOC, SOLID
from repro.solidbench.config import Fragmentation, SolidBenchConfig
from repro.solidbench.fragmenter import PodFragmenter
from repro.solidbench.social import generate_social_network


@pytest.fixture(scope="module")
def fragmenter():
    network = generate_social_network(SolidBenchConfig(scale=0.01, seed=3))
    return PodFragmenter(network)


@pytest.fixture(scope="module")
def pods(fragmenter):
    return fragmenter.build_all_pods()


class TestLayout:
    def test_standard_documents_present(self, pods):
        for pod in pods.values():
            assert pod.has_document("profile/card")
            assert pod.has_document("settings/publicTypeIndex")

    def test_posts_fragmented_by_date(self, pods):
        pod = next(iter(pods.values()))
        post_paths = [p for p in pod.document_paths() if p.startswith("posts/")]
        assert post_paths
        for path in post_paths:
            day = path.split("/", 1)[1]
            assert len(day) == 10 and day[4] == "-" and day[7] == "-"

    def test_noise_documents_present(self, pods, fragmenter):
        pod = next(iter(pods.values()))
        noise = [p for p in pod.document_paths() if p.startswith("noise/")]
        assert len(noise) == SolidBenchConfig(scale=0.01).noise_files_per_person

    def test_profile_links_follow_paper_listings(self, pods, fragmenter):
        pod = next(iter(pods.values()))
        profile = pod.document("profile/card")
        predicates = {t.predicate for t in profile.triples}
        assert PIM.storage in predicates          # Listing 2
        assert SOLID.publicTypeIndex in predicates

    def test_type_index_registers_post_comment_forum(self, pods):
        pod = next(iter(pods.values()))
        index = pod.document("settings/publicTypeIndex")
        classes = {t.object for t in index.triples if t.predicate == SOLID.forClass}
        assert classes == {SNVOC.Post, SNVOC.Comment, SNVOC.Forum}


class TestCrossPodLinks:
    def test_message_iris_point_into_creator_pod(self, fragmenter):
        network = fragmenter._network
        for message in list(network.messages.values())[:50]:
            iri = fragmenter.message_iri(message.message_id)
            creator = network.persons[message.creator_index]
            assert f"/pods/{creator.pod_name}/" in iri

    def test_likes_reference_other_pods(self, pods, fragmenter):
        network = fragmenter._network
        crossing = 0
        for person in network.persons:
            pod = pods[person.index]
            profile = pod.document("profile/card")
            for triple in profile.triples:
                if triple.predicate in (SNVOC.hasPost, SNVOC.hasComment):
                    if not triple.object.value.startswith(pod.base_url):
                        crossing += 1
        assert crossing > 0  # likes cross pod boundaries → multi-pod traversal

    def test_knows_links_are_webids(self, pods, fragmenter):
        pod = next(iter(pods.values()))
        profile = pod.document("profile/card")
        for triple in profile.triples:
            if triple.predicate == SNVOC.knows:
                assert triple.object.value.endswith("profile/card#me")

    def test_forum_container_of_matches_owner_posts(self, pods, fragmenter):
        network = fragmenter._network
        person = network.persons[0]
        pod = pods[0]
        forum_paths = [p for p in pod.document_paths() if p.startswith("forums/")]
        assert forum_paths
        for path in forum_paths:
            doc = pod.document(path)
            members = [t.object for t in doc.triples if t.predicate == SNVOC.containerOf]
            for member in members:
                assert f"/pods/{person.pod_name}/" in member.value


class TestFragmentationModes:
    def build(self, fragmentation):
        config = SolidBenchConfig(scale=0.01, seed=3, fragmentation=fragmentation)
        network = generate_social_network(config)
        fragmenter = PodFragmenter(network)
        return network, fragmenter, fragmenter.build_all_pods()

    def test_single_mode_one_document_per_kind(self):
        _, _, pods = self.build(Fragmentation.SINGLE)
        pod = next(iter(pods.values()))
        post_paths = [p for p in pod.document_paths() if p.startswith("posts")]
        assert post_paths == ["posts"]

    def test_per_resource_mode_one_document_per_message(self):
        network, _, pods = self.build(Fragmentation.PER_RESOURCE)
        person = network.persons[0]
        pod = pods[0]
        posts = network.posts_of(0)
        post_paths = [p for p in pod.document_paths() if p.startswith("posts/")]
        assert len(post_paths) == len(posts)

    def test_total_triples_invariant_across_fragmentations(self):
        totals = []
        for mode in Fragmentation:
            _, _, pods = self.build(mode)
            totals.append(sum(pod.triple_count() for pod in pods.values()))
        assert len(set(totals)) == 1
