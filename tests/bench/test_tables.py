"""Unit tests for table rendering."""

from repro.bench.tables import render_table


class TestRenderTable:
    def test_alignment_and_header(self):
        rows = [
            {"query": "Discover 1.5", "results": 35, "ttfr_s": "0.02"},
            {"query": "Discover 8.5", "results": 1019, "ttfr_s": "0.5"},
        ]
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert set(lines[1]) <= {"-", " "}
        assert "1019" in lines[3]

    def test_numeric_columns_right_aligned(self):
        rows = [{"name": "a", "count": 5}, {"name": "bb", "count": 12345}]
        lines = render_table(rows).splitlines()
        assert lines[2].endswith("    5")
        assert lines[3].endswith("12345")

    def test_explicit_column_order(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b", "a"])
        assert text.splitlines()[0].startswith("b")

    def test_empty(self):
        assert render_table([]) == "(no rows)\n"

    def test_missing_cells_render_empty(self):
        text = render_table([{"a": 1}, {"a": 2, "b": "x"}])
        assert "x" in text
