"""Unit tests for resource-waterfall construction and rendering."""

from repro.bench.waterfall import build_waterfall, render_waterfall
from repro.net.log import RequestLog


def make_log():
    log = RequestLog()
    log.record("GET", "https://h/pods/1/profile/card", 200, 0.0, 0.01, 500, None)
    log.record("GET", "https://h/pods/1/", 200, 0.01, 0.02, 300, "https://h/pods/1/profile/card")
    log.record("GET", "https://h/pods/1/posts/", 200, 0.02, 0.03, 200, "https://h/pods/1/")
    log.record("GET", "https://h/pods/1/posts/2010-10-12", 200, 0.03, 0.05, 800, "https://h/pods/1/posts/")
    log.record("GET", "https://h/missing", 404, 0.03, 0.04, 20, "https://h/pods/1/")
    return log


class TestBuildWaterfall:
    def test_summary_metrics(self):
        waterfall = build_waterfall(make_log())
        assert waterfall.request_count == 5
        assert waterfall.max_depth == 3
        assert waterfall.origins == 1
        assert waterfall.total_bytes == 1820
        assert waterfall.max_parallelism == 2  # 404 overlaps the post fetch
        assert abs(waterfall.total_duration - 0.05) < 1e-9

    def test_rows_sorted_by_start(self):
        rows = build_waterfall(make_log()).rows
        assert [r.start for r in rows] == sorted(r.start for r in rows)

    def test_short_names(self):
        rows = build_waterfall(make_log()).rows
        names = {r.short_name for r in rows}
        assert "card" in names
        assert "posts/" in names
        assert "2010-10-12" in names

    def test_depths_follow_parent_chain(self):
        rows = {r.url: r.depth for r in build_waterfall(make_log()).rows}
        assert rows["https://h/pods/1/profile/card"] == 0
        assert rows["https://h/pods/1/posts/2010-10-12"] == 3

    def test_empty_log(self):
        waterfall = build_waterfall(RequestLog())
        assert waterfall.request_count == 0
        assert render_waterfall(waterfall) == "(no requests)\n"


class TestRenderWaterfall:
    def test_render_contains_bars_and_totals(self):
        text = render_waterfall(build_waterfall(make_log()))
        assert "█" in text
        assert "total: 5 requests" in text
        assert "404" in text

    def test_row_cap(self):
        log = RequestLog()
        for i in range(50):
            log.record("GET", f"https://h/{i}", 200, i * 0.01, i * 0.01 + 0.005, 10, None)
        text = render_waterfall(build_waterfall(log), max_rows=10)
        assert "and 40 more requests" in text
