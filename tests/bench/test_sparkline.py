"""Tests for sparkline rendering."""

from repro.bench.sparkline import queue_sparkline, sparkline
from repro.ltqp.links import QueueSample


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_zero(self):
        assert sparkline([0, 0, 0]) == "▁▁▁"

    def test_monotonic_ramp_uses_increasing_bars(self):
        chart = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert chart == "▁▂▃▄▅▆▇█"

    def test_peak_maps_to_full_bar(self):
        chart = sparkline([1, 10, 1])
        assert "█" in chart and chart[1] == "█"

    def test_bucketing_preserves_peak(self):
        values = [0] * 100 + [50] + [0] * 100
        chart = sparkline(values, width=20)
        assert len(chart) == 20
        assert "█" in chart

    def test_short_input_not_padded(self):
        assert len(sparkline([1, 2], width=60)) == 2


class TestQueueSparkline:
    def make_samples(self, lengths):
        return [
            QueueSample(timestamp=float(i), queue_length=length, pushed_total=0, popped_total=0)
            for i, length in enumerate(lengths)
        ]

    def test_annotated_with_peak(self):
        chart = queue_sparkline(self.make_samples([0, 5, 12, 3, 0]))
        assert chart.endswith("peak=12")

    def test_no_samples(self):
        assert queue_sparkline([]) == "(no samples)"
