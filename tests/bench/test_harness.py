"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.harness import oracle_bindings, run_query, run_suite
from repro.ltqp.extractors import AllIriExtractor
from repro.solidbench.queries import discover_query


class TestRunQuery:
    def test_report_is_complete_against_oracle(self, tiny_universe):
        query = discover_query(tiny_universe, 1, 5)
        report = run_query(tiny_universe, query)
        assert report.complete is True
        assert report.result_count == report.oracle_count
        assert report.streaming is True
        assert report.waterfall.request_count > 0
        assert report.documents_fetched > 0

    def test_result_times_are_monotonic(self, tiny_universe):
        query = discover_query(tiny_universe, 2, 1)
        report = run_query(tiny_universe, query)
        assert report.result_times == sorted(report.result_times)
        if report.result_times:
            assert report.time_to_first_result is not None

    def test_oracle_check_can_be_skipped(self, tiny_universe):
        query = discover_query(tiny_universe, 1, 1)
        report = run_query(tiny_universe, query, check_oracle=False)
        assert report.oracle_count is None and report.complete is None

    def test_custom_extractors_accepted(self, tiny_universe):
        query = discover_query(tiny_universe, 1, 1)
        report = run_query(tiny_universe, query, extractors=[AllIriExtractor()], check_oracle=False)
        assert report.links_by_extractor.get("all-iris", 0) > 0

    def test_row_shape(self, tiny_universe):
        query = discover_query(tiny_universe, 1, 1)
        row = run_query(tiny_universe, query).row()
        assert row["query"] == "Discover 1.1"
        assert row["complete"] == "yes"
        assert set(row) >= {"results", "oracle", "ttfr_s", "total_s", "requests"}


class TestRunSuite:
    def test_runs_each_query(self, tiny_universe):
        queries = [discover_query(tiny_universe, 1, 1), discover_query(tiny_universe, 4, 1)]
        reports = run_suite(tiny_universe, queries, check_oracle=False)
        assert [r.query.name for r in reports] == ["Discover 1.1", "Discover 4.1"]


class TestOracle:
    def test_oracle_bindings_nonempty_for_post_queries(self, tiny_universe):
        query = discover_query(tiny_universe, 1, 5)
        assert oracle_bindings(tiny_universe, query)
