"""Golden-output test: the trace-driven waterfall renders byte-identically.

One seeded scenario exercises every visual element of the Fig. 4-style
waterfall — solid fetch bars, hollow retry bars (injected transient
503s), shaded cache-hit bars (second run over a warm cache), and the
first-result marker — under a deterministic :class:`TickClock`.  The
renderings must match the committed goldens byte for byte.

Regenerate after an intentional rendering change with::

    REPRO_WRITE_GOLDEN=1 python -m pytest tests/bench/test_waterfall_golden.py
"""

import os
from pathlib import Path

import pytest

from repro.bench.waterfall import build_waterfall_from_trace, render_waterfall
from repro.ltqp import EngineConfig, LinkTraversalEngine, NetworkPolicy
from repro.net.cache import HttpCache
from repro.net.faults import FaultPlan
from repro.net.latency import NoLatency
from repro.net.resilience import RetryPolicy
from repro.obs import TickClock, Tracer, check_trace_invariants
from repro.solidbench import discover_query

GOLDEN_DIR = Path(__file__).parent / "golden"


def golden_scenario(universe):
    """Two Discover 1.5 runs over one warm cache, each traced with a TickClock."""
    universe.internet.install_fault_plan(
        FaultPlan.transient(rate=0.2, seed=3, fail_attempts=1)
    )
    try:
        query = discover_query(universe, 1, 5)
        cache = HttpCache(default_max_age=3600)
        client = universe.client(latency=NoLatency(), cache=cache)
        config = EngineConfig(
            network=NetworkPolicy(
                retry=RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)
            ),
            # Single worker + per-quad advances with the wall-clock flush
            # timer off: the event sequence, and therefore every TickClock
            # timestamp, is a pure function of the seed.
            worker_count=1,
            advance_batch_quads=1,
            advance_flush_interval=0.0,
        )
        engine = LinkTraversalEngine(client, config=config)
        tracers = []
        for _ in range(2):
            tracer = Tracer(clock=TickClock(step=0.001))
            engine.query(query.text, seeds=query.seeds, tracer=tracer).run_sync()
            tracers.append(tracer)
        return tracers
    finally:
        universe.internet.install_fault_plan(None)


def check_golden(name: str, rendered: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_WRITE_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        pytest.skip(f"golden {name} regenerated")
    assert path.exists(), f"missing golden {path}; run with REPRO_WRITE_GOLDEN=1"
    assert rendered == path.read_text(encoding="utf-8")


class TestGoldenWaterfall:
    @pytest.fixture(scope="class")
    def tracers(self, tiny_universe):
        return golden_scenario(tiny_universe)

    def test_traces_well_formed(self, tracers):
        for tracer in tracers:
            assert check_trace_invariants(tracer) == []

    def test_cold_run_renders_byte_identically(self, tracers):
        check_golden("waterfall_cold.txt", render_waterfall(build_waterfall_from_trace(tracers[0])))

    def test_warm_run_renders_byte_identically(self, tracers):
        check_golden("waterfall_warm.txt", render_waterfall(build_waterfall_from_trace(tracers[1])))

    def test_cold_run_shows_retry_bars_and_marker(self, tracers):
        waterfall = build_waterfall_from_trace(tracers[0])
        rendered = render_waterfall(waterfall)
        assert waterfall.retries > 0
        assert "(retry #2)" in rendered
        assert "▼ first result" in rendered
        assert waterfall.cache_hits == 0

    def test_warm_run_shows_cache_bars(self, tracers):
        waterfall = build_waterfall_from_trace(tracers[1])
        rendered = render_waterfall(waterfall)
        assert waterfall.cache_hits > 0
        assert "(cache)" in rendered
        assert "▒" in rendered
        assert f"cache: {waterfall.cache_hits} of {waterfall.request_count}" in rendered
