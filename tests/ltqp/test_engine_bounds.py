"""Tests for engine traversal bounds and queue disciplines."""

import pytest

from repro.ltqp import EngineConfig, FifoLinkQueue, LifoLinkQueue, LinkTraversalEngine
from repro.net import ConstantLatency, HttpClient, NoLatency
from repro.solidbench import discover_query


def make_engine(universe, latency=None, **config_kwargs):
    client = universe.client(latency=latency if latency is not None else NoLatency())
    config = EngineConfig(**config_kwargs) if config_kwargs else None
    return LinkTraversalEngine(client, config=config)


class TestMaxResults:
    def test_stops_after_n_results(self, tiny_universe):
        query = discover_query(tiny_universe, 2, 1)
        bounded = make_engine(tiny_universe, max_results=5)
        result = bounded.execute_sync(query.text, seeds=query.seeds)
        assert len(result) == 5

    def test_bounded_run_fetches_fewer_documents(self, tiny_universe):
        query = discover_query(tiny_universe, 2, 1)
        full = make_engine(tiny_universe).execute_sync(query.text, seeds=query.seeds)
        bounded = make_engine(tiny_universe, max_results=3).execute_sync(
            query.text, seeds=query.seeds
        )
        assert bounded.stats.documents_fetched <= full.stats.documents_fetched

    def test_results_are_a_subset_of_full_answer(self, tiny_universe):
        query = discover_query(tiny_universe, 2, 1)
        full = make_engine(tiny_universe).execute_sync(query.text, seeds=query.seeds)
        bounded = make_engine(tiny_universe, max_results=4).execute_sync(
            query.text, seeds=query.seeds
        )
        assert set(bounded.bindings) <= set(full.bindings)

    def test_limit_boundary_is_exact(self, tiny_universe):
        """The binding arriving exactly at the limit is counted, none past it.

        Regression test for the former double check in ``emit()``: the count
        was compared against the limit both before and after appending, so a
        binding landing exactly on the boundary could be double-handled.  Every
        cap must yield exactly ``min(cap, total)`` results.
        """
        query = discover_query(tiny_universe, 2, 1)
        full = make_engine(tiny_universe).execute_sync(query.text, seeds=query.seeds)
        total = len(full)
        assert total >= 2
        for cap in (1, total - 1, total, total + 3):
            bounded = make_engine(tiny_universe, max_results=cap).execute_sync(
                query.text, seeds=query.seeds
            )
            assert len(bounded) == min(cap, total)
            assert bounded.stats.result_count == min(cap, total)


class TestMaxDuration:
    def test_deadline_cuts_traversal_short(self, tiny_universe):
        query = discover_query(tiny_universe, 8, 1)  # multi-pod, many fetches
        slow = ConstantLatency(rtt_seconds=0.005)
        unbounded = make_engine(tiny_universe, latency=slow).execute_sync(
            query.text, seeds=query.seeds
        )
        deadline = make_engine(
            tiny_universe, latency=slow, max_duration=0.1
        ).execute_sync(query.text, seeds=query.seeds)
        assert deadline.stats.documents_fetched < unbounded.stats.documents_fetched

    def test_partial_results_still_stream(self, tiny_universe):
        query = discover_query(tiny_universe, 2, 1)
        result = make_engine(
            tiny_universe, latency=ConstantLatency(rtt_seconds=0.003), max_duration=0.05
        ).execute_sync(query.text, seeds=query.seeds)
        # Whatever was produced is valid (monotonic query).
        full = make_engine(tiny_universe).execute_sync(query.text, seeds=query.seeds)
        assert set(result.bindings) <= set(full.bindings)


class TestQueueDisciplines:
    def test_lifo_answers_match_fifo(self, tiny_universe):
        query = discover_query(tiny_universe, 1, 1)
        client = tiny_universe.client(latency=NoLatency())
        fifo = LinkTraversalEngine(client, queue_factory=FifoLinkQueue).execute_sync(
            query.text, seeds=query.seeds
        )
        client2 = tiny_universe.client(latency=NoLatency())
        lifo = LinkTraversalEngine(client2, queue_factory=LifoLinkQueue).execute_sync(
            query.text, seeds=query.seeds
        )
        assert set(fifo.bindings) == set(lifo.bindings)
        assert fifo.stats.documents_fetched == lifo.stats.documents_fetched

    def test_lifo_pops_newest_first(self):
        from repro.ltqp import Link

        queue = LifoLinkQueue()
        queue.push(Link("https://h/a"))
        queue.push(Link("https://h/b"))
        assert queue.pop().url == "https://h/b"
        queue.push(Link("https://h/c"))
        assert queue.pop().url == "https://h/c"
        assert queue.pop().url == "https://h/a"

    def test_lifo_deduplicates_like_any_queue(self):
        from repro.ltqp import Link

        queue = LifoLinkQueue()
        assert queue.push(Link("https://h/a"))
        assert not queue.push(Link("https://h/a#frag"))
