"""Unit tests for the growing triple source."""

import asyncio

from repro.ltqp.source import GrowingTripleSource
from repro.rdf import NamedNode, Triple


def t(index: int) -> Triple:
    return Triple(NamedNode(f"http://x/s{index}"), NamedNode("http://x/p"), NamedNode("http://x/o"))


class TestGrowingTripleSource:
    def test_add_document_counts_new_triples(self):
        source = GrowingTripleSource()
        assert source.add_document("https://h/doc", [t(1), t(2)]) == 2
        assert source.add_document("https://h/doc2", [t(1)]) == 1  # new in its graph
        assert source.document_count == 2
        assert source.dataset.union.count() == 2  # deduplicated in union

    def test_same_document_duplicates_skipped(self):
        source = GrowingTripleSource()
        source.add_document("https://h/doc", [t(1), t(1)])
        assert source.position == 1

    def test_per_document_graphs(self):
        source = GrowingTripleSource()
        source.add_document("https://h/doc", [t(1)])
        assert source.dataset.has_graph(NamedNode("https://h/doc"))

    def test_wait_for_growth_returns_when_data_arrives(self):
        async def scenario():
            source = GrowingTripleSource()

            async def producer():
                await asyncio.sleep(0.01)
                source.add_document("https://h/doc", [t(1)])

            task = asyncio.create_task(producer())
            grew = await source.wait_for_growth(0)
            await task
            return grew

        assert asyncio.run(scenario()) is True

    def test_wait_for_growth_returns_false_on_close(self):
        async def scenario():
            source = GrowingTripleSource()

            async def closer():
                await asyncio.sleep(0.01)
                source.close()

            task = asyncio.create_task(closer())
            grew = await source.wait_for_growth(0)
            await task
            return grew

        assert asyncio.run(scenario()) is False

    def test_wait_returns_immediately_if_already_grown(self):
        async def scenario():
            source = GrowingTripleSource()
            source.add_document("https://h/doc", [t(1)])
            return await source.wait_for_growth(0)

        assert asyncio.run(scenario()) is True

    def test_closed_flag(self):
        source = GrowingTripleSource()
        assert not source.closed
        source.close()
        assert source.closed
