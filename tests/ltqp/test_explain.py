"""Tests for query plan explanation."""

from repro.ltqp import default_extractors, explain_algebra, explain_plan
from repro.sparql import parse_query

EX = "PREFIX ex: <http://x/>\n"


class TestExplainAlgebra:
    def test_bgp_patterns_listed(self):
        query = parse_query(EX + "SELECT ?a WHERE { ?a ex:p ?b . ?b ex:q ?c }")
        text = explain_algebra(query.where)
        assert "BGP" in text and "Project" in text
        assert text.count("?a") >= 1

    def test_operators_named(self):
        query = parse_query(
            EX
            + "SELECT DISTINCT ?a WHERE { { ?a ex:p ?b } UNION { ?a ex:q ?b } "
            + "OPTIONAL { ?b ex:r ?c } FILTER(?b != ex:x) } LIMIT 3"
        )
        text = explain_algebra(query.where)
        for token in ("Union", "LeftJoin", "Filter", "Distinct", "Slice"):
            assert token in text, token


class TestExplainPlan:
    def make_query(self):
        return parse_query(
            EX
            + "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
            + "SELECT ?c WHERE { ?m ex:creator <http://h/card#me> ; "
            + "rdf:type ex:Post ; ex:content ?c }"
        )

    def test_sections_present(self):
        text = explain_plan(self.make_query(), extractors=default_extractors())
        assert "query form: SELECT" in text
        assert "streaming" in text
        assert "http://h/card#me" in text
        assert "extractors: match, ldp-container, storage, type-index" in text
        assert "type-index class filter: Post" in text
        assert "zero-knowledge join order" in text

    def test_join_order_starts_with_most_selective(self):
        text = explain_plan(self.make_query())
        order_section = text.split("zero-knowledge join order")[1]
        first_line = order_section.splitlines()[1]
        assert "creator" in first_line  # the bound-object anchor pattern

    def test_non_monotonic_marks_blocking_boundary(self):
        query = parse_query(EX + "SELECT ?a WHERE { ?a ex:p ?b } ORDER BY ?a")
        text = explain_plan(query)
        assert "1 blocking operator(s) finalize at traversal quiescence" in text
        assert "physical plan:" in text
        assert "blocking boundary" in text
        assert "OrderSlice" in text

    def test_monotonic_physical_plan_has_no_boundary(self):
        text = explain_plan(self.make_query())
        assert "physical plan:" in text
        assert "blocking boundary" not in text
        assert "HashJoin" in text

    def test_no_seed_query(self):
        query = parse_query(EX + "SELECT ?a WHERE { ?a ex:p ?b }")
        assert "(none" in explain_plan(query)

    def test_explicit_seeds_override(self):
        text = explain_plan(self.make_query(), seeds=["https://other.example/seed"])
        assert "https://other.example/seed" in text
