"""Unit tests for the dereferencer."""

import asyncio

import pytest

from repro.ltqp.dereference import Dereferencer
from repro.net import HttpClient, Internet, NoLatency, StaticApp


def make_client():
    internet = Internet()
    app = StaticApp()
    app.put("/good", "<https://h/good#a> <https://h/p> <https://h/good#b> .")
    app.put("/relative", "<> <https://h/p> <child> .")
    app.put("/broken", "this is not turtle @@@")
    app.put("/ntriples", "<https://h/a> <https://h/p> <https://h/b> .\n", "application/n-triples")
    app.put("/binary", b"\x00\x01", "application/octet-stream")
    internet.register("https://h", app)
    return HttpClient(internet, latency=NoLatency())


def deref(url, lenient=True, client=None):
    dereferencer = Dereferencer(client or make_client(), lenient=lenient)
    return asyncio.run(dereferencer.dereference(url))


class TestDereference:
    def test_parses_turtle(self):
        result = deref("https://h/good")
        assert result.ok and len(result.triples) == 1

    def test_fragment_stripped(self):
        result = deref("https://h/good#me")
        assert result.url == "https://h/good"
        assert result.ok

    def test_relative_iris_resolved_against_document_url(self):
        result = deref("https://h/relative")
        assert result.triples[0].subject.value == "https://h/relative"
        assert result.triples[0].object.value == "https://h/child"

    def test_ntriples_content_type(self):
        result = deref("https://h/ntriples")
        assert result.ok and len(result.triples) == 1

    def test_404_is_lenient_failure(self):
        result = deref("https://h/missing")
        assert not result.ok and result.status == 404 and "404" in result.error

    def test_unknown_origin_is_lenient_failure(self):
        result = deref("https://unknown.example/x")
        assert not result.ok and result.status == 0

    def test_parse_error_is_lenient_failure(self):
        result = deref("https://h/broken")
        assert not result.ok and "parse error" in result.error

    def test_unsupported_content_type(self):
        result = deref("https://h/binary")
        assert not result.ok and "content type" in result.error

    def test_strict_mode_raises(self):
        with pytest.raises(RuntimeError):
            deref("https://h/missing", lenient=False)

    def test_blank_nodes_distinct_across_documents(self):
        internet = Internet()
        app = StaticApp()
        app.put("/d1", "_:b <https://h/p> 1 .")
        app.put("/d2", "_:b <https://h/p> 2 .")
        internet.register("https://h", app)
        client = HttpClient(internet, latency=NoLatency())
        dereferencer = Dereferencer(client)
        first = asyncio.run(dereferencer.dereference("https://h/d1"))
        second = asyncio.run(dereferencer.dereference("https://h/d2"))
        assert first.triples[0].subject != second.triples[0].subject

    def test_auth_headers_forwarded(self):
        from repro.net import FunctionApp, Request, Response

        seen = {}

        def handler(request: Request) -> Response:
            seen["auth"] = request.header("authorization")
            return Response.ok_turtle("")

        internet = Internet()
        internet.register("https://h", FunctionApp(handler))
        client = HttpClient(internet, latency=NoLatency())
        dereferencer = Dereferencer(client, extra_headers={"authorization": "Bearer tok"})
        asyncio.run(dereferencer.dereference("https://h/x"))
        assert seen["auth"] == "Bearer tok"


class TestRedirects:
    def make_redirecting_client(self, hops=1):
        from repro.net import FunctionApp, Request, Response

        def handler(request: Request) -> Response:
            path = request.path
            if path.startswith("/hop"):
                index = int(path[4:])
                if index < hops:
                    return Response(301, {"location": f"https://h/hop{index + 1}"})
                return Response.ok_turtle(f"<https://h/final> <https://h/p> {index} .")
            if path == "/loop":
                return Response(302, {"location": "https://h/loop"})
            if path == "/no-location":
                return Response(301, {})
            return Response.not_found(request.url)

        internet = Internet()
        internet.register("https://h", FunctionApp(handler))
        return HttpClient(internet, latency=NoLatency())

    def test_follows_single_redirect(self):
        client = self.make_redirecting_client(hops=1)
        result = deref("https://h/hop0", client=client)
        assert result.ok
        assert result.url == "https://h/hop1"  # final URL is the provenance

    def test_follows_redirect_chain(self):
        client = self.make_redirecting_client(hops=3)
        result = deref("https://h/hop0", client=client)
        assert result.ok and result.url == "https://h/hop3"

    def test_redirect_loop_bounded(self):
        client = self.make_redirecting_client()
        result = deref("https://h/loop", client=client)
        assert not result.ok and "redirect" in result.error

    def test_redirect_without_location_fails_leniently(self):
        client = self.make_redirecting_client()
        result = deref("https://h/no-location", client=client)
        assert not result.ok

    def test_container_redirect_resolves_members(self, tiny_universe):
        """The Solid server 301s slash-less container URLs; traversal must
        land on the container and resolve member IRIs against it."""
        from repro.ltqp.dereference import Dereferencer
        from repro.net import NoLatency

        pod = tiny_universe.pod_of(0)
        slashless = pod.base_url + "posts"  # no trailing slash
        dereferencer = Dereferencer(tiny_universe.client(latency=NoLatency()))
        result = asyncio.run(dereferencer.dereference(slashless))
        assert result.ok
        assert result.url == pod.base_url + "posts/"
        member_subjects = {t.subject.value for t in result.triples}
        assert pod.base_url + "posts/" in member_subjects


class TestLenientSymmetry:
    """Regression tests: every failure class honours the lenient flag.

    Historically redirect loops warned leniently while a malformed or
    relative ``Location`` escaped as a raw ``ValueError`` even with
    ``lenient=True`` — the two sides of the same contract must agree.
    """

    def make_client(self):
        from repro.net import FunctionApp, Request, Response

        def handler(request: Request) -> Response:
            if request.path == "/relative-redirect":
                return Response(301, {"location": "target"})  # relative Location
            if request.path == "/target":
                return Response.ok_turtle("<https://h/a> <https://h/p> <https://h/b> .")
            if request.path == "/bad-scheme":
                return Response(301, {"location": "ftp://h/elsewhere"})
            if request.path == "/loop":
                return Response(302, {"location": "https://h/loop"})
            return Response.not_found(request.url)

        internet = Internet()
        internet.register("https://h", FunctionApp(handler))
        return HttpClient(internet, latency=NoLatency())

    def test_relative_location_resolved_not_crashed(self):
        result = deref("https://h/relative-redirect", client=self.make_client())
        assert result.ok
        assert result.url == "https://h/target"

    def test_unfetchable_scheme_is_lenient_failure(self):
        result = deref("https://h/bad-scheme", client=self.make_client())
        assert not result.ok
        assert "invalid URL" in result.error

    def test_unfetchable_scheme_raises_in_strict_mode(self):
        from repro.ltqp.dereference import DereferenceError

        with pytest.raises(DereferenceError):
            deref("https://h/bad-scheme", lenient=False, client=self.make_client())

    def test_redirect_loop_raises_in_strict_mode(self):
        from repro.ltqp.dereference import DereferenceError

        with pytest.raises(DereferenceError):
            deref("https://h/loop", lenient=False, client=self.make_client())

    def test_parse_error_raises_in_strict_mode(self):
        from repro.ltqp.dereference import DereferenceError

        with pytest.raises(DereferenceError):
            deref("https://h/broken", lenient=False)

    def test_dereference_error_is_runtime_error_with_url(self):
        from repro.ltqp.dereference import DereferenceError

        with pytest.raises(RuntimeError) as excinfo:
            deref("https://h/missing", lenient=False)
        assert excinfo.value.url == "https://h/missing"


class TestRetryableClassification:
    def test_503_failure_is_retryable(self):
        from repro.net import FunctionApp, Response

        internet = Internet()
        internet.register(
            "https://h",
            FunctionApp(lambda r: Response(503, {"content-type": "text/plain"}, b"")),
        )
        from repro.net.resilience import NetworkPolicy

        client = HttpClient(internet, latency=NoLatency(), policy=NetworkPolicy.no_retry())
        result = deref("https://h/doc", client=client)
        assert not result.ok and result.retryable

    def test_404_failure_is_not_retryable(self):
        result = deref("https://h/missing")
        assert not result.ok and not result.retryable

    def test_unknown_origin_is_not_retryable(self):
        result = deref("https://unknown.example/x")
        assert not result.ok and not result.retryable

    def test_parse_error_is_not_retryable(self):
        result = deref("https://h/broken")
        assert not result.ok and not result.retryable
