"""Tests for adaptive query planning (paper §5 future work)."""

import pytest

from repro.ltqp.adaptive import AdaptivePipeline, observed_cardinality
from repro.ltqp import EngineConfig, LinkTraversalEngine
from repro.net import HttpClient, NoLatency
from repro.rdf import Dataset, Literal, NamedNode, Quad, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql import parse_query
from repro.sparql.eval import SnapshotEvaluator

EX = "PREFIX ex: <http://x/>\n"


def n(suffix):
    return NamedNode(f"http://x/{suffix}")


def q(subject, predicate, object, graph="https://h/doc"):
    return Quad(subject, predicate, object, NamedNode(graph))


def skewed_dataset(popular: int = 60, selective: int = 2) -> list[Quad]:
    """Many ex:content triples, few ex:creator ex:me triples."""
    quads = []
    for index in range(popular):
        quads.append(q(n(f"m{index}"), n("content"), Literal(f"text {index}")))
    for index in range(selective):
        quads.append(q(n(f"m{index}"), n("creator"), n("me")))
    return quads


#: A query whose textual order starts with the *huge* pattern.
BAD_ORDER_QUERY = EX + "SELECT ?m ?c WHERE { ?m ex:content ?c . ?m ex:creator ex:me }"


def identity_order(patterns):
    return list(patterns)


class TestObservedCardinality:
    def test_counts_matching_triples(self):
        dataset = Dataset()
        for quad in skewed_dataset():
            dataset.add(quad)
        content = TriplePattern(Variable("m"), n("content"), Variable("c"))
        creator = TriplePattern(Variable("m"), n("creator"), n("me"))
        assert observed_cardinality(content, dataset) == 60
        assert observed_cardinality(creator, dataset) == 2


class TestAdaptivePipeline:
    def feed_in_chunks(self, pipeline, quads, chunk=5):
        dataset = Dataset()
        produced = []
        for start in range(0, len(quads), chunk):
            for quad in quads[start:start + chunk]:
                dataset.add(quad)
            produced.extend(pipeline.advance(dataset))
        return produced, dataset

    def make_bad_pipeline(self, **kwargs):
        query = parse_query(BAD_ORDER_QUERY)
        pipeline = AdaptivePipeline(query.where, check_interval=2, **kwargs)
        # Force the initial plan to the bad (textual) order so adaptivity
        # has something to correct.
        pipeline._pipeline = pipeline._compile(order=None)
        return query, pipeline

    def test_replans_on_skewed_data(self):
        query = parse_query(BAD_ORDER_QUERY)
        pipeline = AdaptivePipeline(query.where, check_interval=2)
        # Override initial order with the adversarial textual order.
        from repro.ltqp.pipeline import compile_pipeline

        pipeline._pipeline = compile_pipeline(query.where, bgp_order=identity_order)
        pipeline._current_order = None  # will be repopulated on replan path

        # Feed; current_order is None so _maybe_replan must be tolerant.
        produced, _ = self.feed_in_chunks(pipeline, skewed_dataset())
        assert len(produced) == 2  # answers still correct

    def test_replan_produces_same_answers_as_snapshot(self):
        query = parse_query(BAD_ORDER_QUERY)
        pipeline = AdaptivePipeline(query.where, check_interval=1, replan_factor=2.0)
        produced, dataset = self.feed_in_chunks(pipeline, skewed_dataset(), chunk=3)
        expected = set(SnapshotEvaluator(dataset.union).evaluate(query.where))
        assert set(produced) == expected

    def test_no_duplicate_answers_across_replans(self):
        query = parse_query(BAD_ORDER_QUERY)
        pipeline = AdaptivePipeline(query.where, check_interval=1, replan_factor=1.1)
        produced, _ = self.feed_in_chunks(pipeline, skewed_dataset(), chunk=2)
        assert len(produced) == len(set(produced))

    def test_replan_counter_bounded(self):
        query = parse_query(BAD_ORDER_QUERY)
        pipeline = AdaptivePipeline(
            query.where, check_interval=1, replan_factor=1.01, max_replans=2
        )
        self.feed_in_chunks(pipeline, skewed_dataset(popular=200), chunk=2)
        assert pipeline.replans <= 2

    def test_no_replan_when_order_is_already_good(self):
        query = parse_query(
            EX + "SELECT ?m ?c WHERE { ?m ex:creator ex:me . ?m ex:content ?c }"
        )
        pipeline = AdaptivePipeline(query.where, check_interval=1)
        self.feed_in_chunks(pipeline, skewed_dataset(), chunk=4)
        assert pipeline.replans == 0


class TestEngineIntegration:
    def test_adaptive_engine_matches_default(self, tiny_universe):
        from repro.solidbench import discover_query

        query = discover_query(tiny_universe, 2, 1)
        default_engine = tiny_universe.fast_engine()
        default = default_engine.execute_sync(query.text, seeds=query.seeds)

        adaptive_engine = LinkTraversalEngine(
            tiny_universe.client(latency=NoLatency()),
            config=EngineConfig(adaptive=True),
        )
        adaptive = adaptive_engine.execute_sync(query.text, seeds=query.seeds)
        assert set(adaptive.bindings) == set(default.bindings)
        assert adaptive.stats.replans >= 0
        assert "replans" in adaptive.stats.summary()
