"""Unit tests for links and link queues."""

import pytest

from repro.ltqp.links import FairLinkQueue, FifoLinkQueue, Link, PriorityLinkQueue


class TestFifoQueue:
    def test_fifo_order(self):
        queue = FifoLinkQueue()
        queue.push(Link("https://h/a"))
        queue.push(Link("https://h/b"))
        assert queue.pop().url == "https://h/a"
        assert queue.pop().url == "https://h/b"

    def test_deduplication(self):
        queue = FifoLinkQueue()
        assert queue.push(Link("https://h/a"))
        assert not queue.push(Link("https://h/a"))
        assert len(queue) == 1

    def test_fragment_stripped_for_dedup(self):
        queue = FifoLinkQueue()
        queue.push(Link("https://h/doc#me"))
        assert not queue.push(Link("https://h/doc#other"))
        assert queue.pop().url == "https://h/doc"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FifoLinkQueue().pop()

    def test_has_seen(self):
        queue = FifoLinkQueue()
        queue.push(Link("https://h/a#frag"))
        assert queue.has_seen("https://h/a")
        assert queue.has_seen("https://h/a#x")
        assert not queue.has_seen("https://h/b")

    def test_counters(self):
        queue = FifoLinkQueue()
        queue.push(Link("https://h/a"))
        queue.push(Link("https://h/b"))
        queue.pop()
        assert queue.pushed_total == 2
        assert queue.popped_total == 1
        assert not queue.empty

    def test_compaction_preserves_order(self):
        queue = FifoLinkQueue()
        for i in range(3000):
            queue.push(Link(f"https://h/{i}"))
        for i in range(2999):
            assert queue.pop().url == f"https://h/{i}"
        queue.push(Link("https://h/last"))
        assert queue.pop().url == "https://h/2999"
        assert queue.pop().url == "https://h/last"

    def test_samples_recorded(self):
        queue = FifoLinkQueue()
        queue.push(Link("https://h/a"))
        queue.pop()
        samples = queue.samples
        assert len(samples) == 2
        assert samples[0].queue_length == 1
        assert samples[1].queue_length == 0


class TestPriorityQueue:
    def test_depth_ordering(self):
        queue = PriorityLinkQueue()
        queue.push(Link("https://h/deep", depth=3))
        queue.push(Link("https://h/shallow", depth=1))
        assert queue.pop().url == "https://h/shallow"

    def test_extractor_rank_breaks_ties(self):
        queue = PriorityLinkQueue()
        queue.push(Link("https://h/data", depth=1, via="match"))
        queue.push(Link("https://h/index", depth=1, via="type-index"))
        assert queue.pop().url == "https://h/index"

    def test_custom_priority(self):
        queue = PriorityLinkQueue(priority=lambda link: (len(link.url),))
        queue.push(Link("https://h/looooong"))
        queue.push(Link("https://h/x"))
        assert queue.pop().url == "https://h/x"

    def test_insertion_order_for_equal_priority(self):
        queue = PriorityLinkQueue()
        queue.push(Link("https://h/a", depth=1, via="match"))
        queue.push(Link("https://h/b", depth=1, via="match"))
        assert queue.pop().url == "https://h/a"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PriorityLinkQueue().pop()


class TestFairQueue:
    def test_interleaves_across_origins(self):
        queue = FairLinkQueue()
        # Push origin-clustered (the pathological arrival order for FIFO):
        # all of a's links, then all of b's, then all of c's.
        for origin in ("a", "b", "c"):
            for i in range(3):
                queue.push(Link(f"https://{origin}.example/{i}"))
        popped = [queue.pop().url for _ in range(9)]
        origins = [url.split("/")[2].split(".")[0] for url in popped]
        # Every consecutive window of 3 pops serves all three origins.
        assert origins == ["a", "b", "c"] * 3

    def test_heavy_origin_cannot_starve_light_origin(self):
        queue = FairLinkQueue()
        for i in range(1000):
            queue.push(Link(f"https://hog.example/{i}"))
        for i in range(3):
            queue.push(Link(f"https://light.example/{i}"))
        first_light = next(
            position
            for position in range(1, 1004)
            if queue.pop().url.startswith("https://light")
        )
        # The light origin joined the rotation at the back of round 1, so
        # it waits at most one round — one pop from each other origin.
        assert first_light <= 2

    def test_every_light_link_within_one_round(self):
        queue = FairLinkQueue()
        for i in range(1000):
            queue.push(Link(f"https://hog.example/{i}"))
        for i in range(3):
            queue.push(Link(f"https://light.example/{i}"))
        positions = [
            position
            for position in range(1, 1004)
            if queue.pop().url.startswith("https://light")
        ]
        # With 2 origins a round is 2 pops: every light link is served
        # within 2 pops of the previous one, regardless of the 1000 hogs.
        assert len(positions) == 3
        assert all(b - a <= 2 for a, b in zip(positions, positions[1:]))

    def test_drained_origin_leaves_rotation(self):
        queue = FairLinkQueue()
        queue.push(Link("https://a.example/0"))
        queue.push(Link("https://b.example/0"))
        queue.push(Link("https://b.example/1"))
        assert queue.pop().url == "https://a.example/0"
        # a's lane is empty now; the remaining pops are b's alone.
        assert queue.pop().url == "https://b.example/0"
        assert queue.pop().url == "https://b.example/1"
        assert queue.empty

    def test_late_origin_joins_back_of_rotation(self):
        queue = FairLinkQueue()
        queue.push(Link("https://a.example/0"))
        queue.push(Link("https://a.example/1"))
        assert queue.pop().url == "https://a.example/0"
        queue.push(Link("https://b.example/0"))
        # b arrives mid-round: it waits for a's turn, then is served.
        assert queue.pop().url == "https://a.example/1"
        assert queue.pop().url == "https://b.example/0"

    def test_requeue_and_dedup_still_apply(self):
        queue = FairLinkQueue()
        assert queue.push(Link("https://a.example/0"))
        assert not queue.push(Link("https://a.example/0"))
        queue.pop()
        queue.requeue(Link("https://a.example/0", attempts=1))
        assert queue.pop().attempts == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FairLinkQueue().pop()


class TestLink:
    def test_seed_detection(self):
        assert Link("https://h/a").is_seed
        assert not Link("https://h/a", parent_url="https://h/b").is_seed


class TestQueuePolicyRegistry:
    def test_policies_map_to_queue_classes(self):
        from repro.ltqp import (
            FairLinkQueue,
            FifoLinkQueue,
            GuidedLinkQueue,
            LifoLinkQueue,
            PriorityLinkQueue,
            QUEUE_POLICIES,
            build_queue,
            queue_factory_for,
        )

        assert set(QUEUE_POLICIES) == {"fifo", "lifo", "priority", "fair", "guided"}
        assert isinstance(build_queue(queue_factory_for("fifo")), FifoLinkQueue)
        assert isinstance(build_queue(queue_factory_for("lifo")), LifoLinkQueue)
        assert isinstance(build_queue(queue_factory_for("priority")), PriorityLinkQueue)
        assert isinstance(build_queue(queue_factory_for("fair")), FairLinkQueue)
        assert isinstance(build_queue(queue_factory_for("guided")), GuidedLinkQueue)

    def test_build_queue_legacy_factory_gets_no_context(self):
        # Embedders inject queue classes directly; PriorityLinkQueue's first
        # parameter is ``priority``, which must NOT absorb the context.
        from repro.ltqp import PriorityLinkQueue, QueuePolicyContext, build_queue

        queue = build_queue(PriorityLinkQueue, QueuePolicyContext())
        queue.push(Link("https://h/a"))
        assert queue.pop().url == "https://h/a"

    def test_unknown_policy_raises(self):
        import pytest

        from repro.ltqp import queue_factory_for

        with pytest.raises(ValueError, match="unknown queue policy"):
            queue_factory_for("random")
