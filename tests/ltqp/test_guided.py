"""Unit tests for the guided-traversal subsystem (DESIGN.md §4g)."""

import pytest

from repro.ltqp.guided.hints import CardinalityHints, container_relevant, query_scopes
from repro.ltqp.guided.queue import GuidedLinkQueue
from repro.ltqp.guided.selector import SourceSelector
from repro.ltqp.guided.subweb import SubwebRule, SubwebSpecification, glob_to_regex
from repro.ltqp.links import Link, LinkProvenance, QueuePolicyContext
from repro.rdf.namespaces import RDF, SNVOC, SUBWEB
from repro.rdf.terms import Literal, NamedNode
from repro.rdf.triples import Triple
from repro.sparql.parser import parse_query

POD = "https://solidbench.example/pods/alice/"
OTHER = "https://solidbench.example/pods/bob/"


def hint_triples(pod_base=POD, complete=True):
    doc = pod_base + "settings/cardinality"
    index = NamedNode(doc + "#index")
    posts = NamedNode(doc + "#c-posts")
    noise = NamedNode(doc + "#c-noise")
    triples = [
        Triple(index, SUBWEB.pod, NamedNode(pod_base)),
        Triple(index, SUBWEB.infra, NamedNode(pod_base)),
        Triple(index, SUBWEB.infra, NamedNode(pod_base + "settings/publicTypeIndex")),
        Triple(posts, SUBWEB.container, NamedNode(pod_base + "posts/")),
        Triple(posts, SUBWEB["class"], SNVOC.Post),
        Triple(posts, SUBWEB.predicate, SNVOC.hasCreator),
        Triple(posts, SUBWEB.predicate, SNVOC.content),
        Triple(posts, SUBWEB.predicate, RDF.type),
        Triple(posts, SUBWEB.documents, Literal("28")),
        Triple(posts, SUBWEB.entities, Literal("900")),
        Triple(noise, SUBWEB.container, NamedNode(pod_base + "noise/")),
        Triple(noise, SUBWEB.predicate, NamedNode("https://x/p0")),
        Triple(noise, SUBWEB.documents, Literal("18")),
        Triple(noise, SUBWEB.entities, Literal("0")),
    ]
    if complete:
        triples.append(Triple(index, SUBWEB.completeIndex, Literal("true")))
    return doc, triples


def where_of(text: str):
    return parse_query(text).where


CREATOR_QUERY = (
    f"PREFIX snvoc: <{SNVOC.hasCreator.value.rsplit('hasCreator', 1)[0]}>\n"
    "SELECT ?c WHERE { ?m snvoc:hasCreator <https://x/me> ; snvoc:content ?c }"
)


class TestGlob:
    def test_star_stays_within_segment(self):
        pattern = glob_to_regex("https://h/pods/*/posts/")
        assert pattern.match("https://h/pods/alice/posts/")
        assert not pattern.match("https://h/pods/alice/sub/posts/")

    def test_double_star_crosses_segments(self):
        pattern = glob_to_regex("https://h/pods/**")
        assert pattern.match("https://h/pods/alice/posts/2012-01-01")

    def test_match_is_anchored(self):
        assert not glob_to_regex("https://h/a").match("https://h/ab")


class TestSubwebSpecification:
    def test_first_match_wins(self):
        spec = SubwebSpecification(
            rules=(
                SubwebRule(match=f"{POD}noise/**", action="deny", label="noise"),
                SubwebRule(match=f"{POD}**", action="allow"),
            ),
            default_action="deny",
        )
        assert spec.decide(POD + "noise/noise-3", 2) == (False, "noise")
        assert spec.decide(POD + "posts/2012-01-01", 2)[0]
        assert spec.decide("https://elsewhere.example/x", 1) == (False, "default")

    def test_allow_rule_depth_cap(self):
        spec = SubwebSpecification(
            rules=(SubwebRule(match="https://h/**", action="allow", max_depth=2, label="h"),)
        )
        assert spec.decide("https://h/doc", 2)[0]
        allowed, rule = spec.decide("https://h/doc", 3)
        assert not allowed and rule == "depth>2:h"

    def test_json_roundtrip(self):
        spec = SubwebSpecification(
            rules=(SubwebRule(match="https://h/**", action="deny", label="x"),),
            default_action="allow",
            origins="declared",
            admit_origins_via=(SNVOC.likes.value,),
            source_depth=2,
        )
        assert SubwebSpecification.from_json(spec.to_json()) == spec

    def test_compose_is_stricter(self):
        base = SubwebSpecification(origins="any", source_depth=1)
        extra = SubwebSpecification(
            rules=(SubwebRule(match="https://h/x/**", action="deny"),),
            origins="declared",
            admit_origins_via=(SNVOC.likes.value,),
            source_depth=2,
        )
        merged = base.compose(extra)
        assert merged.origins == "declared"
        assert merged.source_depth == 2
        assert merged.admit_origins_via == (SNVOC.likes.value,)
        assert not merged.decide("https://h/x/doc", 1)[0]

    def test_from_triples_parses_rdf_form(self):
        spec_iri = NamedNode("https://h/spec#it")
        rule = NamedNode("https://h/spec#r1")
        triples = [
            Triple(spec_iri, SUBWEB.defaultAction, Literal("deny")),
            Triple(spec_iri, SUBWEB.origins, Literal("declared")),
            Triple(spec_iri, SUBWEB.admitVia, SNVOC.likes),
            Triple(spec_iri, SUBWEB.sourceDepth, Literal("2")),
            Triple(rule, SUBWEB.match, Literal("https://h/**")),
            Triple(rule, SUBWEB.action, Literal("allow")),
            Triple(rule, SUBWEB.maxDepth, Literal("3")),
        ]
        spec = SubwebSpecification.from_triples(triples)
        assert spec is not None
        assert spec.default_action == "deny"
        assert spec.origins == "declared"
        assert spec.source_depth == 2
        assert spec.decide("https://h/doc", 3)[0]
        assert not spec.decide("https://h/doc", 4)[0]

    def test_from_triples_ignores_unrelated_documents(self):
        triples = [Triple(NamedNode("https://h/a"), SNVOC.likes, NamedNode("https://h/b"))]
        assert SubwebSpecification.from_triples(triples) is None


class TestCardinalityHints:
    def test_absorb_and_lookup(self):
        url, triples = hint_triples()
        hints = CardinalityHints()
        pod = hints.absorb_triples(url, triples)
        assert pod is not None and pod.complete
        assert hints.pod_for(POD + "posts/2012-01-01") is pod
        assert hints.pod_by_source(url) is pod
        assert pod.container_for(POD + "posts/2012-01-01").entities == 900

    def test_non_hint_document_is_ignored(self):
        hints = CardinalityHints()
        assert hints.absorb_triples("https://h/x", []) is None
        assert hints.pod_count == 0


class TestRelevance:
    def test_noise_container_is_irrelevant_to_creator_query(self):
        url, triples = hint_triples()
        hints = CardinalityHints()
        pod = hints.absorb_triples(url, triples)
        scopes = query_scopes(where_of(CREATOR_QUERY))
        posts = pod.container_for(POD + "posts/x")
        noise = pod.container_for(POD + "noise/x")
        assert container_relevant(posts, scopes, hints.ranges)
        assert not container_relevant(noise, scopes, hints.ranges)

    def test_no_scopes_means_everything_relevant(self):
        url, triples = hint_triples()
        hints = CardinalityHints()
        pod = hints.absorb_triples(url, triples)
        noise = pod.container_for(POD + "noise/x")
        assert container_relevant(noise, (), hints.ranges)


class TestSourceSelector:
    def test_spec_prune_and_infra_prune(self):
        spec = SubwebSpecification(
            rules=(SubwebRule(match="**/noise/**", action="deny", label="noise"),)
        )
        selector = SourceSelector(spec=spec, where=where_of(CREATOR_QUERY), seeds=[POD])
        url, triples = hint_triples()
        selector.absorb_document(url, triples)
        assert selector.check_static(Link(POD + "noise/noise-1")).action == "prune"
        assert selector.check_static(Link(POD)).rule == "hint:infra"
        assert selector.check_static(Link(POD + "posts/2012-01-01")).action == "follow"

    def test_defer_then_release_on_admission(self):
        spec = SubwebSpecification(
            origins="declared",
            admit_origins_via=(SNVOC.likes.value,),
            source_depth=2,
        )
        selector = SourceSelector(spec=spec, seeds=[POD + "profile/card"])
        foreign = Link(OTHER + "posts/2012-01-01", via="match")
        assert selector.check(foreign).action == "defer"
        selector.defer(foreign)
        assert selector.deferred_count == 1
        released = selector.absorb_document(
            POD + "profile/card",
            [
                Triple(
                    NamedNode(POD + "profile/card#me"),
                    SNVOC.likes,
                    NamedNode(OTHER + "posts/2012-01-01#42"),
                )
            ],
        )
        assert [link.url for link in released] == [foreign.url]
        assert selector.check(foreign).action == "follow"
        assert selector.drain_deferred() == []

    def test_undeclared_links_drain_as_pruned(self):
        spec = SubwebSpecification(origins="declared", source_depth=2)
        selector = SourceSelector(spec=spec, seeds=[POD])
        link = Link(OTHER + "x")
        selector.defer(link)
        assert [parked.url for parked in selector.drain_deferred()] == [link.url]
        assert selector.deferred_count == 0


class TestGuidedQueue:
    def test_provenance_tiers_order_pops(self):
        queue = GuidedLinkQueue()
        queue.push(Link("https://h/data", provenance=LinkProvenance(extractor="match")))
        queue.push(Link("https://h/root", provenance=LinkProvenance(extractor="storage")))
        queue.push(Link("https://h/hint", provenance=LinkProvenance(extractor="hint")))
        assert [queue.pop().url for _ in range(3)] == [
            "https://h/hint",
            "https://h/root",
            "https://h/data",
        ]

    def test_query_predicate_links_jump_the_tiers(self):
        # A match link produced by a predicate the query uses is a join
        # edge — it pops ahead of container structure, not after it.
        from repro.ltqp.extractors import build_query_context

        context = QueuePolicyContext(query=build_query_context(where_of(CREATOR_QUERY)))
        queue = GuidedLinkQueue(context)
        queue.push(
            Link(
                "https://h/bob/posts/9",
                provenance=LinkProvenance(
                    extractor="match", predicate=SNVOC.hasCreator.value
                ),
            )
        )
        queue.push(
            Link(
                "https://h/alice/posts/",
                provenance=LinkProvenance(extractor="hint-container"),
            )
        )
        queue.push(
            Link(
                "https://h/bob/card",
                provenance=LinkProvenance(
                    extractor="match", predicate=SNVOC.knows.value
                ),
            )
        )
        assert [queue.pop().url for _ in range(3)] == [
            "https://h/bob/posts/9",
            "https://h/alice/posts/",
            "https://h/bob/card",
        ]

    def test_result_contribution_boost_reorders_siblings(self):
        queue = GuidedLinkQueue()
        queue.push(Link("https://h/a/1", provenance=LinkProvenance(extractor="match")))
        queue.push(Link("https://h/b/1", provenance=LinkProvenance(extractor="match")))
        queue.note_result_contribution("https://h/b/0")
        assert queue.pop().url == "https://h/b/1"

    def test_entity_counts_break_ties(self):
        url, triples = hint_triples()
        hints = CardinalityHints()
        hints.absorb_triples(url, triples)
        queue = GuidedLinkQueue(QueuePolicyContext(hints=hints))
        queue.push(Link(POD + "noise/x", provenance=LinkProvenance(extractor="match")))
        queue.push(Link(POD + "posts/x", provenance=LinkProvenance(extractor="match")))
        assert queue.pop().url == POD + "posts/x"

    def test_requeue_preserves_provenance_and_rank(self):
        # Regression: a retryable failure must not demote the link — the
        # requeued copy keeps its provenance and therefore its queue rank.
        import dataclasses

        queue = GuidedLinkQueue()
        storage = Link(
            "https://h/root", via="storage", provenance=LinkProvenance(extractor="storage")
        )
        queue.push(storage)
        popped = queue.pop()
        queue.push(Link("https://h/data", provenance=LinkProvenance(extractor="match")))
        assert queue.requeue(dataclasses.replace(popped, attempts=popped.attempts + 1))
        head = queue.pop()
        assert head.url == "https://h/root"
        assert head.attempts == 1
        assert head.provenance == storage.provenance
