"""Unit/integration tests for the link-traversal engine."""

import asyncio

import pytest

from repro.ltqp import (
    AllIriExtractor,
    EngineConfig,
    LinkTraversalEngine,
    PriorityLinkQueue,
)
from repro.net import HttpClient, Internet, NoLatency, StaticApp
from repro.rdf import Literal, NamedNode, RDF, SNVOC, Triple, Variable
from repro.solid import Pod, SolidServer

ORIGIN = "https://bench.example"
SNB = f"PREFIX snvoc: <{SNVOC.base}>\n"


def build_two_pod_world():
    """Pod 1: creator with posts; pod 2: a liker pointing into pod 1."""
    server = SolidServer(ORIGIN)

    pod1 = Pod(ORIGIN + "/pods/0001/", owner_name="Zulma")
    me1 = NamedNode(pod1.webid)
    for index, day in enumerate(["2010-10-12", "2011-11-21"]):
        message = NamedNode(f"{pod1.base_url}posts/{day}#post{index}")
        pod1.add_document(
            f"posts/{day}",
            [
                Triple(message, RDF.type, SNVOC.Post),
                Triple(message, SNVOC.hasCreator, me1),
                Triple(message, SNVOC.content, Literal(f"post {index}")),
            ],
        )
    pod1.build_profile()
    pod1.build_type_index([(SNVOC.Post, "posts/", True)])
    server.mount(pod1)

    pod2 = Pod(ORIGIN + "/pods/0002/", owner_name="Ana")
    liked = NamedNode(pod1.base_url + "posts/2010-10-12#post0")
    pod2.add_document("likes", [Triple(NamedNode(pod2.webid), SNVOC.likes, liked)])
    pod2.build_profile()
    server.mount(pod2)

    internet = Internet()
    internet.register(ORIGIN, server)
    return internet, pod1, pod2


@pytest.fixture()
def world():
    return build_two_pod_world()


def engine_for(internet, **kwargs):
    return LinkTraversalEngine(HttpClient(internet, latency=NoLatency()), **kwargs)


class TestExecution:
    def test_streams_results_while_traversing(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        result = engine.execute_sync(query)
        assert len(result) == 2
        assert result.stats.streaming
        assert result.stats.time_to_first_result is not None
        assert result.stats.time_to_first_result <= result.stats.total_time

    def test_query_based_seed_fallback(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        result = engine.execute_sync(query)  # no explicit seeds
        assert result.seeds == [pod1.webid]
        assert len(result) == 2

    def test_explicit_seeds_override(self, world):
        internet, pod1, pod2 = world
        engine = engine_for(internet)
        query = SNB + "SELECT ?c WHERE { ?m snvoc:content ?c }"
        result = engine.execute_sync(query, seeds=[pod1.webid])
        assert result.seeds == [pod1.webid]
        assert len(result) == 2

    def test_stream_api_yields_incrementally(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"

        async def collect():
            seen = []
            async for binding in engine.stream(query):
                seen.append(binding)
            return seen

        assert len(asyncio.run(collect())) == 2

    def test_cross_pod_traversal(self, world):
        internet, pod1, pod2 = world
        engine = engine_for(internet)
        query = SNB + (
            f"SELECT ?creator WHERE {{ <{pod2.webid}> snvoc:likes ?m . "
            "?m snvoc:hasCreator ?creator }"
        )
        result = engine.execute_sync(query)
        assert [b[Variable("creator")].value for b in result.bindings] == [pod1.webid]
        fetched_origin_paths = {r.url for r in engine.client.log.records}
        assert any("/pods/0001/" in url for url in fetched_origin_paths)

    def test_limit_stops_traversal_early(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)
        unbounded = engine.execute_sync(
            SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        )
        engine2 = engine_for(internet)
        limited = engine2.execute_sync(
            SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }} LIMIT 1"
        )
        assert len(limited) == 1
        assert limited.stats.documents_fetched <= unbounded.stats.documents_fetched

    def test_non_monotonic_query_finalizes_at_quiescence(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)
        query = SNB + (
            f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }} ORDER BY ?c"
        )
        result = engine.execute_sync(query)
        # The blocking OrderSlice operator holds output for the finalize
        # pass, so the plan does not stream — but it runs through the same
        # unified pipeline (no snapshot re-evaluation).
        assert not result.stats.streaming
        assert [b[Variable("c")].value for b in result.bindings] == ["post 0", "post 1"]

    def test_ask_query(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)
        result = engine.execute_sync(SNB + f"ASK {{ ?m snvoc:hasCreator <{pod1.webid}> }}")
        assert len(result) == 1  # one empty binding = true

    def test_dead_seed_is_lenient(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        result = engine.execute_sync(query, seeds=["https://nowhere.example/x", pod1.webid])
        assert len(result) == 2
        assert result.stats.documents_failed >= 1

    def test_no_seeds_completes_empty(self, world):
        internet, _, _ = world
        engine = engine_for(internet)
        result = engine.execute_sync(SNB + "SELECT ?c WHERE { ?m snvoc:content ?c }", seeds=[])
        assert len(result) == 0


class TestConfiguration:
    def test_max_documents_bounds_traversal(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet, config=EngineConfig(max_documents=3))
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        result = engine.execute_sync(query)
        assert result.stats.documents_fetched <= 3

    def test_max_depth_bounds_traversal(self, world):
        internet, pod1, _ = world
        shallow = engine_for(internet, config=EngineConfig(max_depth=1))
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        result = shallow.execute_sync(query)
        assert len(result) == 0  # posts live at depth > 1

    def test_priority_queue_factory(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet, queue_factory=PriorityLinkQueue)
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        assert len(engine.execute_sync(query)) == 2

    def test_custom_extractors(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet, extractors=[AllIriExtractor()])
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        result = engine.execute_sync(query)
        assert len(result) == 2
        assert set(result.stats.links_by_extractor) <= {"seed", "all-iris"}

    def test_stats_accounting(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        result = engine.execute_sync(query)
        stats = result.stats
        assert stats.documents_fetched == len(engine.client.log.records) - stats.documents_failed
        assert stats.links_queued >= stats.documents_fetched
        assert stats.queue_samples
        assert stats.triples_discovered > 0
        summary = stats.summary()
        assert summary["results"] == 2


class TestServiceOrientedEngine:
    """The injectable dereferencer + per-execution overrides (service mode)."""

    def test_queue_policy_via_traversal_policy(self, world):
        internet, pod1, _ = world
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        for policy in ("fifo", "lifo", "priority"):
            engine = engine_for(internet, config=EngineConfig(queue_policy=policy))
            assert len(engine.execute_sync(query)) == 2

    def test_explicit_queue_factory_beats_policy(self, world):
        internet, pod1, _ = world
        made = []

        def factory():
            queue = PriorityLinkQueue()
            made.append(queue)
            return queue

        engine = engine_for(
            internet,
            queue_factory=factory,
            config=EngineConfig(queue_policy="lifo"),
        )
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        assert len(engine.execute_sync(query)) == 2
        assert made  # the explicit factory was used, not the policy

    def test_injected_dereferencer_is_used(self, world):
        from repro.ltqp.dereference import Dereferencer
        from repro.service import DocumentStore

        internet, pod1, _ = world
        client = HttpClient(internet, latency=NoLatency())
        store = DocumentStore()
        dereferencer = Dereferencer(client, document_store=store)
        engine = LinkTraversalEngine(client, dereferencer=dereferencer)
        assert engine.dereferencer is dereferencer
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        cold = engine.execute_sync(query)
        warm = engine.execute_sync(query)
        assert len(cold) == len(warm) == 2
        assert cold.stats.documents_from_store == 0
        assert warm.stats.documents_from_store == warm.stats.documents_fetched
        assert store.hits > 0

    def test_per_execution_extractors_override(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)  # default extractor stack
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"

        async def run():
            execution = engine.query(query, extractors=[AllIriExtractor()])
            await execution.gather()
            return execution

        execution = asyncio.run(run())
        assert len(execution.results) == 2
        assert set(execution.stats.links_by_extractor) <= {"seed", "all-iris"}

    def test_per_execution_traversal_override(self, world):
        from repro.ltqp.engine import TraversalPolicy

        internet, pod1, _ = world
        engine = engine_for(internet)
        query = SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"

        async def run(traversal):
            execution = engine.query(query, traversal=traversal)
            await execution.gather()
            return execution

        bounded = asyncio.run(run(TraversalPolicy(max_documents=2)))
        assert bounded.stats.documents_fetched <= 2
        # The engine's own config is untouched: a plain run is unbounded.
        full = asyncio.run(run(None))
        assert full.stats.documents_fetched > 2
