"""Standing queries: signed maintenance units and the LiveQuery lifecycle.

Two layers under test:

* **pipeline units** — a live-compiled pipeline over a
  :class:`GrowingTripleSource` must maintain its result multiset under
  signed document re-diffs (`update_document` → `poll_changes`) for every
  operator family, matching a fresh execution over the final state;
* **LiveQuery** — the full loop over a simulated Solid pod: start →
  PATCH → refresh re-diffs the document → signed events, plus the
  notify/drain/subscribe/close lifecycle and the failure contracts.
"""

import asyncio
from collections import Counter

import pytest

from repro.ltqp.live import LiveQuery, ResultChange
from repro.ltqp.pipeline import compile_query_pipeline
from repro.ltqp.source import GrowingTripleSource
from repro.net.message import Request
from repro.rdf.turtle import parse_turtle
from repro.solidbench import SolidBenchConfig, build_universe
from repro.sparql.parser import parse_query

EX = "http://example.org/"
FOAF = "http://xmlns.com/foaf/0.1/"


# ---------------------------------------------------------------------------
# pipeline-level harness
# ---------------------------------------------------------------------------


def start_live(query_text: str, docs: dict[str, str]):
    """Run a live pipeline to quiescence over turtle documents."""
    query = parse_query(query_text)
    pipeline = compile_query_pipeline(query, live=True)
    source = GrowingTripleSource()
    results = []
    for url, text in docs.items():
        source.add_document(url, parse_turtle(text, base_iri=url))
        results.extend(pipeline.advance(source.dataset))
    results.extend(pipeline.finalize(source.dataset))
    pipeline.prepare_live(source.dataset)
    return pipeline, source, results


def fresh_results(query_text: str, docs: dict[str, str]):
    """A from-scratch execution over the final document state."""
    query = parse_query(query_text)
    pipeline = compile_query_pipeline(query)
    source = GrowingTripleSource()
    for url, text in docs.items():
        source.add_document(url, parse_turtle(text, base_iri=url))
    results = list(pipeline.advance(source.dataset))
    results.extend(pipeline.finalize(source.dataset))
    return results


def apply_edit(pipeline, source, url: str, text: str):
    """One document rewrite -> the signed changes it causes."""
    source.update_document(url, parse_turtle(text, base_iri=url))
    return pipeline.poll_changes(source.dataset)


def maintained(results, *change_batches) -> Counter:
    """Replay initial results plus signed changes into a multiset."""
    multiset: Counter = Counter(results)
    for changes in change_batches:
        for binding, delta in changes:
            multiset[binding] += delta
    return +multiset  # drop zero/negative entries


def assert_equivalent(query_text, docs, results, *change_batches):
    assert maintained(results, *change_batches) == Counter(
        fresh_results(query_text, docs)
    )


DOC = EX + "doc"
PEOPLE = f"""
@prefix foaf: <{FOAF}> .
<#alice> foaf:name "Alice" ; foaf:age 30 ; foaf:knows <#bob> .
<#bob> foaf:name "Bob" ; foaf:age 25 .
<#carol> foaf:name "Carol" ; foaf:age 35 .
"""


class TestOperatorRetraction:
    """Each operator family maintains its multiset under signed edits."""

    def test_bgp_retraction(self):
        query = f'SELECT ?name WHERE {{ ?p <{FOAF}name> ?name }}'
        pipeline, source, results = start_live(query, {DOC: PEOPLE})
        assert len(results) == 3
        final = f'@prefix foaf: <{FOAF}> .\n<#alice> foaf:name "Alice" .'
        changes = apply_edit(pipeline, source, DOC, final)
        deltas = Counter(delta for _, delta in changes)
        assert deltas[-1] == 2  # Bob and Carol retracted
        assert_equivalent(query, {DOC: final}, results, changes)

    def test_join_retraction_cascades(self):
        query = (
            f'SELECT ?name ?other WHERE {{ ?p <{FOAF}knows> ?o . '
            f'?p <{FOAF}name> ?name . ?o <{FOAF}name> ?other }}'
        )
        pipeline, source, results = start_live(query, {DOC: PEOPLE})
        assert len(results) == 1  # Alice knows Bob
        # Retract Bob's name: the join result must disappear.
        final = f"""
@prefix foaf: <{FOAF}> .
<#alice> foaf:name "Alice" ; foaf:age 30 ; foaf:knows <#bob> .
<#bob> foaf:age 25 .
<#carol> foaf:name "Carol" ; foaf:age 35 .
"""
        changes = apply_edit(pipeline, source, DOC, final)
        assert_equivalent(query, {DOC: final}, results, changes)
        assert maintained(results, changes).total() == 0

    def test_optional_rebinds_on_retraction(self):
        query = (
            f'SELECT ?name ?age WHERE {{ ?p <{FOAF}name> ?name '
            f'OPTIONAL {{ ?p <{FOAF}age> ?age }} }}'
        )
        pipeline, source, results = start_live(query, {DOC: PEOPLE})
        # Retract Alice's age: her row must flip to the unbound form.
        final = f"""
@prefix foaf: <{FOAF}> .
<#alice> foaf:name "Alice" ; foaf:knows <#bob> .
<#bob> foaf:name "Bob" ; foaf:age 25 .
<#carol> foaf:name "Carol" ; foaf:age 35 .
"""
        changes = apply_edit(pipeline, source, DOC, final)
        assert changes  # a retraction and a re-addition
        assert_equivalent(query, {DOC: final}, results, changes)

    def test_optional_fills_in_on_addition(self):
        base = f'@prefix foaf: <{FOAF}> .\n<#alice> foaf:name "Alice" .'
        query = (
            f'SELECT ?name ?age WHERE {{ ?p <{FOAF}name> ?name '
            f'OPTIONAL {{ ?p <{FOAF}age> ?age }} }}'
        )
        pipeline, source, results = start_live(query, {DOC: base})
        final = f'@prefix foaf: <{FOAF}> .\n<#alice> foaf:name "Alice" ; foaf:age 30 .'
        changes = apply_edit(pipeline, source, DOC, final)
        assert_equivalent(query, {DOC: final}, results, changes)

    def test_minus_toggles(self):
        query = (
            f'SELECT ?name WHERE {{ ?p <{FOAF}name> ?name '
            f'MINUS {{ ?p <{FOAF}age> 25 }} }}'
        )
        pipeline, source, results = start_live(query, {DOC: PEOPLE})
        assert len(results) == 2  # Bob excluded
        # Bob's age changes: he re-enters; Carol turns 25: she leaves.
        final = f"""
@prefix foaf: <{FOAF}> .
<#alice> foaf:name "Alice" ; foaf:age 30 ; foaf:knows <#bob> .
<#bob> foaf:name "Bob" ; foaf:age 26 .
<#carol> foaf:name "Carol" ; foaf:age 25 .
"""
        changes = apply_edit(pipeline, source, DOC, final)
        assert_equivalent(query, {DOC: final}, results, changes)

    def test_filter_exists_toggles(self):
        query = (
            f'SELECT ?name WHERE {{ ?p <{FOAF}name> ?name '
            f'FILTER EXISTS {{ ?p <{FOAF}knows> ?o }} }}'
        )
        pipeline, source, results = start_live(query, {DOC: PEOPLE})
        assert len(results) == 1  # only Alice knows someone
        final = f"""
@prefix foaf: <{FOAF}> .
<#alice> foaf:name "Alice" ; foaf:age 30 .
<#bob> foaf:name "Bob" ; foaf:age 25 ; foaf:knows <#carol> .
<#carol> foaf:name "Carol" ; foaf:age 35 .
"""
        changes = apply_edit(pipeline, source, DOC, final)
        assert_equivalent(query, {DOC: final}, results, changes)

    def test_group_by_recomputes(self):
        docs = {
            DOC: f"""
@prefix foaf: <{FOAF}> .
<#alice> foaf:knows <#bob>, <#carol> .
<#bob> foaf:knows <#carol> .
"""
        }
        query = (
            f'SELECT ?p (COUNT(?o) AS ?n) WHERE {{ ?p <{FOAF}knows> ?o }} '
            f'GROUP BY ?p'
        )
        pipeline, source, results = start_live(query, docs)
        final = f"""
@prefix foaf: <{FOAF}> .
<#alice> foaf:knows <#bob> .
<#bob> foaf:knows <#carol>, <#alice> .
"""
        changes = apply_edit(pipeline, source, DOC, final)
        assert_equivalent(query, {DOC: final}, results, changes)

    def test_group_vanishes_when_empty(self):
        docs = {DOC: f'@prefix foaf: <{FOAF}> .\n<#alice> foaf:knows <#bob> .'}
        query = (
            f'SELECT ?p (COUNT(?o) AS ?n) WHERE {{ ?p <{FOAF}knows> ?o }} '
            f'GROUP BY ?p'
        )
        pipeline, source, results = start_live(query, docs)
        assert len(results) == 1
        final = f'@prefix foaf: <{FOAF}> .\n<#alice> foaf:name "Alice" .'
        changes = apply_edit(pipeline, source, DOC, final)
        assert maintained(results, changes).total() == 0
        assert_equivalent(query, {DOC: final}, results, changes)

    def test_order_limit_admits_new_top(self):
        query = (
            f'SELECT ?name ?age WHERE {{ ?p <{FOAF}name> ?name ; '
            f'<{FOAF}age> ?age }} ORDER BY ?age LIMIT 2'
        )
        pipeline, source, results = start_live(query, {DOC: PEOPLE})
        assert len(results) == 2  # Bob(25), Alice(30)
        # Carol drops to 20: she enters the page, Alice falls out.
        final = f"""
@prefix foaf: <{FOAF}> .
<#alice> foaf:name "Alice" ; foaf:age 30 ; foaf:knows <#bob> .
<#bob> foaf:name "Bob" ; foaf:age 25 .
<#carol> foaf:name "Carol" ; foaf:age 20 .
"""
        changes = apply_edit(pipeline, source, DOC, final)
        assert_equivalent(query, {DOC: final}, results, changes)

    def test_distinct_holds_until_last_support_gone(self):
        docs = {
            DOC: f"""
@prefix foaf: <{FOAF}> .
<#alice> foaf:nick "ace" .
<#bob> foaf:nick "ace" .
"""
        }
        query = f'SELECT DISTINCT ?nick WHERE {{ ?p <{FOAF}nick> ?nick }}'
        pipeline, source, results = start_live(query, docs)
        assert len(results) == 1
        # One support retracted: DISTINCT row must survive...
        one = f'@prefix foaf: <{FOAF}> .\n<#alice> foaf:nick "ace" .'
        first = apply_edit(pipeline, source, DOC, one)
        assert maintained(results, first).total() == 1
        # ...until the last support goes.
        none = f'@prefix foaf: <{FOAF}> .\n<#alice> foaf:name "Alice" .'
        second = apply_edit(pipeline, source, DOC, none)
        assert maintained(results, first, second).total() == 0
        assert_equivalent(query, {DOC: none}, results, first, second)

    def test_union_sides_independent(self):
        query = (
            f'SELECT ?v WHERE {{ {{ ?p <{FOAF}name> ?v }} UNION '
            f'{{ ?p <{FOAF}nick> ?v }} }}'
        )
        docs = {
            DOC: f"""
@prefix foaf: <{FOAF}> .
<#alice> foaf:name "Alice" ; foaf:nick "ace" .
"""
        }
        pipeline, source, results = start_live(query, docs)
        assert len(results) == 2
        final = f'@prefix foaf: <{FOAF}> .\n<#alice> foaf:nick "ace" .'
        changes = apply_edit(pipeline, source, DOC, final)
        assert_equivalent(query, {DOC: final}, results, changes)

    def test_multi_document_edit_sequence(self):
        doc_a, doc_b = EX + "a", EX + "b"
        docs = {
            doc_a: f'@prefix foaf: <{FOAF}> .\n<{EX}x> foaf:knows <{EX}y> .',
            doc_b: f'@prefix foaf: <{FOAF}> .\n<{EX}y> foaf:name "Y" .',
        }
        query = (
            f'SELECT ?name WHERE {{ ?p <{FOAF}knows> ?o . '
            f'?o <{FOAF}name> ?name }}'
        )
        pipeline, source, results = start_live(query, dict(docs))
        edits = [
            (doc_b, f'@prefix foaf: <{FOAF}> .\n<{EX}y> foaf:name "Y2" .'),
            (doc_a, f'@prefix foaf: <{FOAF}> .\n<{EX}x> foaf:name "X" .'),
            (doc_a, f'@prefix foaf: <{FOAF}> .\n<{EX}x> foaf:knows <{EX}y> .'),
        ]
        batches = []
        for url, text in edits:
            batches.append(apply_edit(pipeline, source, url, text))
            docs[url] = text
        assert_equivalent(query, docs, results, *batches)


# ---------------------------------------------------------------------------
# LiveQuery over a simulated pod
# ---------------------------------------------------------------------------


@pytest.fixture()
def live_universe():
    """A private universe per test: live tests mutate pod documents."""
    return build_universe(SolidBenchConfig(scale=0.01, seed=7))


def name_query(pod) -> str:
    return (
        f"SELECT ?name WHERE {{ <{pod.webid}> "
        f"<{FOAF}name> ?name }}"
    )


async def patch_document(universe, url: str, update: str) -> None:
    from urllib.parse import urlsplit

    parts = urlsplit(url)
    app = universe.internet.app_for(f"{parts.scheme}://{parts.netloc}")
    headers = {"content-type": "application/sparql-update"}
    headers.update(app.login_owner(parts.path))
    response = await universe.internet.dispatch(
        Request("PATCH", url, headers, update.encode("utf-8"))
    )
    assert response.status < 400, f"PATCH failed: {response.status}"


def rename_update(webid: str, old: str, new: str) -> str:
    return (
        f'DELETE DATA {{ <{webid}> <{FOAF}name> "{old}" }} ;\n'
        f'INSERT DATA {{ <{webid}> <{FOAF}name> "{new}" }}'
    )


class TestLiveQuery:
    def test_start_publishes_initial_results_as_events(self, live_universe):
        async def run():
            pod = next(iter(live_universe.pods.values()))
            engine = live_universe.fast_engine()
            live = LiveQuery(engine, name_query(pod), seeds=[pod.profile_url])
            initial = await live.start()
            assert len(initial) == 1
            assert [e.delta for e in live.events] == [1]
            assert live.events[0].url == ""  # initial results are causeless
            return live

        asyncio.run(run())

    def test_refresh_emits_signed_events(self, live_universe):
        async def run():
            pod = next(iter(live_universe.pods.values()))
            old = pod.owner_name
            engine = live_universe.fast_engine()
            live = LiveQuery(engine, name_query(pod), seeds=[pod.profile_url])
            await live.start()
            await patch_document(
                live_universe,
                pod.profile_url,
                rename_update(pod.webid, old, "Renamed"),
            )
            events = await live.refresh(pod.profile_url)
            assert sorted(e.delta for e in events) == [-1, 1]
            assert all(e.url == pod.profile_url for e in events)
            current = live.current_results()
            assert sum(current.values()) == 1
            (binding,) = current
            assert "Renamed" in repr(binding)

        asyncio.run(run())

    def test_unchanged_refresh_is_silent(self, live_universe):
        async def run():
            pod = next(iter(live_universe.pods.values()))
            engine = live_universe.fast_engine()
            live = LiveQuery(engine, name_query(pod), seeds=[pod.profile_url])
            await live.start()
            assert await live.refresh(pod.profile_url) == []
            assert live.failed_refreshes == {}

        asyncio.run(run())

    def test_gone_document_retracts_all_its_results(self, live_universe):
        async def run():
            pod = next(iter(live_universe.pods.values()))
            engine = live_universe.fast_engine()
            live = LiveQuery(engine, name_query(pod), seeds=[pod.profile_url])
            await live.start()
            del pod._documents[pod.profile_path]  # the document is gone
            events = await live.refresh(pod.profile_url)
            assert [e.delta for e in events] == [-1]
            assert sum(live.current_results().values()) == 0
            assert live.failed_refreshes == {}  # 404 is not a failure

        asyncio.run(run())

    def test_failed_refresh_leaves_results_untouched(self, live_universe):
        async def run():
            pod = next(iter(live_universe.pods.values()))
            engine = live_universe.fast_engine()
            live = LiveQuery(engine, name_query(pod), seeds=[pod.profile_url])
            await live.start()
            before = live.current_results()
            missing = pod.base_url + "never/existed"
            assert await live.refresh(missing) == []
            # An unknown URL 404s, which means "gone" — use a bad scheme
            # to exercise a genuine failure instead.
            bad = "ftp://nowhere.invalid/doc"
            assert await live.refresh(bad) == []
            assert "ftp://nowhere.invalid/doc" in live.failed_refreshes
            assert live.current_results() == before

        asyncio.run(run())

    def test_notify_drain_round_trip(self, live_universe):
        async def run():
            pod = next(iter(live_universe.pods.values()))
            old = pod.owner_name
            engine = live_universe.fast_engine()
            live = LiveQuery(engine, name_query(pod), seeds=[pod.profile_url])
            await live.start()
            live.notify(pod.profile_url + "#frag")  # fragment stripped
            assert live.pending == [pod.profile_url]
            await patch_document(
                live_universe,
                pod.profile_url,
                rename_update(pod.webid, old, "Drained"),
            )
            events = await live.drain()
            assert sorted(e.delta for e in events) == [-1, 1]
            assert live.pending == []

        asyncio.run(run())

    def test_subscribe_replays_history_and_streams(self, live_universe):
        async def run():
            pod = next(iter(live_universe.pods.values()))
            old = pod.owner_name
            engine = live_universe.fast_engine()
            live = LiveQuery(engine, name_query(pod), seeds=[pod.profile_url])
            await live.start()
            queue = live.subscribe()
            replayed = queue.get_nowait()
            assert replayed.delta == 1
            await patch_document(
                live_universe,
                pod.profile_url,
                rename_update(pod.webid, old, "Streamed"),
            )
            await live.refresh(pod.profile_url)
            deltas = sorted([queue.get_nowait().delta, queue.get_nowait().delta])
            assert deltas == [-1, 1]
            live.close()
            assert queue.get_nowait() is None  # end-of-stream

        asyncio.run(run())

    def test_listener_sees_batches_then_none(self, live_universe):
        async def run():
            pod = next(iter(live_universe.pods.values()))
            old = pod.owner_name
            engine = live_universe.fast_engine()
            live = LiveQuery(engine, name_query(pod), seeds=[pod.profile_url])
            seen: list = []
            await live.start()
            live.add_listener(seen.append)
            await patch_document(
                live_universe,
                pod.profile_url,
                rename_update(pod.webid, old, "Listened"),
            )
            await live.refresh(pod.profile_url)
            live.close()
            assert len(seen) == 2
            assert isinstance(seen[0], list) and len(seen[0]) == 2
            assert seen[1] is None

        asyncio.run(run())

    def test_construct_rejected(self, live_universe):
        engine = live_universe.fast_engine()
        with pytest.raises(ValueError, match="CONSTRUCT"):
            LiveQuery(
                engine,
                f"CONSTRUCT {{ ?s <{FOAF}name> ?n }} "
                f"WHERE {{ ?s <{FOAF}name> ?n }}",
            )

    def test_lifecycle_guards(self, live_universe):
        async def run():
            pod = next(iter(live_universe.pods.values()))
            engine = live_universe.fast_engine()
            live = LiveQuery(engine, name_query(pod), seeds=[pod.profile_url])
            with pytest.raises(RuntimeError, match="before start"):
                await live.refresh(pod.profile_url)
            await live.start()
            with pytest.raises(RuntimeError, match="twice"):
                await live.start()
            live.close()
            assert await live.refresh(pod.profile_url) == []  # no-op closed
            live.close()  # idempotent

        asyncio.run(run())

    def test_events_are_replay_consistent(self, live_universe):
        """The event history replays to exactly the fresh result set."""

        async def run():
            pod = next(iter(live_universe.pods.values()))
            old = pod.owner_name
            engine = live_universe.fast_engine()
            live = LiveQuery(engine, name_query(pod), seeds=[pod.profile_url])
            await live.start()
            for new in ("A", "B", "C"):
                await patch_document(
                    live_universe,
                    pod.profile_url,
                    rename_update(pod.webid, old, new),
                )
                await live.refresh(pod.profile_url)
                old = new
            fresh = await live_universe.fast_engine().query(
                name_query(pod), seeds=[pod.profile_url]
            ).gather()
            assert Counter(live.current_results()) == Counter(fresh.bindings)
            # seq numbers are the total order of the event stream
            assert [e.seq for e in live.events] == list(range(len(live.events)))

        asyncio.run(run())
