"""Tests for the unified engine.query() API and the EngineConfig split."""

import asyncio

import pytest

from repro.ltqp import (
    EngineConfig,
    LinkTraversalEngine,
    NetworkPolicy,
    QueryExecution,
    TraversalPolicy,
)
from repro.net import HttpClient, NoLatency
from repro.net.resilience import BreakerPolicy, RetryPolicy

from .test_engine import SNB, build_two_pod_world


def engine_for(internet, **kwargs):
    return LinkTraversalEngine(HttpClient(internet, latency=NoLatency()), **kwargs)


@pytest.fixture()
def world():
    return build_two_pod_world()


class TestQueryExecution:
    def query_text(self, pod1):
        return (
            SNB + f"SELECT ?c WHERE {{ ?m snvoc:hasCreator <{pod1.webid}> ; snvoc:content ?c }}"
        )

    def test_run_sync_collects_everything(self, world):
        internet, pod1, _ = world
        execution = engine_for(internet).query(self.query_text(pod1)).run_sync()
        assert isinstance(execution, QueryExecution)
        assert len(execution) == 2
        assert execution.done and not execution.cancelled

    def test_async_iteration_streams(self, world):
        internet, pod1, _ = world
        execution = engine_for(internet).query(self.query_text(pod1))

        async def collect():
            return [binding async for binding in execution]

        bindings = asyncio.run(collect())
        assert len(bindings) == 2
        assert execution.bindings == bindings

    def test_gather_returns_handle(self, world):
        internet, pod1, _ = world
        execution = engine_for(internet).query(self.query_text(pod1))

        async def drive():
            handle = await execution.gather()
            assert handle is execution

        asyncio.run(drive())
        assert execution.done

    def test_cancel_stops_early_and_finalizes_stats(self, world):
        internet, pod1, _ = world
        execution = engine_for(internet).query(self.query_text(pod1))

        async def take_one():
            async for _ in execution:
                break
            await execution.cancel()

        asyncio.run(take_one())
        assert execution.cancelled and execution.done
        assert len(execution) >= 1
        assert execution.stats.finished_at > 0  # stats were finalized

    def test_stats_are_live_during_streaming(self, world):
        internet, pod1, _ = world
        execution = engine_for(internet).query(self.query_text(pod1))
        assert execution.stats.result_count == 0

        async def watch():
            async for _ in execution:
                assert execution.stats.result_count >= 1
                break
            await execution.cancel()

        asyncio.run(watch())

    def test_seeds_resolved_on_handle(self, world):
        internet, pod1, _ = world
        execution = engine_for(internet).query(self.query_text(pod1)).run_sync()
        assert execution.seeds == [pod1.webid]

    def test_matches_deprecated_entry_points(self, world):
        internet, pod1, _ = world
        query = self.query_text(pod1)
        via_query = engine_for(internet).query(query).run_sync()
        with pytest.warns(DeprecationWarning):
            via_execute_sync = engine_for(internet).execute_sync(query)
        assert sorted(map(repr, via_query.bindings)) == sorted(
            map(repr, via_execute_sync.bindings)
        )


class TestDeprecatedWrappers:
    def test_execute_sync_warns(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)
        with pytest.warns(DeprecationWarning, match="execute_sync"):
            result = engine.execute_sync(SNB + "SELECT ?s WHERE { ?s ?p ?o }", seeds=[pod1.webid])
        assert result.stats.documents_fetched > 0

    def test_stream_warns_at_call_time(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)
        with pytest.warns(DeprecationWarning, match="stream"):
            iterator = engine.stream(SNB + "SELECT ?s WHERE { ?s ?p ?o }", seeds=[pod1.webid])

        async def drain():
            return [b async for b in iterator]

        assert asyncio.run(drain())

    def test_execute_warns(self, world):
        internet, pod1, _ = world
        engine = engine_for(internet)

        async def drive():
            with pytest.warns(DeprecationWarning, match="execute"):
                return await engine.execute(
                    SNB + "SELECT ?s WHERE { ?s ?p ?o }", seeds=[pod1.webid]
                )

        result = asyncio.run(drive())
        assert len(result) > 0


class TestEngineConfigSplit:
    def test_defaults_nest_both_policies(self):
        config = EngineConfig()
        assert isinstance(config.traversal, TraversalPolicy)
        assert isinstance(config.network, NetworkPolicy)

    def test_flat_kwargs_route_to_policies(self):
        config = EngineConfig(max_depth=2, worker_count=3, request_timeout=1.5)
        assert config.traversal.max_depth == 2
        assert config.traversal.worker_count == 3
        assert config.network.request_timeout == 1.5

    def test_flat_attribute_reads_and_writes(self):
        config = EngineConfig()
        config.max_documents = 9
        assert config.traversal.max_documents == 9
        assert config.max_documents == 9
        config.request_timeout = 0.5
        assert config.network.request_timeout == 0.5

    def test_nested_construction(self):
        config = EngineConfig(
            traversal=TraversalPolicy(max_depth=1),
            network=NetworkPolicy(retry=RetryPolicy(max_attempts=2)),
        )
        assert config.max_depth == 1
        assert config.network.retry.max_attempts == 2

    def test_unknown_flat_kwarg_raises(self):
        with pytest.raises(TypeError, match="unknown knob"):
            EngineConfig(warp_speed=9)

    def test_unknown_attribute_raises(self):
        config = EngineConfig()
        with pytest.raises(AttributeError):
            config.warp_speed = 9
        with pytest.raises(AttributeError):
            _ = config.warp_speed

    def test_equality_compares_policies(self):
        assert EngineConfig(max_depth=2) == EngineConfig(max_depth=2)
        assert EngineConfig(max_depth=2) != EngineConfig(max_depth=3)

    def test_engine_installs_network_policy_on_client(self, world):
        internet, _, _ = world
        client = HttpClient(internet, latency=NoLatency())
        config = EngineConfig(network=NetworkPolicy(request_timeout=2.5))
        engine = LinkTraversalEngine(client, config=config)
        assert client.policy.request_timeout == 2.5
        assert engine.config.network is client.policy

    def test_explicit_client_policy_wins(self, world):
        internet, _, _ = world
        own = NetworkPolicy(request_timeout=9.9)
        client = HttpClient(internet, latency=NoLatency(), policy=own)
        LinkTraversalEngine(client, config=EngineConfig(request_timeout=1.0))
        assert client.policy is own

    def test_breaker_knobs_reachable_flat(self):
        config = EngineConfig(
            network=NetworkPolicy(breaker=BreakerPolicy(failure_threshold=7))
        )
        assert config.network.breaker.failure_threshold == 7
