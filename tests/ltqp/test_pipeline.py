"""Unit tests for the incremental pipelined operators."""

import pytest

from repro.ltqp.pipeline import NotStreamable, compile_pipeline
from repro.rdf import Dataset, Literal, NamedNode, Quad, Variable
from repro.sparql import parse_query
from repro.sparql.bindings import Binding

EX = "PREFIX ex: <http://x/>\n"


def n(suffix):
    return NamedNode(f"http://x/{suffix}")


def q(subject, predicate, object, graph="https://h/doc"):
    return Quad(subject, predicate, object, NamedNode(graph))


def feed(pipeline, dataset, quads):
    """Add quads then advance the pipeline, returning new results."""
    for quad in quads:
        dataset.add(quad)
    return pipeline.advance(dataset)


def make(text):
    query = parse_query(EX + text)
    return compile_pipeline(query.where), Dataset()


class TestScans:
    def test_single_pattern_streams(self):
        pipeline, ds = make("SELECT ?o WHERE { ex:a ex:p ?o }")
        first = feed(pipeline, ds, [q(n("a"), n("p"), Literal("1"))])
        assert len(first) == 1
        second = feed(pipeline, ds, [q(n("a"), n("p"), Literal("2"))])
        assert len(second) == 1
        assert not pipeline.advance(ds)  # no new data, no new results

    def test_duplicate_triples_across_documents_deduplicated(self):
        pipeline, ds = make("SELECT ?o WHERE { ex:a ex:p ?o }")
        first = feed(pipeline, ds, [q(n("a"), n("p"), Literal("1"), "https://h/d1")])
        second = feed(pipeline, ds, [q(n("a"), n("p"), Literal("1"), "https://h/d2")])
        assert len(first) == 1 and len(second) == 0

    def test_same_variable_twice_in_pattern(self):
        pipeline, ds = make("SELECT ?x WHERE { ?x ex:p ?x }")
        results = feed(pipeline, ds, [q(n("a"), n("p"), n("a")), q(n("a"), n("p"), n("b"))])
        assert [b[Variable("x")] for b in results] == [n("a")]


class TestIncrementalJoin:
    def test_late_arriving_right_side_joins_earlier_left(self):
        pipeline, ds = make("SELECT ?m ?c WHERE { ?m ex:creator ex:me . ?m ex:content ?c }")
        assert feed(pipeline, ds, [q(n("m1"), n("creator"), n("me"))]) == []
        results = feed(pipeline, ds, [q(n("m1"), n("content"), Literal("hello"))])
        assert len(results) == 1
        assert results[0][Variable("c")] == Literal("hello")

    def test_late_arriving_left_side_joins_earlier_right(self):
        pipeline, ds = make("SELECT ?m ?c WHERE { ?m ex:creator ex:me . ?m ex:content ?c }")
        feed(pipeline, ds, [q(n("m1"), n("content"), Literal("hello"))])
        results = feed(pipeline, ds, [q(n("m1"), n("creator"), n("me"))])
        assert len(results) == 1

    def test_simultaneous_arrival_produces_exactly_once(self):
        pipeline, ds = make("SELECT ?m ?c WHERE { ?m ex:creator ex:me . ?m ex:content ?c }")
        results = feed(
            pipeline,
            ds,
            [q(n("m1"), n("creator"), n("me")), q(n("m1"), n("content"), Literal("x"))],
        )
        assert len(results) == 1

    def test_three_way_join(self):
        pipeline, ds = make(
            "SELECT ?f ?t WHERE { ?m ex:creator ex:me . ?f ex:contains ?m . ?f ex:title ?t }"
        )
        feed(pipeline, ds, [q(n("m1"), n("creator"), n("me"))])
        feed(pipeline, ds, [q(n("f1"), n("contains"), n("m1"))])
        results = feed(pipeline, ds, [q(n("f1"), n("title"), Literal("Wall"))])
        assert len(results) == 1

    def test_cross_product_when_no_shared_variables(self):
        pipeline, ds = make("SELECT ?a ?b WHERE { ex:x ex:p ?a . ex:y ex:q ?b }")
        feed(pipeline, ds, [q(n("x"), n("p"), Literal("1"))])
        results = feed(pipeline, ds, [q(n("y"), n("q"), Literal("2"))])
        assert len(results) == 1


class TestStreamingOperators:
    def test_union_merges_both_branches(self):
        pipeline, ds = make("SELECT ?x WHERE { { ?x ex:p ?y } UNION { ?x ex:q ?y } }")
        results = feed(pipeline, ds, [q(n("a"), n("p"), Literal("1")), q(n("b"), n("q"), Literal("2"))])
        assert {b[Variable("x")] for b in results} == {n("a"), n("b")}

    def test_filter(self):
        pipeline, ds = make("SELECT ?v WHERE { ?s ex:p ?v FILTER(?v > 5) }")
        results = feed(
            pipeline,
            ds,
            [
                q(n("a"), n("p"), Literal("3", datatype="http://www.w3.org/2001/XMLSchema#integer")),
                q(n("b"), n("p"), Literal("7", datatype="http://www.w3.org/2001/XMLSchema#integer")),
            ],
        )
        assert len(results) == 1

    def test_bind_extends(self):
        pipeline, ds = make("SELECT ?u WHERE { ?s ex:p ?v BIND(UCASE(?v) AS ?u) }")
        results = feed(pipeline, ds, [q(n("a"), n("p"), Literal("hi"))])
        assert results[0][Variable("u")] == Literal("HI")

    def test_distinct_across_deltas(self):
        pipeline, ds = make("SELECT DISTINCT ?v WHERE { ?s ex:p ?v }")
        first = feed(pipeline, ds, [q(n("a"), n("p"), Literal("x"))])
        second = feed(pipeline, ds, [q(n("b"), n("p"), Literal("x"))])
        assert len(first) == 1 and len(second) == 0

    def test_limit_marks_pipeline_complete(self):
        pipeline, ds = make("SELECT ?v WHERE { ?s ex:p ?v } LIMIT 2")
        feed(pipeline, ds, [q(n("a"), n("p"), Literal("1"))])
        assert not pipeline.complete
        results = feed(pipeline, ds, [q(n("b"), n("p"), Literal("2")), q(n("c"), n("p"), Literal("3"))])
        assert len(results) == 1  # capped at remaining budget
        assert pipeline.complete
        assert feed(pipeline, ds, [q(n("d"), n("p"), Literal("4"))]) == []

    def test_values_joined_with_scan(self):
        pipeline, ds = make("SELECT ?v WHERE { VALUES ?s { ex:a } ?s ex:p ?v }")
        results = feed(pipeline, ds, [q(n("a"), n("p"), Literal("1")), q(n("b"), n("p"), Literal("2"))])
        assert len(results) == 1


class TestPathStreaming:
    def test_alternative_path_streams(self):
        pipeline, ds = make("SELECT ?m WHERE { ex:me (ex:hasPost|ex:hasComment) ?m }")
        first = feed(pipeline, ds, [q(n("me"), n("hasPost"), n("p1"))])
        second = feed(pipeline, ds, [q(n("me"), n("hasComment"), n("c1"))])
        assert len(first) == 1 and len(second) == 1

    def test_path_emits_each_pair_once(self):
        pipeline, ds = make("SELECT ?m WHERE { ex:me ex:likes/ex:hasPost ?m }")
        feed(pipeline, ds, [q(n("me"), n("likes"), n("g"))])
        results = feed(pipeline, ds, [q(n("g"), n("hasPost"), n("p1"))])
        assert len(results) == 1
        # Irrelevant growth does not re-emit.
        assert feed(pipeline, ds, [q(n("z"), n("likes"), n("zz"))]) == []

    def test_transitive_path_grows_with_data(self):
        pipeline, ds = make("SELECT ?x WHERE { ex:a ex:knows+ ?x }")
        first = feed(pipeline, ds, [q(n("a"), n("knows"), n("b"))])
        assert {b[Variable("x")] for b in first} == {n("b")}
        second = feed(pipeline, ds, [q(n("b"), n("knows"), n("c"))])
        assert {b[Variable("x")] for b in second} == {n("c")}


class TestNonMonotonicCompiles:
    """Formerly-NotStreamable queries now compile into blocking plans."""

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT ?a WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c } }",
            "SELECT ?a WHERE { ?a ex:p ?b MINUS { ?a ex:q ?b } }",
            "SELECT ?a WHERE { ?a ex:p ?b } ORDER BY ?a",
            "SELECT (COUNT(*) AS ?n) WHERE { ?a ex:p ?b }",
            "SELECT ?a WHERE { ?a ex:p ?b } LIMIT 1 OFFSET 1",
        ],
    )
    def test_non_monotonic_queries_compile_blocking(self, text):
        query = parse_query(EX + text)
        pipeline = compile_pipeline(query.where)
        assert pipeline.blocking_nodes  # holds output until finalize

    def test_optional_emits_bare_left_at_finalize(self):
        pipeline, ds = make("SELECT ?a ?c WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c } }")
        assert feed(pipeline, ds, [q(n("a"), n("p"), n("b"))]) == []
        results = pipeline.finalize(ds)
        assert len(results) == 1
        assert Variable("c") not in results[0]

    def test_optional_streams_matched_merges(self):
        pipeline, ds = make("SELECT ?a ?c WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c } }")
        feed(pipeline, ds, [q(n("a"), n("p"), n("b"))])
        streamed = feed(pipeline, ds, [q(n("b"), n("q"), Literal("1"))])
        assert len(streamed) == 1
        assert streamed[0][Variable("c")] == Literal("1")
        assert pipeline.finalize(ds) == []  # left matched: no bare emission

    def test_minus_excludes_incrementally(self):
        pipeline, ds = make("SELECT ?a ?b WHERE { ?a ex:p ?b MINUS { ?a ex:q ?b } }")
        feed(pipeline, ds, [q(n("a"), n("p"), Literal("1")), q(n("c"), n("p"), Literal("2"))])
        feed(pipeline, ds, [q(n("a"), n("q"), Literal("1"))])
        results = pipeline.finalize(ds)
        assert [b[Variable("a")] for b in results] == [n("c")]

    def test_order_by_sorts_at_finalize(self):
        pipeline, ds = make("SELECT ?b WHERE { ?a ex:p ?b } ORDER BY ?b")
        assert feed(pipeline, ds, [q(n("a"), n("p"), Literal("2"))]) == []
        feed(pipeline, ds, [q(n("c"), n("p"), Literal("1"))])
        results = pipeline.finalize(ds)
        assert [b[Variable("b")].value for b in results] == ["1", "2"]

    def test_order_limit_keeps_top_k(self):
        pipeline, ds = make("SELECT ?b WHERE { ?a ex:p ?b } ORDER BY ?b LIMIT 2")
        for index in [5, 3, 9, 1, 7]:
            feed(pipeline, ds, [q(n(f"s{index}"), n("p"), Literal(str(index)))])
        results = pipeline.finalize(ds)
        assert [b[Variable("b")].value for b in results] == ["1", "3"]

    def test_offset_drops_prefix_at_finalize(self):
        pipeline, ds = make("SELECT ?b WHERE { ?a ex:p ?b } ORDER BY ?b LIMIT 1 OFFSET 1")
        feed(pipeline, ds, [q(n("a"), n("p"), Literal("1")), q(n("c"), n("p"), Literal("2"))])
        results = pipeline.finalize(ds)
        assert [b[Variable("b")].value for b in results] == ["2"]

    def test_count_star_aggregates_deltas(self):
        pipeline, ds = make("SELECT (COUNT(*) AS ?n) WHERE { ?a ex:p ?b }")
        feed(pipeline, ds, [q(n("a"), n("p"), Literal("1"))])
        feed(pipeline, ds, [q(n("c"), n("p"), Literal("2"))])
        results = pipeline.finalize(ds)
        assert [b[Variable("n")].value for b in results] == ["2"]

    def test_count_star_empty_traversal_yields_zero(self):
        pipeline, ds = make("SELECT (COUNT(*) AS ?n) WHERE { ?a ex:p ?b }")
        results = pipeline.finalize(ds)
        assert [b[Variable("n")].value for b in results] == ["0"]

    def test_unknown_operator_still_guarded(self):
        class Alien:
            pass

        with pytest.raises(NotStreamable):
            from repro.ltqp.pipeline import _compile

            _compile(Alien(), None, lambda p: p, None)

    def test_graph_scoped_scan(self):
        query = parse_query(EX + "SELECT ?o WHERE { GRAPH <https://h/d1> { ex:a ex:p ?o } }")
        pipeline = compile_pipeline(query.where)
        ds = Dataset()
        in_graph = feed(pipeline, ds, [q(n("a"), n("p"), Literal("1"), "https://h/d1")])
        other_graph = feed(pipeline, ds, [q(n("a"), n("p"), Literal("2"), "https://h/d2")])
        assert len(in_graph) == 1 and len(other_graph) == 0
