"""Tests for predicate-routed delta dispatch (DeltaRouter / DeltaBatch)."""

from repro.ltqp.pipeline import DeltaBatch, DeltaRouter, ScanNode, compile_pipeline
from repro.rdf import Dataset, Graph, Literal, NamedNode, Quad, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.algebra import BGP
from repro.sparql.eval import SnapshotEvaluator

EX = "http://example.org/"
G = NamedNode(EX + "doc")


def quad(s: str, p: str, o: str) -> Quad:
    return Quad(NamedNode(EX + s), NamedNode(EX + p), NamedNode(EX + o), G)


class TestDeltaRouter:
    def test_registered_predicates_are_collected(self):
        router = DeltaRouter()
        router.register(NamedNode(EX + "knows"))
        router.register(NamedNode(EX + "likes"))
        router.register(NamedNode(EX + "knows"))  # duplicate registration is fine
        assert router.predicates == {NamedNode(EX + "knows"), NamedNode(EX + "likes")}
        assert router.wildcard_listeners == 0

    def test_wildcard_registration(self):
        router = DeltaRouter()
        router.register(None)
        router.register(None)
        assert router.wildcard_listeners == 2
        assert router.predicates == frozenset()

    def test_batch_restricts_buckets_to_registered_predicates(self):
        router = DeltaRouter()
        knows = NamedNode(EX + "knows")
        router.register(knows)
        quads = [quad("a", "knows", "b"), quad("a", "noise", "c"), quad("b", "knows", "c")]
        batch = router.batch(quads)
        assert list(batch.for_predicate(knows)) == [quads[0], quads[2]]
        # Unregistered predicates were never bucketed.
        assert list(batch.for_predicate(NamedNode(EX + "noise"))) == []

    def test_compile_pipeline_registers_scan_predicates(self):
        x, y = Variable("x"), Variable("y")
        bgp = BGP((
            TriplePattern(x, NamedNode(EX + "knows"), y),
            TriplePattern(y, NamedNode(EX + "likes"), x),
        ))
        pipeline = compile_pipeline(bgp)
        assert pipeline.router.predicates == {
            NamedNode(EX + "knows"),
            NamedNode(EX + "likes"),
        }

    def test_variable_predicate_scan_registers_wildcard(self):
        x, p, y = Variable("x"), Variable("p"), Variable("y")
        pipeline = compile_pipeline(BGP((TriplePattern(x, p, y),)))
        assert pipeline.router.wildcard_listeners == 1


class TestDeltaBatch:
    def test_behaves_like_a_sequence_of_quads(self):
        quads = [quad("a", "p", "b"), quad("b", "p", "c")]
        batch = DeltaBatch(quads)
        assert len(batch) == 2
        assert list(batch) == quads
        assert bool(batch)
        assert not DeltaBatch([])

    def test_buckets_are_lazy(self):
        quads = [quad("a", "p", "b")]
        batch = DeltaBatch(quads, frozenset({NamedNode(EX + "p")}))
        assert batch._buckets is None  # not built until someone routes
        batch.for_predicate(NamedNode(EX + "p"))
        assert batch._buckets is not None

    def test_unrestricted_batch_buckets_everything(self):
        quads = [quad("a", "p", "b"), quad("a", "q", "c")]
        batch = DeltaBatch(quads)  # no routed set → bucket all predicates
        assert list(batch.for_predicate(NamedNode(EX + "q"))) == [quads[1]]


class TestScanNodeDispatch:
    def test_plain_sequence_delta_still_matches(self):
        """Scans must keep accepting unbatched quad lists (direct node use)."""
        x = Variable("x")
        scan = ScanNode(TriplePattern(x, NamedNode(EX + "p"), NamedNode(EX + "b")))
        produced = scan.process([quad("a", "p", "b"), quad("a", "q", "b")], Dataset())
        assert [b[x] for b in produced] == [NamedNode(EX + "a")]

    def test_repeated_variable_requires_equal_terms(self):
        x = Variable("x")
        scan = ScanNode(TriplePattern(x, NamedNode(EX + "p"), x))
        produced = scan.process(
            [quad("a", "p", "a"), quad("a", "p", "b")], Dataset()
        )
        assert [b[x] for b in produced] == [NamedNode(EX + "a")]

    def test_routed_advance_matches_snapshot_evaluation(self):
        x, y = Variable("x"), Variable("y")
        bgp = BGP((
            TriplePattern(x, NamedNode(EX + "knows"), y),
            TriplePattern(y, NamedNode(EX + "age"), Literal("42")),
        ))
        data = [
            quad("a", "knows", "b"),
            Quad(NamedNode(EX + "b"), NamedNode(EX + "age"), Literal("42"), G),
            quad("a", "noise", "b"),
            quad("c", "knows", "b"),
        ]
        pipeline = compile_pipeline(bgp)
        dataset = Dataset()
        produced = []
        for q in data:  # one-quad deltas exercise routing on every advance
            dataset.add(q)
            produced.extend(pipeline.advance(dataset))
        expected = SnapshotEvaluator(Graph([q.triple for q in data])).evaluate(bgp)
        assert sorted(map(repr, produced)) == sorted(map(repr, expected))
