"""Unit tests for link extraction strategies."""

import pytest

from repro.ltqp.extractors import (
    AllIriExtractor,
    LdpContainerExtractor,
    MatchIriExtractor,
    QueryContext,
    StorageExtractor,
    TypeIndexExtractor,
    build_query_context,
    default_extractors,
)
from repro.rdf import LDP, Literal, NamedNode, PIM, RDF, SNVOC, SOLID, Triple
from repro.rdf.triples import TriplePattern
from repro.rdf import Variable
from repro.sparql import parse_query

DOC = "https://h/pods/1/doc"


def n(value):
    return NamedNode(value)


def extract(extractor, triples, context=QueryContext()):
    return set(extractor.extract(DOC, triples, context))


class TestAllIris:
    def test_extracts_every_http_iri(self):
        triples = [
            Triple(n("https://h/a"), n("https://h/p"), n("https://h/b")),
            Triple(n("https://h/a"), n("https://h/p"), Literal("not a link")),
            Triple(n("urn:uuid:xyz"), n("https://h/p"), n("https://h/c")),
        ]
        result = extract(AllIriExtractor(), triples)
        assert result == {"https://h/a", "https://h/p", "https://h/b", "https://h/c"}


class TestMatchIris:
    def test_only_matching_triples_contribute(self):
        context = QueryContext(
            patterns=(TriplePattern(Variable("m"), SNVOC.hasCreator, Variable("c")),)
        )
        matching = Triple(n("https://h/msg"), SNVOC.hasCreator, n("https://h/person"))
        other = Triple(n("https://h/x"), n("https://h/unrelated"), n("https://h/y"))
        result = extract(MatchIriExtractor(), [matching, other], context)
        assert "https://h/msg" in result and "https://h/person" in result
        assert "https://h/x" not in result

    def test_no_patterns_means_no_links(self):
        triples = [Triple(n("https://h/a"), n("https://h/p"), n("https://h/b"))]
        assert extract(MatchIriExtractor(), triples, QueryContext()) == set()


class TestLdpExtractor:
    def test_follows_contains(self):
        triples = [
            Triple(n(DOC), LDP.contains, n("https://h/pods/1/posts/")),
            Triple(n(DOC), RDF.type, LDP.Container),
        ]
        assert extract(LdpContainerExtractor(), triples) == {"https://h/pods/1/posts/"}


class TestStorageExtractor:
    def test_follows_pim_storage(self):
        triples = [Triple(n("https://h/card#me"), PIM.storage, n("https://h/pods/1/"))]
        assert extract(StorageExtractor(), triples) == {"https://h/pods/1/"}


class TestTypeIndexExtractor:
    def make_index(self):
        reg_post = n("https://h/idx#post")
        reg_comment = n("https://h/idx#comment")
        return [
            Triple(reg_post, SOLID.forClass, SNVOC.Post),
            Triple(reg_post, SOLID.instanceContainer, n("https://h/pods/1/posts/")),
            Triple(reg_comment, SOLID.forClass, SNVOC.Comment),
            Triple(reg_comment, SOLID.instance, n("https://h/pods/1/comments")),
        ]

    def test_follows_type_index_link(self):
        triples = [Triple(n("https://h/card#me"), SOLID.publicTypeIndex, n("https://h/idx"))]
        assert extract(TypeIndexExtractor(), triples) == {"https://h/idx"}

    def test_unconstrained_query_follows_all_registrations(self):
        result = extract(TypeIndexExtractor(), self.make_index(), QueryContext())
        assert result == {"https://h/pods/1/posts/", "https://h/pods/1/comments"}

    def test_class_constrained_query_filters_registrations(self):
        context = QueryContext(classes=frozenset({SNVOC.Post}))
        result = extract(TypeIndexExtractor(), self.make_index(), context)
        assert result == {"https://h/pods/1/posts/"}

    def test_registration_without_forclass_always_followed(self):
        triples = [Triple(n("https://h/idx#r"), SOLID.instance, n("https://h/pods/1/data"))]
        context = QueryContext(classes=frozenset({SNVOC.Post}))
        assert extract(TypeIndexExtractor(), triples, context) == {"https://h/pods/1/data"}


class TestBuildQueryContext:
    def test_collects_predicates_classes_and_iris(self):
        query = parse_query(
            f"""PREFIX snvoc: <{SNVOC.base}>
            PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
            SELECT ?c WHERE {{
              ?m snvoc:hasCreator <https://h/card#me> ;
                 rdf:type snvoc:Post ;
                 snvoc:content ?c .
            }}"""
        )
        context = build_query_context(query.where)
        assert SNVOC.hasCreator in context.predicates
        assert SNVOC.Post in context.classes
        assert "https://h/card#me" in context.entity_iris
        assert SNVOC.Post.value not in context.entity_iris  # classes are not seeds

    def test_path_predicates_included(self):
        query = parse_query(
            f"""PREFIX snvoc: <{SNVOC.base}>
            SELECT ?m WHERE {{ <https://h/card#me> snvoc:likes/(snvoc:hasPost|snvoc:hasComment) ?m }}"""
        )
        context = build_query_context(query.where)
        assert SNVOC.hasPost in context.predicates
        assert SNVOC.hasComment in context.predicates

    def test_patterns_from_union_and_optional(self):
        query = parse_query(
            """SELECT ?x WHERE {
                 { ?x <http://x/a> ?y } UNION { ?x <http://x/b> ?y }
                 OPTIONAL { ?y <http://x/c> ?z }
               }"""
        )
        context = build_query_context(query.where)
        assert {p.value for p in context.predicates} == {"http://x/a", "http://x/b", "http://x/c"}


class TestDefaults:
    def test_default_stack_is_solid_aware(self):
        names = {extractor.name for extractor in default_extractors()}
        assert names == {"match", "ldp-container", "storage", "type-index"}
