"""Tests for the Web-based demonstration interface (paper Fig. 3, §4.1)."""

import json
import urllib.parse
import urllib.request

import pytest

from repro.webui import DemoServer, render_page


@pytest.fixture(scope="module")
def demo(tiny_universe):
    server = DemoServer(universe=tiny_universe)
    server.start()
    yield server
    server.stop()


class TestRenderPage:
    def test_page_lists_37_preset_queries(self, tiny_universe):
        page = render_page(tiny_universe)
        assert page.count("<option") == 37
        assert "[SolidBench] Discover 1.5" in page
        assert "Execute query" in page

    def test_page_embeds_query_texts(self, tiny_universe):
        page = render_page(tiny_universe)
        assert "snvoc:hasCreator" in page
        assert "PRESETS" in page


class TestDemoServer:
    def test_serves_index_page(self, demo):
        with urllib.request.urlopen(demo.url, timeout=10) as response:
            body = response.read().decode("utf-8")
            assert response.status == 200
            assert "Link Traversal" in body

    def test_execute_endpoint_streams_ndjson(self, demo):
        from repro.solidbench import discover_query

        query = discover_query(demo.universe, 1, 5)
        url = demo.url + "execute?query=" + urllib.parse.quote(query.text)
        with urllib.request.urlopen(url, timeout=60) as response:
            assert response.status == 200
            assert "ndjson" in response.headers["content-type"]
            lines = [l for l in response.read().decode("utf-8").splitlines() if l]
        assert lines
        for line in lines:
            assert json.loads(line)

    def test_execute_rejects_invalid_sparql(self, demo):
        url = demo.url + "execute?query=" + urllib.parse.quote("NOT SPARQL AT ALL {")
        try:
            urllib.request.urlopen(url, timeout=10)
        except urllib.error.HTTPError as error:
            assert error.code == 400
            payload = json.loads(error.read().decode("utf-8"))
            assert "error" in payload
        else:
            raise AssertionError("expected HTTP 400")

    def test_unknown_path_404(self, demo):
        try:
            urllib.request.urlopen(demo.url + "nope", timeout=10)
        except urllib.error.HTTPError as error:
            assert error.code == 404
        else:
            raise AssertionError("expected HTTP 404")


class TestServiceMode:
    """The demo server backed by a long-lived QueryService."""

    @pytest.fixture(scope="class")
    def service_demo(self, tiny_universe):
        from repro.net import NoLatency
        from repro.service import QueryService, ServiceHost, SharedResources

        resources = SharedResources.for_universe(tiny_universe, latency=NoLatency())
        host = ServiceHost(QueryService(resources)).start()
        server = DemoServer(universe=tiny_universe, service=host)
        server.start()
        yield server
        server.stop()
        host.stop()

    def test_execute_goes_through_service(self, service_demo):
        from repro.solidbench import discover_query

        query = discover_query(service_demo.universe, 1, 5)
        url = service_demo.url + "execute?query=" + urllib.parse.quote(query.text)
        with urllib.request.urlopen(url, timeout=60) as response:
            first = [l for l in response.read().decode("utf-8").splitlines() if l]
        with urllib.request.urlopen(url, timeout=60) as response:
            second = [l for l in response.read().decode("utf-8").splitlines() if l]
        assert sorted(first) == sorted(second)
        stats = service_demo.service_host.statistics()
        assert stats["completed"] == 2
        # The warm run was answered from the parsed-document store.
        assert stats["document_store"]["hits"] > 0

    def test_sparql_endpoint_over_real_http(self, service_demo):
        from repro.solidbench import discover_query

        query = discover_query(service_demo.universe, 1, 5)
        url = (
            service_demo.url
            + "sparql?query="
            + urllib.parse.quote(query.text)
            + "&seeds="
            + urllib.parse.quote(",".join(query.seeds))
        )
        with urllib.request.urlopen(url, timeout=60) as response:
            assert response.status == 200
            assert "sparql-results+json" in response.headers["content-type"]
            document = json.loads(response.read().decode("utf-8"))
        assert document["results"]["bindings"]

    def test_sparql_post_over_real_http(self, service_demo):
        from repro.solidbench import discover_query

        query = discover_query(service_demo.universe, 1, 5)
        request = urllib.request.Request(
            service_demo.url + "sparql",
            data=query.text.encode("utf-8"),
            headers={"content-type": "application/sparql-query"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            document = json.loads(response.read().decode("utf-8"))
        assert document["results"]["bindings"]

    def test_status_json_reports_service(self, service_demo):
        with urllib.request.urlopen(service_demo.url + "status.json", timeout=10) as r:
            document = json.loads(r.read().decode("utf-8"))
        assert document["schema"] == 2
        assert document["mode"] == "single"
        assert document["workers"] == {
            "total": 1,
            "ready": 1,
            "restarts": 0,
            "routing": None,
        }
        assert "document_store" in document["service"]
        assert "storage" in document["service"]
        assert document["shards"] == {}
        assert isinstance(document["queries"], list)

    def test_one_shot_mode_status_json(self, demo):
        with urllib.request.urlopen(demo.url + "status.json", timeout=10) as r:
            document = json.loads(r.read().decode("utf-8"))
        assert document["schema"] == 2
        assert document["mode"] == "one-shot"
        assert document["service"] is None
