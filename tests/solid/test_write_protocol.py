"""Tests for the writable Solid protocol: PATCH (SPARQL Update) and PUT."""

import asyncio

import pytest

from repro.net import HttpClient, Internet, NoLatency
from repro.rdf import NamedNode, RDF, SNVOC, Triple, parse_turtle
from repro.solid import AccessControlList, AclRule, AccessMode, IdentityProvider, Pod, SolidServer

ORIGIN = "https://host.example"
BASE = ORIGIN + "/pods/0001/"
SNB = f"PREFIX snvoc: <{SNVOC.base}>\n"


def run(coro):
    return asyncio.run(coro)


@pytest.fixture()
def setup():
    idp = IdentityProvider(ORIGIN)
    server = SolidServer(ORIGIN, idp=idp)
    pod = Pod(BASE, owner_name="Zulma")
    message = NamedNode(BASE + "posts/2010-10-12#m")
    pod.add_document(
        "posts/2010-10-12",
        [
            Triple(message, RDF.type, SNVOC.Post),
            Triple(message, SNVOC.content, NamedNode(BASE + "x")),
        ],
    )
    pod.build_profile()
    server.mount(pod)
    internet = Internet()
    internet.register(ORIGIN, server)
    client = HttpClient(internet, latency=NoLatency())
    return idp, pod, client


async def _patch(client, url, body, headers):
    from repro.net.message import Request

    # HttpClient.fetch has no body parameter; drive the internet directly
    # for writes (the engine itself only reads).
    request = Request("PATCH", url, headers=headers, body=body.encode("utf-8"))
    return await client.internet.dispatch(request)


async def _put(client, url, body, headers):
    from repro.net.message import Request

    request = Request("PUT", url, headers=headers, body=body.encode("utf-8"))
    return await client.internet.dispatch(request)


class TestPatch:
    def test_owner_can_insert(self, setup):
        idp, pod, client = setup
        session = idp.login(pod.webid)
        url = BASE + "posts/2010-10-12"
        body = SNB + f"INSERT DATA {{ <{url}#m> snvoc:id 42 }}"
        response = run(_patch(client, url, body, {
            "content-type": "application/sparql-update", **session.headers}))
        assert response.status == 200
        assert b"added 1" in response.body
        document = pod.document("posts/2010-10-12")
        assert any(t.predicate == SNVOC.id for t in document.triples)

    def test_anonymous_insert_denied(self, setup):
        _, pod, client = setup
        url = BASE + "posts/2010-10-12"
        body = SNB + f"INSERT DATA {{ <{url}#m> snvoc:id 42 }}"
        response = run(_patch(client, url, body, {"content-type": "application/sparql-update"}))
        assert response.status == 401

    def test_append_rule_allows_insert_but_not_delete(self, setup):
        idp, pod, client = setup
        friend = "https://host.example/pods/0002/profile/card#me"
        # Grant append on the posts subtree to the friend.
        server_acl = AccessControlList(pod.webid)
        server_acl.grant("posts/", AclRule(modes=frozenset({AccessMode.APPEND}), agents=frozenset({friend})))
        # Re-mount with the custom ACL.
        new_server = SolidServer(ORIGIN, idp=idp)
        new_server.mount(pod, acl=server_acl)
        internet = Internet()
        internet.register(ORIGIN, new_server)
        client = HttpClient(internet, latency=NoLatency())
        session = idp.login(friend)
        url = BASE + "posts/2010-10-12"
        headers = {"content-type": "application/sparql-update", **session.headers}

        insert = SNB + f"INSERT DATA {{ <{url}#m> snvoc:id 7 }}"
        assert run(_patch(client, url, insert, headers)).status == 200

        delete = SNB + f"DELETE DATA {{ <{url}#m> snvoc:id 7 }}"
        assert run(_patch(client, url, delete, headers)).status == 403

    def test_wrong_content_type_415(self, setup):
        idp, pod, client = setup
        session = idp.login(pod.webid)
        response = run(_patch(client, BASE + "posts/2010-10-12", "x", {
            "content-type": "text/plain", **session.headers}))
        assert response.status == 415

    def test_malformed_update_400(self, setup):
        idp, pod, client = setup
        session = idp.login(pod.webid)
        response = run(_patch(client, BASE + "posts/2010-10-12", "NOT AN UPDATE {", {
            "content-type": "application/sparql-update", **session.headers}))
        assert response.status == 400

    def test_patch_missing_document_404(self, setup):
        idp, pod, client = setup
        session = idp.login(pod.webid)
        response = run(_patch(client, BASE + "nope", SNB + "INSERT DATA { <x:a> snvoc:id 1 }", {
            "content-type": "application/sparql-update", **session.headers}))
        assert response.status == 404


class TestPut:
    def test_owner_creates_document(self, setup):
        idp, pod, client = setup
        session = idp.login(pod.webid)
        url = BASE + "notes/today"
        body = f"<{url}#n1> a <{SNVOC.Post.value}> ."
        response = run(_put(client, url, body, {"content-type": "text/turtle", **session.headers}))
        assert response.status == 201
        assert pod.has_document("notes/today")
        # The new containment shows up in the generated container listing.
        assert "notes/" in pod.container_paths()

    def test_put_replaces_existing(self, setup):
        idp, pod, client = setup
        session = idp.login(pod.webid)
        url = BASE + "posts/2010-10-12"
        response = run(_put(client, url, f"<{url}#only> a <{SNVOC.Post.value}> .", {
            "content-type": "text/turtle", **session.headers}))
        assert response.status == 204
        assert len(pod.document("posts/2010-10-12").triples) == 1

    def test_anonymous_put_denied(self, setup):
        _, pod, client = setup
        response = run(_put(client, BASE + "notes/x", "<x:a> <x:b> <x:c> .", {
            "content-type": "text/turtle"}))
        assert response.status == 401

    def test_put_container_conflict(self, setup):
        idp, pod, client = setup
        session = idp.login(pod.webid)
        response = run(_put(client, BASE + "posts/", "", {
            "content-type": "text/turtle", **session.headers}))
        assert response.status == 409

    def test_put_bad_turtle_400(self, setup):
        idp, pod, client = setup
        session = idp.login(pod.webid)
        response = run(_put(client, BASE + "notes/x", "@@not turtle", {
            "content-type": "text/turtle", **session.headers}))
        assert response.status == 400


class TestLiveRequery:
    def test_traversal_sees_updates(self, setup):
        """The paper's 'live data' point: no indexes to refresh — a repeat
        traversal immediately reflects pod changes."""
        from repro.ltqp import LinkTraversalEngine

        idp, pod, client = setup
        session = idp.login(pod.webid)
        engine = LinkTraversalEngine(client)
        query = SNB + "SELECT ?id WHERE { ?m snvoc:id ?id }"

        before = engine.execute_sync(query, seeds=[pod.webid])
        url = BASE + "posts/2010-10-12"
        body = SNB + f"INSERT DATA {{ <{url}#m> snvoc:id 99 }}"
        run(_patch(client, url, body, {
            "content-type": "application/sparql-update", **session.headers}))
        after = LinkTraversalEngine(client).execute_sync(query, seeds=[pod.webid])
        assert len(after) == len(before) + 1


class TestWriteValidators:
    """Regression: every accepted write must change the document's HTTP
    validator — even a write that restores byte-identical content.

    The parsed-document store and the live-refresh path both key
    invalidation on the validator: a reused ETag would serve stale
    triples forever, and an edit-then-revert would go unnoticed.
    """

    def test_consecutive_patches_yield_distinct_etags(self, setup):
        idp, pod, client = setup
        session = idp.login(pod.webid)
        url = BASE + "posts/2010-10-12"
        patch_headers = {"content-type": "application/sparql-update", **session.headers}

        etag0 = run(client.fetch(url)).header("etag")
        assert etag0

        insert = SNB + f"INSERT DATA {{ <{url}#m> snvoc:id 42 }}"
        assert run(_patch(client, url, insert, patch_headers)).status == 200
        etag1 = run(client.fetch(url)).header("etag")

        revert = SNB + f"DELETE DATA {{ <{url}#m> snvoc:id 42 }}"
        assert run(_patch(client, url, revert, patch_headers)).status == 200
        etag2 = run(client.fetch(url)).header("etag")

        assert len({etag0, etag1, etag2}) == 3
        # The revert restored byte-identical content: only the write
        # version distinguishes etag2 from etag0 — that distinction is
        # what lets a standing query notice edit-then-revert sequences.
        server = client.internet.app_for(ORIGIN)
        assert server.document_version(url) == 2

    def test_conditional_get_tracks_the_validator(self, setup):
        idp, pod, client = setup
        session = idp.login(pod.webid)
        url = BASE + "posts/2010-10-12"
        patch_headers = {"content-type": "application/sparql-update", **session.headers}

        etag = run(client.fetch(url)).header("etag")
        assert run(client.fetch(url, headers={"if-none-match": etag})).status == 304

        insert = SNB + f"INSERT DATA {{ <{url}#m> snvoc:id 7 }}"
        assert run(_patch(client, url, insert, patch_headers)).status == 200
        # The stale validator no longer matches: full 200 with a new ETag.
        response = run(client.fetch(url, headers={"if-none-match": etag}))
        assert response.status == 200
        assert response.header("etag") != etag
