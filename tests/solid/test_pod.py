"""Unit tests for the pod data model."""

import pytest

from repro.rdf import LDP, Literal, NamedNode, PIM, RDF, SOLID, Triple, parse_turtle
from repro.solid import Pod, PodDocument

BASE = "https://host.example/pods/0001/"


def n(value):
    return NamedNode(value)


@pytest.fixture()
def pod():
    p = Pod(BASE, owner_name="Zulma")
    p.add_document("posts/2010-10-12", [Triple(n(BASE + "posts/2010-10-12#m1"), RDF.type, n("http://x/Post"))])
    p.add_document("posts/2010-11-01", [Triple(n(BASE + "posts/2010-11-01#m2"), RDF.type, n("http://x/Post"))])
    p.add_document("file", [Triple(n(BASE + "file#x"), RDF.type, n("http://x/Thing"))])
    return p


class TestPodBasics:
    def test_base_url_gets_trailing_slash(self):
        assert Pod("https://h/pods/1").base_url.endswith("/")

    def test_webid_shape(self, pod):
        assert pod.webid == BASE + "profile/card#me"

    def test_document_paths_validated(self):
        with pytest.raises(ValueError):
            PodDocument(path="/absolute")
        with pytest.raises(ValueError):
            PodDocument(path="container/")

    def test_document_lookup(self, pod):
        assert pod.has_document("file")
        assert pod.document("missing") is None
        assert pod.document_url("file") == BASE + "file"

    def test_triple_count(self, pod):
        assert pod.triple_count() == 3


class TestContainers:
    def test_container_paths_derived_from_documents(self, pod):
        assert pod.container_paths() == {"", "posts/"}

    def test_is_container(self, pod):
        assert pod.is_container("")
        assert pod.is_container("posts/")
        assert not pod.is_container("file/")

    def test_container_members_root(self, pod):
        documents, children = pod.container_members("")
        assert documents == ["file"]
        assert children == ["posts/"]

    def test_container_members_nested(self, pod):
        documents, children = pod.container_members("posts/")
        assert documents == ["posts/2010-10-12", "posts/2010-11-01"]
        assert children == []

    def test_container_triples_follow_listing_1(self, pod):
        # Paper Listing 1: container typed Container/BasicContainer/Resource
        # with ldp:contains links to members.
        triples = pod.container_triples("")
        container = n(BASE)
        assert Triple(container, RDF.type, LDP.BasicContainer) in triples
        contains = {t.object for t in triples if t.predicate == LDP.contains}
        assert contains == {n(BASE + "file"), n(BASE + "posts/")}


class TestStandardDocuments:
    def test_profile_follows_listing_2(self, pod):
        pod.build_profile()
        profile = pod.document("profile/card")
        me = n(pod.webid)
        assert Triple(me, PIM.storage, n(BASE)) in profile.triples
        assert Triple(me, SOLID.publicTypeIndex, n(pod.type_index_url)) in profile.triples
        names = [t.object for t in profile.triples if t.predicate.value.endswith("name")]
        assert Literal("Zulma") in names

    def test_type_index_follows_listing_3(self, pod):
        pod.build_type_index(
            [
                (n("http://x/Post"), "posts/", True),
                (n("http://x/Note"), "file", False),
            ]
        )
        index = pod.document(pod.type_index_path)
        registrations = [t for t in index.triples if t.predicate == SOLID.forClass]
        assert {t.object for t in registrations} == {n("http://x/Post"), n("http://x/Note")}
        container_targets = [t.object for t in index.triples if t.predicate == SOLID.instanceContainer]
        instance_targets = [t.object for t in index.triples if t.predicate == SOLID.instance]
        assert container_targets == [n(BASE + "posts/")]
        assert instance_targets == [n(BASE + "file")]


class TestSerialization:
    def test_serialize_document_roundtrips(self, pod):
        text = pod.serialize_document("file")
        assert set(parse_turtle(text, base_iri=BASE)) == set(pod.document("file").triples)

    def test_serialize_container(self, pod):
        text = pod.serialize_document("posts/")
        triples = parse_turtle(text, base_iri=BASE + "posts/")
        assert any(t.predicate == LDP.contains for t in triples)

    def test_serialize_missing_raises(self, pod):
        with pytest.raises(KeyError):
            pod.serialize_document("missing")
