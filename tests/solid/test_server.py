"""Unit tests for the Solid pod server."""

import asyncio

import pytest

from repro.net import HttpClient, Internet, NoLatency
from repro.rdf import LDP, Literal, NamedNode, RDF, Triple, parse_turtle
from repro.solid import AccessControlList, IdentityProvider, Pod, SolidServer

ORIGIN = "https://host.example"
BASE = ORIGIN + "/pods/0001/"


def run(coro):
    return asyncio.run(coro)


@pytest.fixture()
def setup():
    idp = IdentityProvider(ORIGIN)
    server = SolidServer(ORIGIN, idp=idp)
    pod = Pod(BASE, owner_name="Zulma")
    pod.add_document(
        "posts/2010-10-12",
        [Triple(NamedNode(BASE + "posts/2010-10-12#m"), RDF.type, NamedNode("http://x/Post"))],
    )
    pod.add_document(
        "private/diary",
        [Triple(NamedNode(BASE + "private/diary#e"), RDF.type, NamedNode("http://x/Entry"))],
        public=False,
    )
    pod.build_profile()
    server.mount(pod)
    internet = Internet()
    internet.register(ORIGIN, server)
    client = HttpClient(internet, latency=NoLatency())
    return idp, server, pod, client


class TestDocumentServing:
    def test_get_document_as_turtle(self, setup):
        _, _, pod, client = setup
        response = run(client.fetch(BASE + "posts/2010-10-12"))
        assert response.status == 200
        assert response.content_type == "text/turtle"
        triples = parse_turtle(response.text, base_iri=BASE + "posts/2010-10-12")
        assert len(triples) == 1

    def test_head_has_no_body(self, setup):
        _, _, _, client = setup
        response = run(client.fetch(BASE + "profile/card", method="HEAD"))
        assert response.status == 200 and response.body == b""

    def test_content_negotiation_ntriples(self, setup):
        _, _, _, client = setup
        response = run(
            client.fetch(BASE + "posts/2010-10-12", headers={"accept": "application/n-triples"})
        )
        assert response.content_type == "application/n-triples"
        assert response.text.strip().endswith(".")

    def test_missing_document_404(self, setup):
        _, _, _, client = setup
        assert run(client.fetch(BASE + "nope")).status == 404

    def test_unmounted_prefix_404(self, setup):
        _, _, _, client = setup
        assert run(client.fetch(ORIGIN + "/pods/9999/profile/card")).status == 404

    def test_post_method_not_allowed(self, setup):
        _, _, _, client = setup
        assert run(client.fetch(BASE + "profile/card", method="POST")).status == 405

    def test_container_redirect_without_slash(self, setup):
        _, _, _, client = setup
        response = run(client.fetch(BASE + "posts"))
        assert response.status == 301
        assert response.header("location") == BASE + "posts/"


class TestContainerServing:
    def test_container_listing_with_link_header(self, setup):
        _, _, _, client = setup
        response = run(client.fetch(BASE + "posts/"))
        assert response.status == 200
        assert "BasicContainer" in response.header("link")
        triples = parse_turtle(response.text, base_iri=BASE + "posts/")
        members = {t.object for t in triples if t.predicate == LDP.contains}
        assert NamedNode(BASE + "posts/2010-10-12") in members

    def test_root_container(self, setup):
        _, _, _, client = setup
        response = run(client.fetch(BASE))
        triples = parse_turtle(response.text, base_iri=BASE)
        members = {t.object.value for t in triples if t.predicate == LDP.contains}
        assert BASE + "posts/" in members and BASE + "profile/" in members


class TestAccessControl:
    def test_private_document_needs_auth(self, setup):
        idp, _, pod, client = setup
        assert run(client.fetch(BASE + "private/diary")).status == 401
        session = idp.login(pod.webid)
        response = run(client.fetch(BASE + "private/diary", headers=session.headers))
        assert response.status == 200

    def test_wrong_user_forbidden(self, setup):
        idp, _, _, client = setup
        other = idp.login("https://host.example/pods/0002/profile/card#me")
        assert run(client.fetch(BASE + "private/diary", headers=other.headers)).status == 403

    def test_explicitly_shared_document(self):
        idp = IdentityProvider(ORIGIN)
        server = SolidServer(ORIGIN, idp=idp)
        pod = Pod(BASE)
        pod.add_document("shared/data", [], public=False)
        acl = AccessControlList(pod.webid)
        friend = "https://host.example/pods/0002/profile/card#me"
        acl.restrict("shared/data", agents=[friend])
        server.mount(pod, acl=acl)
        internet = Internet()
        internet.register(ORIGIN, server)
        client = HttpClient(internet, latency=NoLatency())
        session = idp.login(friend)
        assert run(client.fetch(BASE + "shared/data", headers=session.headers)).status == 200

    def test_acl_document_owner_only(self, setup):
        idp, _, pod, client = setup
        assert run(client.fetch(BASE + "private/diary.acl")).status == 401
        session = idp.login(pod.webid)
        response = run(client.fetch(BASE + "private/diary.acl", headers=session.headers))
        assert response.status == 200
        assert "Authorization" in response.text

    def test_invalid_token_is_anonymous(self, setup):
        _, _, _, client = setup
        response = run(
            client.fetch(BASE + "private/diary", headers={"authorization": "Bearer bogus"})
        )
        assert response.status == 401


class TestMounting:
    def test_mount_rejects_foreign_origin(self):
        server = SolidServer(ORIGIN)
        with pytest.raises(ValueError):
            server.mount(Pod("https://elsewhere.example/pods/1/"))

    def test_multiple_pods_longest_prefix(self, setup):
        idp, server, _, client = setup
        second = Pod(ORIGIN + "/pods/0002/", owner_name="Ana")
        second.build_profile()
        server.mount(second)
        response = run(client.fetch(ORIGIN + "/pods/0002/profile/card"))
        assert response.status == 200
        assert "Ana" in response.text
