"""Unit tests for WAC access control."""

from repro.rdf import ACL as ACL_NS, FOAF
from repro.solid.acl import AccessControlList, AccessMode, AclRule, acl_document_triples

OWNER = "https://h/pods/1/profile/card#me"
FRIEND = "https://h/pods/2/profile/card#me"
STRANGER = "https://h/pods/3/profile/card#me"


class TestAclRule:
    def test_public_rule_allows_anonymous(self):
        rule = AclRule(public=True)
        assert rule.allows(None, AccessMode.READ)

    def test_mode_must_match(self):
        rule = AclRule(public=True, modes=frozenset({AccessMode.READ}))
        assert not rule.allows(None, AccessMode.WRITE)

    def test_agent_list(self):
        rule = AclRule(agents=frozenset({FRIEND}))
        assert rule.allows(FRIEND, AccessMode.READ)
        assert not rule.allows(STRANGER, AccessMode.READ)
        assert not rule.allows(None, AccessMode.READ)

    def test_authenticated_agents(self):
        rule = AclRule(authenticated=True)
        assert rule.allows(STRANGER, AccessMode.READ)
        assert not rule.allows(None, AccessMode.READ)


class TestAccessControlList:
    def test_default_is_public(self):
        acl = AccessControlList(OWNER)
        assert acl.allows("anything/here", None)

    def test_owner_always_allowed(self):
        acl = AccessControlList(OWNER)
        acl.restrict("private/secret")
        assert acl.allows("private/secret", OWNER)

    def test_restrict_excludes_public(self):
        acl = AccessControlList(OWNER)
        acl.restrict("private/secret", agents=[FRIEND])
        assert not acl.allows("private/secret", None)
        assert not acl.allows("private/secret", STRANGER)
        assert acl.allows("private/secret", FRIEND)

    def test_container_inheritance(self):
        acl = AccessControlList(OWNER)
        acl.restrict("private/")
        assert not acl.allows("private/deep/file", STRANGER)
        assert acl.allows("public-file", STRANGER)

    def test_most_specific_rule_wins(self):
        acl = AccessControlList(OWNER)
        acl.restrict("dir/")
        acl.grant("dir/open-file", AclRule(public=True))
        assert acl.allows("dir/open-file", None)
        assert not acl.allows("dir/other", None)

    def test_has_rule(self):
        acl = AccessControlList(OWNER)
        acl.restrict("x")
        assert acl.has_rule("x") and not acl.has_rule("y")


class TestAclDocument:
    def test_renders_wac_vocabulary(self):
        rules = [AclRule(public=True), AclRule(agents=frozenset({FRIEND}), authenticated=True)]
        triples = acl_document_triples("https://h/r", "https://h/r.acl", rules)
        predicates = {t.predicate for t in triples}
        assert ACL_NS.accessTo in predicates
        assert ACL_NS.mode in predicates
        objects = {t.object for t in triples}
        assert FOAF.Agent in objects  # public
        assert ACL_NS.AuthenticatedAgent in objects
