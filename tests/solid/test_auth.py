"""Unit tests for the simulated identity provider."""

from repro.solid import IdentityProvider

WEBID = "https://h/pods/1/profile/card#me"


class TestIdentityProvider:
    def test_login_and_resolve(self):
        idp = IdentityProvider("https://h")
        session = idp.login(WEBID)
        assert idp.resolve(session.token) == WEBID

    def test_tokens_are_deterministic_per_webid(self):
        idp = IdentityProvider("https://h")
        assert idp.login(WEBID).token == idp.login(WEBID).token

    def test_distinct_webids_distinct_tokens(self):
        idp = IdentityProvider("https://h")
        assert idp.login(WEBID).token != idp.login("https://h/other#me").token

    def test_unknown_token_resolves_to_none(self):
        idp = IdentityProvider("https://h")
        assert idp.resolve("bogus") is None
        assert idp.resolve(None) is None
        assert idp.resolve("") is None

    def test_revocation(self):
        idp = IdentityProvider("https://h")
        session = idp.login(WEBID)
        idp.revoke(session.token)
        assert idp.resolve(session.token) is None

    def test_authorization_header_parsing(self):
        idp = IdentityProvider("https://h")
        session = idp.login(WEBID)
        assert idp.resolve_authorization_header(f"Bearer {session.token}") == WEBID
        assert idp.resolve_authorization_header(f"Basic {session.token}") is None
        assert idp.resolve_authorization_header("") is None

    def test_session_headers(self):
        idp = IdentityProvider("https://h")
        session = idp.login(WEBID)
        assert session.headers["authorization"].startswith("Bearer ")

    def test_cross_instance_tokens_rejected(self):
        first = IdentityProvider("https://h", secret=b"one")
        second = IdentityProvider("https://h", secret=b"two")
        token = first.login(WEBID).token
        assert second.resolve(token) is None
