"""Unit tests for the storage-backend protocol and its implementations."""

import pytest

from repro.storage import (
    Keyspace,
    MemoryBackend,
    SqliteBackend,
    StorageBackend,
    open_backend,
)


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        built = MemoryBackend()
    else:
        built = SqliteBackend(str(tmp_path / "store.sqlite"))
    yield built
    built.close()


class TestProtocolBehavior:
    """Every backend satisfies the same observable contract."""

    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, StorageBackend)

    def test_get_put_delete(self, backend):
        assert backend.get("ns", "k") is None
        backend.put("ns", "k", b"value")
        assert backend.get("ns", "k") == b"value"
        backend.put("ns", "k", b"replaced")
        assert backend.get("ns", "k") == b"replaced"
        backend.delete("ns", "k")
        assert backend.get("ns", "k") is None
        backend.delete("ns", "k")  # absent delete is a no-op

    def test_namespaces_are_isolated(self, backend):
        backend.put("documents", "k", b"doc")
        backend.put("http", "k", b"response")
        assert backend.get("documents", "k") == b"doc"
        assert backend.get("http", "k") == b"response"
        backend.clear("documents")
        assert backend.get("documents", "k") is None
        assert backend.get("http", "k") == b"response"

    def test_scan_and_count(self, backend):
        for index in range(5):
            backend.put("ns", f"k{index}", bytes([index]))
        assert backend.count("ns") == 5
        assert dict(backend.scan("ns")) == {f"k{i}": bytes([i]) for i in range(5)}
        assert backend.count("empty") == 0
        assert list(backend.scan("empty")) == []

    def test_statistics_are_json_friendly(self, backend):
        import json

        backend.put("ns", "k", b"v")
        stats = backend.statistics()
        assert stats["kind"] == backend.kind
        assert stats["persistent"] == backend.persistent
        assert stats["namespaces"] == {"ns": 1}
        json.dumps(stats)  # must serialize for /service/status


class TestSqlitePersistence:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        backend = SqliteBackend(path)
        backend.put("ns", "k", b"durable")
        backend.close()  # close flushes

        reopened = SqliteBackend(path)
        try:
            assert reopened.get("ns", "k") == b"durable"
            assert reopened.count("ns") == 1
        finally:
            reopened.close()

    def test_flush_commits_without_close(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        backend = SqliteBackend(path)
        backend.put("ns", "k", b"v")
        assert backend.pending_writes == 1
        backend.flush()
        assert backend.pending_writes == 0
        assert backend.flushes >= 1
        backend.close()

    def test_auto_flush_bounds_the_open_transaction(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "store.sqlite"), auto_flush=4)
        for index in range(10):
            backend.put("ns", f"k{index}", b"v")
        # 10 writes with a batch of 4: two automatic commits happened and
        # at most 3 writes can still be pending.
        assert backend.flushes >= 2
        assert backend.pending_writes < 4
        backend.close()

    def test_creates_parent_directory(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "deep" / "nested" / "s.sqlite"))
        backend.put("ns", "k", b"v")
        backend.close()

    def test_integrity_and_file_size(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "store.sqlite"))
        backend.put("ns", "k", b"x" * 1024)
        backend.flush()
        assert backend.integrity_ok()
        assert backend.file_bytes() > 0
        backend.close()

    def test_close_is_idempotent(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "store.sqlite"))
        backend.close()
        backend.close()


class TestKeyspace:
    def test_binds_one_namespace(self):
        backend = MemoryBackend()
        documents = Keyspace(backend, "documents")
        http = Keyspace(backend, "http")
        documents.put("k", b"doc")
        assert documents.get("k") == b"doc"
        assert http.get("k") is None
        assert documents.count() == 1
        assert dict(documents.scan()) == {"k": b"doc"}
        documents.delete("k")
        assert documents.count() == 0
        assert documents.persistent is False


class TestOpenBackend:
    def test_default_is_memory(self):
        assert open_backend().kind == "memory"
        assert open_backend("memory").kind == "memory"

    def test_path_infers_sqlite(self, tmp_path):
        backend = open_backend(path=str(tmp_path / "s.sqlite"))
        assert backend.kind == "sqlite" and backend.persistent
        backend.close()

    def test_explicit_sqlite(self, tmp_path):
        backend = open_backend("sqlite", path=str(tmp_path / "s.sqlite"))
        assert backend.kind == "sqlite"
        backend.close()

    def test_memory_rejects_path(self, tmp_path):
        with pytest.raises(ValueError):
            open_backend("memory", path=str(tmp_path / "s.sqlite"))

    def test_sqlite_requires_path(self):
        with pytest.raises(ValueError):
            open_backend("sqlite")

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            open_backend("lmdb")
