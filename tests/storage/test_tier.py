"""Unit tests for the shared LRU/spill discipline (StorageTier)."""

import pytest

from repro.storage import MemoryBackend, SqliteBackend, StorageTier


def make_tier(max_entries=3, backend=None):
    return StorageTier(
        "ns",
        max_entries,
        encode=lambda entry: entry.encode("utf-8"),
        decode=lambda raw: raw.decode("utf-8"),
        backend=backend,
    )


class TestMemoryOnly:
    """No backend (or a non-persistent one): the LRU is authoritative."""

    def test_true_lru_eviction_order(self):
        tier = make_tier(max_entries=2)
        tier.put("a", "A")
        tier.put("b", "B")
        assert tier.get("a") == "A"  # refreshes a's recency
        tier.put("c", "C")  # evicts b, the least recently used
        assert tier.get("b") is None
        assert tier.get("a") == "A"
        assert tier.get("c") == "C"
        assert tier.evictions == 1

    def test_eviction_is_deletion_without_persistence(self):
        tier = make_tier(max_entries=1)
        tier.put("a", "A")
        tier.put("b", "B")
        assert len(tier) == 1
        assert "a" not in tier

    def test_memory_backend_is_not_written_through(self):
        backend = MemoryBackend()
        tier = make_tier(backend=backend)
        tier.put("a", "A")
        # A memory backend under a memory LRU would just double-store:
        # the tier must bypass it entirely.
        assert not tier.persistent
        assert backend.puts == 0
        assert tier.get("a") == "A"

    def test_items_and_contains(self):
        tier = make_tier()
        tier.put("a", "A")
        tier.put("b", "B")
        assert dict(tier.items()) == {"a": "A", "b": "B"}
        assert "a" in tier and "missing" not in tier


class TestPersistentSpill:
    @pytest.fixture
    def backend(self, tmp_path):
        built = SqliteBackend(str(tmp_path / "tier.sqlite"))
        yield built
        built.close()

    def test_capacity_outgrows_memory(self, backend):
        tier = make_tier(max_entries=2, backend=backend)
        for key in "abcde":
            tier.put(key, key.upper())
        assert tier.memory_entries() == 2
        assert len(tier) == 5  # everything still reachable on disk
        # An evicted entry reads through (decode + promote)...
        reads_before = tier.backend_reads
        assert tier.get("a") == "A"
        assert tier.backend_reads == reads_before + 1
        # ...and the promotion refreshed its recency in the LRU.
        assert tier.get("a") == "A"
        assert tier.backend_reads == reads_before + 1

    def test_delete_removes_both_copies(self, backend):
        tier = make_tier(backend=backend)
        tier.put("a", "A")
        tier.delete("a")
        assert tier.get("a") is None
        assert len(tier) == 0

    def test_items_prefers_live_in_memory_objects(self, backend):
        tier = make_tier(backend=backend)
        tier.put("a", "A")
        # Mutations of live entries are an in-process affair; items()
        # must surface the live object, not a stale decode.
        entries = dict(tier.items())
        assert entries["a"] is tier.get("a")

    def test_peek_does_not_refresh_recency(self, backend):
        tier = make_tier(max_entries=2, backend=backend)
        tier.put("a", "A")
        tier.put("b", "B")
        assert tier.peek("a") == "A"  # no recency refresh
        tier.put("c", "C")  # evicts a (peek did not protect it)
        assert "a" not in list(dict(tier._lru))
        assert tier.get("a") == "A"  # but the durable copy answers

    def test_statistics_shape(self, backend):
        tier = make_tier(max_entries=1, backend=backend)
        tier.put("a", "A")
        tier.put("b", "B")
        stats = tier.statistics()
        assert stats["entries"] == 2
        assert stats["memory_entries"] == 1
        assert stats["max_memory_entries"] == 1
        assert stats["evictions"] == 1
        assert stats["persistent"] is True
        assert stats["backend"] == "sqlite"
        assert stats["backend_writes"] == 2

    def test_clear_empties_backend_namespace_only(self, backend):
        tier = make_tier(backend=backend)
        tier.put("a", "A")
        backend.put("other", "k", b"untouched")
        tier.clear()
        assert len(tier) == 0
        assert backend.get("other", "k") == b"untouched"
