"""Round-trip tests: every RDF term shape through the storage codec.

The persistence tier serializes parsed documents via the term-table wire
codec (:mod:`repro.service.wire`) and HTTP cache entries via a JSON
envelope.  These tests push each through a *real* SQLite reopen — the
exact path a warm restart takes — and assert term-level equality, so an
encoding bug in any surface form (language tags, datatypes, blank
nodes, embedded quotes/newlines) cannot hide behind the in-memory LRU.
"""

import time

import pytest

from repro.net.cache import CacheEntry, HttpCache, decode_cache_entry, encode_cache_entry
from repro.net.message import Response
from repro.rdf.terms import (
    XSD_DATETIME,
    XSD_DOUBLE,
    XSD_INTEGER,
    BlankNode,
    Literal,
    NamedNode,
)
from repro.rdf.triples import Triple
from repro.service.docstore import (
    DocumentStore,
    decode_stored_document,
    encode_stored_document,
)
from repro.storage import SqliteBackend

EX = "https://pod.example/profile/card#"


def iri(suffix):
    return NamedNode(EX + suffix)


TERM_SHAPE_TRIPLES = [
    Triple(iri("me"), iri("name"), Literal("Zulma")),
    Triple(iri("me"), iri("name"), Literal("Çınar Ağaçlı", language="tr")),
    Triple(iri("me"), iri("bio"), Literal("line one\nline \"two\"\ttab\\slash", language="en-GB")),
    Triple(iri("me"), iri("age"), Literal("42", datatype=XSD_INTEGER)),
    Triple(iri("me"), iri("score"), Literal("6.02E23", datatype=XSD_DOUBLE)),
    Triple(iri("me"), iri("born"), Literal("1990-05-04T12:30:00Z", datatype=XSD_DATETIME)),
    Triple(BlankNode("b0"), iri("knows"), BlankNode("b1")),
    Triple(iri("me"), iri("address"), BlankNode("addr")),
    Triple(iri("me"), iri("homepage"), NamedNode("https://example.org/päge?q=a&b=c#frag")),
    Triple(iri("me"), iri("note"), Literal("x" * 5000)),  # long literal
]


class TestDocumentCodec:
    def test_every_term_shape_round_trips(self):
        store = DocumentStore()
        document = store.put("https://pod.example/doc", 'W/"v1"', TERM_SHAPE_TRIPLES)
        decoded = decode_stored_document(encode_stored_document(document))
        assert decoded.url == document.url
        assert decoded.validator == document.validator
        assert decoded.triples == tuple(TERM_SHAPE_TRIPLES)
        assert decoded.links == document.links

    def test_age_survives_the_clock_translation(self):
        store = DocumentStore()
        document = store.put("https://pod.example/doc", "sha1:abc", TERM_SHAPE_TRIPLES)
        decoded = decode_stored_document(encode_stored_document(document))
        # Persisted entries carry wall-clock stamps; the decoded monotonic
        # stored_at must reconstruct (approximately) the same age.
        assert abs(decoded.stored_at - document.stored_at) < 2.0


class TestDocumentStoreRestart:
    URL = "https://pod.example/profile/card"

    def _warm_store(self, path):
        backend = SqliteBackend(path)
        store = DocumentStore(backend=backend)
        store.put(self.URL, 'W/"v1"', TERM_SHAPE_TRIPLES)
        backend.close()

    def test_lookup_hits_across_restart(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        self._warm_store(path)

        backend = SqliteBackend(path)
        try:
            store = DocumentStore(backend=backend)
            assert len(store) == 1
            document = store.lookup(self.URL, 'W/"v1"')
            assert document is not None
            assert store.hits == 1
            assert document.triples == tuple(TERM_SHAPE_TRIPLES)
            assert document.validator == 'W/"v1"'
        finally:
            backend.close()

    def test_validator_keyed_invalidation_after_restart(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        self._warm_store(path)

        backend = SqliteBackend(path)
        try:
            store = DocumentStore(backend=backend)
            # The document changed upstream while we were down: the
            # revalidation machinery now presents a different validator.
            assert store.lookup(self.URL, 'W/"v2"') is None
            assert store.invalidations == 1 and store.misses == 1
            # The stale entry is gone from both tiers — the next lookup
            # is an ordinary cold miss (re-parse path).
            assert self.URL not in store
            assert store.lookup(self.URL, 'W/"v2"') is None
            assert store.invalidations == 1  # no double-count
        finally:
            backend.close()

    def test_validator_digest_form_survives(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        backend = SqliteBackend(path)
        validator = DocumentStore.validator_for(Response(200, {}, b"body-bytes"))
        assert validator.startswith("sha1:")
        store = DocumentStore(backend=backend)
        store.put(self.URL, validator, TERM_SHAPE_TRIPLES[:2])
        backend.close()

        reopened = SqliteBackend(path)
        try:
            assert DocumentStore(backend=reopened).lookup(self.URL, validator) is not None
        finally:
            reopened.close()


class TestCacheEntryCodec:
    def _entry(self, max_age=300.0):
        response = Response(
            200,
            {"content-type": "text/turtle", "etag": '"v1"'},
            "décodage \n\"quoted\"".encode("utf-8"),
        )
        return CacheEntry(
            response=response,
            etag='"v1"',
            stored_at=time.monotonic(),
            max_age=max_age,
            url="https://pod.example/doc",
        )

    def test_round_trip(self):
        entry = self._entry()
        decoded = decode_cache_entry(encode_cache_entry(entry))
        assert decoded.url == entry.url
        assert decoded.etag == entry.etag
        assert decoded.max_age == entry.max_age
        assert decoded.response.status == 200
        assert decoded.response.headers == entry.response.headers
        assert decoded.response.body == entry.response.body

    def test_freshness_window_survives(self):
        fresh = decode_cache_entry(encode_cache_entry(self._entry(max_age=300.0)))
        assert fresh.is_fresh()
        stale = decode_cache_entry(encode_cache_entry(self._entry(max_age=0.0)))
        assert not stale.is_fresh()


class TestHttpCacheRestart:
    def test_lookup_across_restart(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        backend = SqliteBackend(path)
        cache = HttpCache(default_max_age=300, backend=backend)
        cache.store(
            "https://pod.example/doc",
            Response(200, {"etag": '"v1"'}, b"payload"),
        )
        backend.close()

        reopened = SqliteBackend(path)
        try:
            warm = HttpCache(default_max_age=300, backend=reopened)
            assert len(warm) == 1
            entry = warm.lookup("https://pod.example/doc")
            assert entry is not None
            assert entry.response.body == b"payload"
            assert entry.etag == '"v1"'
            # Stored moments ago: still inside its freshness window, so a
            # warm restart serves it without touching the network at all.
            assert entry.is_fresh()
        finally:
            reopened.close()

    def test_both_tiers_share_one_file(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "store.sqlite"))
        try:
            cache = HttpCache(backend=backend)
            store = DocumentStore(backend=backend)
            cache.store("https://pod.example/doc", Response(200, {}, b"x"))
            store.put("https://pod.example/doc", "v", TERM_SHAPE_TRIPLES[:1])
            assert backend.namespaces() == {"http": 1, "documents": 1}
        finally:
            backend.close()


class TestAdoptParity:
    """Satellite 1: HttpCache now has the entries()/adopt() shape."""

    def test_cache_export_import(self):
        source = HttpCache()
        source.store("https://pod.example/a", Response(200, {"etag": '"a"'}, b"a"))
        source.store("https://pod.example/b", Response(200, {"etag": '"b"'}, b"b"))
        target = HttpCache()
        assert target.adopt_all(source.entries()) == 2
        assert target.lookup("https://pod.example/a").response.body == b"a"
        # Adoption answers no request: neither hits nor misses move.
        assert target.hits == 0 and target.misses == 0

    def test_adopt_requires_url(self):
        entry = CacheEntry(Response(200), etag="", stored_at=0.0, max_age=0.0)
        with pytest.raises(ValueError):
            HttpCache().adopt(entry)
