"""Crash-mid-write fault injection for the SQLite backend.

A child process writes entry A, flushes, writes entry B, and dies hard
(``os._exit``) before flushing — the exact window the batched-commit
design leaves open.  The parent then reopens the file and proves the
crash cost only the un-flushed window: the file passes SQLite's
integrity check, A is present, B is absent, and a DocumentStore over
the reopened backend answers B's URL with a clean miss — the cold
dereference path, same as a never-seen URL.
"""

import os
import subprocess
import sys
import textwrap

import repro
from repro.service.docstore import DocumentStore
from repro.storage import SqliteBackend

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

URL_FLUSHED = "https://pod.example/flushed"
URL_LOST = "https://pod.example/lost"


def crash_writer(path: str) -> None:
    """Run the put→flush→put→die sequence in a separate process."""
    script = textwrap.dedent(
        """
        import os, sys
        from repro.service.docstore import DocumentStore
        from repro.rdf.terms import Literal, NamedNode
        from repro.rdf.triples import Triple
        from repro.storage import SqliteBackend

        path, url_flushed, url_lost = sys.argv[1:4]
        backend = SqliteBackend(path, auto_flush=1000)
        store = DocumentStore(backend=backend)
        triple = Triple(NamedNode(url_flushed), NamedNode("p"), Literal("o"))
        store.put(url_flushed, 'W/"kept"', [triple])
        backend.flush()
        store.put(url_lost, 'W/"lost"', [triple])
        # Die without flush/close: no COMMIT, no rollback, no goodbye —
        # the harshest stop short of kill -9 that stays portable.
        os._exit(1)
        """
    )
    env = dict(os.environ, PYTHONPATH=SRC)
    process = subprocess.run(
        [sys.executable, "-c", script, path, URL_FLUSHED, URL_LOST],
        env=env,
        timeout=60,
    )
    assert process.returncode == 1


class TestCrashMidWrite:
    def test_reopen_is_clean_and_loses_only_the_unflushed_window(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        crash_writer(path)

        backend = SqliteBackend(path)
        try:
            # The file is never corrupt, only behind.
            assert backend.integrity_ok()
            assert backend.count("documents") == 1
            assert backend.get("documents", URL_FLUSHED) is not None
            assert backend.get("documents", URL_LOST) is None
        finally:
            backend.close()

    def test_lost_url_falls_back_to_cold_dereference(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        crash_writer(path)

        backend = SqliteBackend(path)
        try:
            store = DocumentStore(backend=backend)
            # The flushed document survived, warm.
            assert store.lookup(URL_FLUSHED, 'W/"kept"') is not None
            # The lost one is an ordinary miss — the dereferencer will
            # fetch and re-parse it exactly like a never-seen URL.
            assert store.lookup(URL_LOST, 'W/"lost"') is None
            assert store.misses == 1 and store.invalidations == 0
            # And the store accepts new writes after the crash.
            restored = store.put(URL_LOST, 'W/"lost"', [])
            store.flush()
            assert store.lookup(URL_LOST, 'W/"lost"') == restored
        finally:
            backend.close()
