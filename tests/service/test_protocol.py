"""Tests for the SPARQL-protocol front-end over the QueryService."""

import asyncio
import json
from urllib.parse import quote

import pytest

from repro.net import Internet, NoLatency, StaticApp
from repro.net.message import Request
from repro.service import QueryService, ServiceSparqlApp, SharedResources
from repro.solidbench import discover_query


@pytest.fixture()
def app(tiny_universe):
    resources = SharedResources.for_universe(tiny_universe, latency=NoLatency())
    return ServiceSparqlApp(QueryService(resources))


def ask(app, request):
    return asyncio.run(app.handle(request))


class TestProtocol:
    def test_get_with_seeds(self, app, tiny_universe):
        named = discover_query(tiny_universe, 1, 5)
        url = (
            f"http://svc/sparql?query={quote(named.text)}"
            f"&seeds={quote(','.join(named.seeds))}"
        )
        response = ask(app, Request("GET", url))
        assert response.status == 200
        assert response.header("content-type") == "application/sparql-results+json"
        document = json.loads(response.body)
        assert document["results"]["bindings"]
        assert set(document["head"]["vars"]) == set(
            v.value for v in named_query_variables(named)
        )

    def test_post_sparql_query_body(self, app, tiny_universe):
        named = discover_query(tiny_universe, 1, 5)
        response = ask(
            app,
            Request(
                "POST",
                "http://svc/sparql",
                {"content-type": "application/sparql-query"},
                named.text.encode("utf-8"),
            ),
        )
        assert response.status == 200
        assert json.loads(response.body)["results"]["bindings"]

    def test_ask_query(self):
        internet = Internet()
        static = StaticApp()
        static.put("/doc", '<https://h/doc#s> <https://h/p> "one" .')
        internet.register("https://h", static)
        service = QueryService(SharedResources(internet, latency=NoLatency()))
        app = ServiceSparqlApp(service)
        query = "ASK { <https://h/doc#s> <https://h/p> ?o }"
        url = f"http://svc/sparql?query={quote(query)}&seeds={quote('https://h/doc')}"
        response = ask(app, Request("GET", url))
        assert response.status == 200
        assert json.loads(response.body)["boolean"] is True

    def test_unparsable_query_is_400(self, app):
        response = ask(app, Request("GET", "http://svc/sparql?query=NOT+SPARQL"))
        assert response.status == 400

    def test_missing_query_is_400(self, app):
        assert ask(app, Request("GET", "http://svc/sparql")).status == 400

    def test_unknown_path_is_404(self, app):
        assert ask(app, Request("GET", "http://svc/elsewhere")).status == 404

    def test_construct_rejected(self, app):
        query = "CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }"
        response = ask(app, Request("GET", f"http://svc/sparql?query={quote(query)}"))
        assert response.status == 400

    def test_overload_is_503_with_retry_after(self, tiny_universe):
        resources = SharedResources.for_universe(tiny_universe, latency=NoLatency())
        service = QueryService(resources, max_concurrent=1, max_queued=0)
        app = ServiceSparqlApp(service)
        named = discover_query(tiny_universe, 1, 5)
        url = f"http://svc/sparql?query={quote(named.text)}&seeds={quote(','.join(named.seeds))}"

        async def scenario():
            first = asyncio.ensure_future(app.handle(Request("GET", url)))
            await asyncio.sleep(0.005)
            second = await app.handle(Request("GET", url))
            return await first, second

        first, second = asyncio.run(scenario())
        assert first.status == 200
        assert second.status == 503
        assert second.header("retry-after") == "1"

    def test_status_endpoint_reports_registry(self, app, tiny_universe):
        named = discover_query(tiny_universe, 1, 5)
        url = (
            f"http://svc/sparql?query={quote(named.text)}"
            f"&seeds={quote(','.join(named.seeds))}"
        )
        ask(app, Request("GET", url))
        response = ask(app, Request("GET", "http://svc/service/status"))
        assert response.status == 200
        document = json.loads(response.body)
        assert document["schema"] == 2
        assert document["mode"] == "single"
        assert document["service"]["completed"] == 1
        # Every tier reports its storage block through the unified shape.
        assert "storage" in document["service"]["document_store"]
        assert "storage" in document["service"]["http_cache"]
        assert len(document["queries"]) == 1
        assert document["queries"][0]["status"] == "done"


def named_query_variables(named):
    from repro.sparql.parser import parse_query

    return parse_query(named.text).variables()
