"""Standing queries on the QueryService: subscriptions end-to-end.

Covers the in-process service (`subscribe`/`apply_update`/change-listener
wiring), the HTTP long-poll transport (`/subscribe` + `/update`), and the
acceptance criterion that a sharded deployment publishes the *identical*
signed event stream for the same subscription and the same edit.
"""

import asyncio
import json
from urllib.parse import quote

import pytest

from repro.net import NoLatency
from repro.net.message import Request
from repro.rdf.terms import term_to_ntriples
from repro.service import (
    QueryService,
    ServiceSparqlApp,
    ShardSpec,
    ShardedQueryService,
    SharedResources,
)
from repro.solidbench import SolidBenchConfig, build_universe

FOAF = "http://xmlns.com/foaf/0.1/"
CONFIG = SolidBenchConfig(scale=0.005, seed=7)


def make_service(universe, **kwargs):
    resources = SharedResources.for_universe(universe, latency=NoLatency())
    return QueryService(resources, **kwargs)


def name_query(pod) -> str:
    return f"SELECT ?name WHERE {{ <{pod.webid}> <{FOAF}name> ?name }}"


def rename_update(pod, new: str, old: str = "") -> str:
    old = old or pod.owner_name
    return (
        f'DELETE DATA {{ <{pod.webid}> <{FOAF}name> "{old}" }} ;\n'
        f'INSERT DATA {{ <{pod.webid}> <{FOAF}name> "{new}" }}'
    )


def event_key(event) -> tuple:
    """Process-independent identity of one signed event."""
    binding = tuple(
        sorted((var.value, term_to_ntriples(term)) for var, term in event.binding.items())
    )
    return (event.seq, event.delta, binding, event.url)


@pytest.fixture()
def universe():
    """Private per-test universe: these tests PATCH pod documents."""
    return build_universe(CONFIG)


class TestServiceSubscribe:
    def test_subscribe_then_update_round_trip(self, universe):
        async def scenario():
            pod = next(iter(universe.pods.values()))
            service = make_service(universe)
            subscription = await service.subscribe(
                name_query(pod), seeds=[pod.profile_url]
            )
            queue = subscription.queue()
            initial = await asyncio.wait_for(queue.get(), 10)
            assert initial.delta == 1
            assert service.statistics()["subscriptions"] == 1

            report = await service.apply_update(
                pod.profile_url, rename_update(pod, "Renamed")
            )
            assert report["status"] == 200
            assert report["events"] == 2
            first = await asyncio.wait_for(queue.get(), 10)
            second = await asyncio.wait_for(queue.get(), 10)
            assert sorted([first.delta, second.delta]) == [-1, 1]
            assert {first.url, second.url} == {pod.profile_url}

            current = subscription.current_results()
            assert sum(current.values()) == 1
            (binding,) = current
            assert "Renamed" in repr(binding)

            await subscription.close()
            assert await asyncio.wait_for(queue.get(), 10) is None
            assert service.statistics()["subscriptions"] == 0

        asyncio.run(scenario())

    def test_direct_pod_write_surfaces_via_drain(self, universe):
        """A PATCH straight to the pod (not via apply_update) still reaches
        the subscription: the change listeners notify, drain refreshes."""

        async def scenario():
            pod = next(iter(universe.pods.values()))
            service = make_service(universe)
            subscription = await service.subscribe(
                name_query(pod), seeds=[pod.profile_url]
            )
            from urllib.parse import urlsplit

            parts = urlsplit(pod.profile_url)
            app = universe.internet.app_for(f"{parts.scheme}://{parts.netloc}")
            headers = {"content-type": "application/sparql-update"}
            headers.update(app.login_owner(parts.path))
            response = await universe.internet.dispatch(
                Request(
                    "PATCH",
                    pod.profile_url,
                    headers,
                    rename_update(pod, "Sideways").encode("utf-8"),
                )
            )
            assert response.status < 400
            assert subscription.live.pending == [pod.profile_url]
            events = await service.drain_subscriptions()
            assert sorted(e.delta for e in events) == [-1, 1]

        asyncio.run(scenario())

    def test_rejected_update_raises_and_changes_nothing(self, universe):
        async def scenario():
            pod = next(iter(universe.pods.values()))
            service = make_service(universe)
            subscription = await service.subscribe(
                name_query(pod), seeds=[pod.profile_url]
            )
            before = len(subscription.events)
            with pytest.raises(RuntimeError, match="update rejected"):
                await service.apply_update(pod.profile_url, "NOT SPARQL UPDATE")
            assert len(subscription.events) == before

        asyncio.run(scenario())

    def test_subscription_counts_against_admission(self, universe):
        from repro.service import ServiceOverloadedError

        async def scenario():
            pod = next(iter(universe.pods.values()))
            service = make_service(universe, max_concurrent=1, max_queued=0)
            first = asyncio.ensure_future(
                service.subscribe(name_query(pod), seeds=[pod.profile_url])
            )
            await asyncio.sleep(0.005)  # let the first start traversing
            with pytest.raises(ServiceOverloadedError):
                await service.subscribe(name_query(pod), seeds=[pod.profile_url])
            await (await first).close()

        asyncio.run(scenario())


class TestSubscribeProtocol:
    """The `/subscribe` + `/update` HTTP endpoints."""

    def open_subscription(self, app, pod):
        url = (
            f"http://svc/subscribe?query={quote(name_query(pod))}"
            f"&seeds={quote(pod.profile_url)}"
        )
        return asyncio.run(app.handle(Request("GET", url)))

    def test_open_poll_update_close(self, universe):
        async def scenario():
            pod = next(iter(universe.pods.values()))
            app = ServiceSparqlApp(make_service(universe))
            opened = await app.handle(
                Request(
                    "GET",
                    f"http://svc/subscribe?query={quote(name_query(pod))}"
                    f"&seeds={quote(pod.profile_url)}",
                )
            )
            assert opened.status == 200
            document = json.loads(opened.body)
            sub_id = document["subscription"]
            assert [e["delta"] for e in document["events"]] == [1]
            next_seq = document["next"]
            assert next_seq == 1

            updated = await app.handle(
                Request(
                    "POST",
                    f"http://svc/update?url={quote(pod.profile_url)}",
                    {"content-type": "application/sparql-update"},
                    rename_update(pod, "OverHttp").encode("utf-8"),
                )
            )
            assert updated.status == 200
            assert json.loads(updated.body)["events"] == 2

            polled = await app.handle(
                Request(
                    "GET",
                    f"http://svc/subscribe?id={sub_id}&after={next_seq - 1}",
                )
            )
            events = json.loads(polled.body)["events"]
            assert sorted(e["delta"] for e in events) == [-1, 1]
            for event in events:
                assert event["url"] == pod.profile_url
                assert "binding" in event

            closed = await app.handle(
                Request("GET", f"http://svc/subscribe?id={sub_id}&close=1")
            )
            assert json.loads(closed.body)["closed"] is True

        asyncio.run(scenario())

    def test_unknown_subscription_is_404(self, universe):
        app = ServiceSparqlApp(make_service(universe))
        response = asyncio.run(
            app.handle(Request("GET", "http://svc/subscribe?id=nope"))
        )
        assert response.status == 404

    def test_missing_query_is_400(self, universe):
        app = ServiceSparqlApp(make_service(universe))
        assert (
            asyncio.run(app.handle(Request("GET", "http://svc/subscribe"))).status
            == 400
        )

    def test_bad_query_is_400(self, universe):
        app = ServiceSparqlApp(make_service(universe))
        response = asyncio.run(
            app.handle(Request("GET", "http://svc/subscribe?query=NOT+SPARQL"))
        )
        assert response.status == 400

    def test_update_needs_url_and_body(self, universe):
        app = ServiceSparqlApp(make_service(universe))
        assert (
            asyncio.run(app.handle(Request("POST", "http://svc/update"))).status == 400
        )


class TestShardedSubscribeParity:
    """Acceptance: sharded subscribe == unsharded subscribe, event for event."""

    def test_identical_event_streams(self, universe):
        async def unsharded_stream():
            pod = next(iter(universe.pods.values()))
            service = make_service(universe)
            subscription = await service.subscribe(
                name_query(pod), seeds=[pod.profile_url]
            )
            await service.apply_update(pod.profile_url, rename_update(pod, "Parity"))
            events = [event_key(e) for e in subscription.events]
            results = {
                tuple(term_to_ntriples(t) for t in b.values()): n
                for b, n in subscription.current_results().items()
            }
            await subscription.close()
            return events, results

        async def sharded_stream():
            # Workers rebuild the same deterministic universe from CONFIG.
            pod = next(iter(universe.pods.values()))
            service = ShardedQueryService(
                ShardSpec(config=CONFIG, no_latency=True), workers=2
            )
            await service.start()
            try:
                subscription = await service.subscribe(
                    name_query(pod), seeds=[pod.profile_url]
                )
                report = await service.apply_update(
                    pod.profile_url, rename_update(pod, "Parity")
                )
                assert report["status"] == 200
                events = [event_key(e) for e in subscription.events]
                results = {
                    tuple(term_to_ntriples(t) for t in b.values()): n
                    for b, n in subscription.current_results().items()
                }
                stats = service.statistics()
                assert stats["subscriptions"] == 1
                await subscription.close()
                return events, results
            finally:
                await service.stop()

        expected_events, expected_results = asyncio.run(unsharded_stream())
        sharded_events, sharded_results = asyncio.run(sharded_stream())
        assert sharded_events == expected_events
        assert sharded_results == expected_results
        assert expected_events  # the comparison is not vacuous
