"""Unit tests for the cross-query parsed-document store."""

import hashlib

from repro.net.message import Response
from repro.rdf.terms import Literal, intern_iri
from repro.rdf.triples import Triple
from repro.service import DocumentStore


def triple(n: int) -> Triple:
    return Triple(
        intern_iri(f"https://pod/doc#{n}"),
        intern_iri("https://vocab/p"),
        Literal(str(n)),
    )


class TestValidator:
    def test_prefers_etag(self):
        response = Response(200, {"etag": '"abc123"'}, b"body")
        assert DocumentStore.validator_for(response) == '"abc123"'

    def test_falls_back_to_body_digest(self):
        response = Response(200, {}, b"body")
        expected = "sha1:" + hashlib.sha1(b"body").hexdigest()
        assert DocumentStore.validator_for(response) == expected

    def test_different_bodies_different_validators(self):
        a = DocumentStore.validator_for(Response(200, {}, b"one"))
        b = DocumentStore.validator_for(Response(200, {}, b"two"))
        assert a != b


class TestLookup:
    def test_miss_on_unknown_url(self):
        store = DocumentStore()
        assert store.lookup("https://pod/doc", "v1") is None
        assert store.misses == 1 and store.hits == 0

    def test_hit_returns_stored_triples(self):
        store = DocumentStore()
        store.put("https://pod/doc", "v1", [triple(1), triple(2)])
        entry = store.lookup("https://pod/doc", "v1")
        assert entry is not None
        assert entry.triples == (triple(1), triple(2))
        assert store.hits == 1 and store.parses == 1

    def test_validator_change_invalidates(self):
        store = DocumentStore()
        store.put("https://pod/doc", "v1", [triple(1)])
        assert store.lookup("https://pod/doc", "v2") is None
        assert store.invalidations == 1
        # The stale entry is gone: a matching validator no longer hits.
        assert "https://pod/doc" not in store
        assert store.lookup("https://pod/doc", "v1") is None

    def test_links_are_http_iris_of_the_document(self):
        store = DocumentStore()
        entry = store.put("https://pod/doc", "v1", [triple(7)])
        assert "https://pod/doc#7" in entry.links
        assert "https://vocab/p" in entry.links
        # Literals contribute nothing.
        assert all(link.startswith("http") for link in entry.links)


class TestBoundsAndStats:
    def test_evicts_oldest_beyond_capacity(self):
        store = DocumentStore(max_documents=2)
        store.put("https://pod/a", "v", [triple(1)])
        store.put("https://pod/b", "v", [triple(2)])
        store.put("https://pod/c", "v", [triple(3)])
        assert len(store) == 2
        assert "https://pod/a" not in store
        assert "https://pod/b" in store and "https://pod/c" in store

    def test_replacing_existing_url_does_not_evict(self):
        store = DocumentStore(max_documents=2)
        store.put("https://pod/a", "v1", [triple(1)])
        store.put("https://pod/b", "v1", [triple(2)])
        store.put("https://pod/a", "v2", [triple(3)])
        assert len(store) == 2

    def test_hit_rate_and_statistics(self):
        store = DocumentStore()
        store.put("https://pod/doc", "v1", [triple(1)])
        store.lookup("https://pod/doc", "v1")
        store.lookup("https://pod/other", "v1")
        assert store.hit_rate == 0.5
        stats = store.statistics()
        assert stats["documents"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["parses"] == 1

    def test_clear_resets_everything(self):
        store = DocumentStore()
        store.put("https://pod/doc", "v1", [triple(1)])
        store.lookup("https://pod/doc", "v1")
        store.clear()
        assert len(store) == 0
        assert store.hits == 0 and store.misses == 0 and store.parses == 0
        assert store.hit_rate == 0.0


class TestPersistentRestartInvalidation:
    """Validator-keyed invalidation across a service restart.

    A document edited while the service is *down* must not be served
    from the persisted parse: the restart's first conditional fetch sees
    a new validator, misses the store, re-parses — and the store diffs
    the new parse against the persisted stale one (the live-refresh
    delta source), while untouched documents keep answering parse-free.
    """

    def test_doc_changed_while_down_is_rediffed_on_restart(self, tmp_path):
        import asyncio

        from repro.net import NoLatency
        from repro.net.message import Request
        from repro.service import SharedResources
        from repro.solidbench import SolidBenchConfig, build_universe

        universe = build_universe(SolidBenchConfig(scale=0.005, seed=7))
        pods = iter(universe.pods.values())
        changed_pod, untouched_pod = next(pods), next(pods)
        changed_url = changed_pod.profile_url
        untouched_url = untouched_pod.profile_url
        store_path = str(tmp_path / "store.sqlite")

        def open_resources():
            return SharedResources.for_universe(
                universe, latency=NoLatency(), store_path=store_path
            )

        async def first_lifetime():
            resources = open_resources()
            for url in (changed_url, untouched_url):
                result = await resources.dereferencer.dereference(url)
                assert result.ok and not result.from_store
            resources.close()

        asyncio.run(first_lifetime())

        async def edit_while_down():
            from urllib.parse import urlsplit

            parts = urlsplit(changed_url)
            app = universe.internet.app_for(f"{parts.scheme}://{parts.netloc}")
            headers = {"content-type": "application/sparql-update"}
            headers.update(app.login_owner(parts.path))
            foaf = "http://xmlns.com/foaf/0.1/"
            update = (
                f'DELETE DATA {{ <{changed_pod.webid}> <{foaf}name> '
                f'"{changed_pod.owner_name}" }} ;\n'
                f'INSERT DATA {{ <{changed_pod.webid}> <{foaf}name> "Offline Edit" }}'
            )
            response = await universe.internet.dispatch(
                Request("PATCH", changed_url, headers, update.encode("utf-8"))
            )
            assert response.status == 200

        asyncio.run(edit_while_down())

        async def second_lifetime():
            resources = open_resources()
            changed = await resources.dereferencer.dereference(
                changed_url, revalidate=True
            )
            assert changed.ok and not changed.from_store
            # The persisted stale parse is the diff base: one rename is
            # exactly one retraction plus one addition.
            assert changed.diff is not None
            assert len(changed.diff.added) == 1
            assert len(changed.diff.removed) == 1
            untouched = await resources.dereferencer.dereference(
                untouched_url, revalidate=True
            )
            assert untouched.ok and untouched.from_store
            assert untouched.diff is None
            resources.close()

        asyncio.run(second_lifetime())
