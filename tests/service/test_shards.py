"""End-to-end tests for the sharded multi-process QueryService.

These spawn real worker processes (small universe: scale 0.005) and
check the properties the sharded deployment promises: identical result
multisets vs. the in-process service, warm-shard routing stability,
crash restart, graceful drain with warm document-store handoff, and
front-end admission control.
"""

import asyncio
import time

import pytest

from repro.service import (
    QueryService,
    ServiceHost,
    ServiceOverloadedError,
    ShardSpec,
    ShardedQueryService,
    SharedResources,
)
from repro.net import NoLatency
from repro.solidbench import SolidBenchConfig, build_universe, discover_query

CONFIG = SolidBenchConfig(scale=0.005, seed=7)


def make_spec(**overrides):
    defaults = dict(config=CONFIG, no_latency=True)
    defaults.update(overrides)
    return ShardSpec(**defaults)


def run_on(host, coroutine, timeout=120.0):
    return asyncio.run_coroutine_threadsafe(coroutine, host.loop).result(timeout)


def multiset(result):
    return sorted(repr(timed.binding) for timed in result.results)


@pytest.fixture(scope="module")
def universe():
    return build_universe(CONFIG)


@pytest.fixture(scope="module")
def sharded_host():
    """A started 2-worker sharded service behind a ServiceHost."""
    host = ServiceHost(ShardedQueryService(make_spec(), workers=2)).start()
    yield host
    host.stop()


@pytest.fixture(scope="module")
def reference_service(universe):
    return QueryService(SharedResources.for_universe(universe, latency=NoLatency()))


class TestShardedExecution:
    def test_matches_unsharded_results(self, sharded_host, universe, reference_service):
        named = discover_query(universe, 1, 1)
        sharded = sharded_host.execute(named.text, seeds=list(named.seeds))
        expected = asyncio.run(
            reference_service.run(named.text, seeds=named.seeds)
        )
        assert multiset(sharded) == multiset(expected)
        assert multiset(sharded)

    def test_warm_repeat_stays_on_shard_and_skips_parses(self, sharded_host, universe):
        named = discover_query(universe, 2, 1)
        cold = sharded_host.execute(named.text, seeds=list(named.seeds))
        warm = sharded_host.execute(named.text, seeds=list(named.seeds))
        assert warm.shard == cold.shard
        assert multiset(warm) == multiset(cold)
        # Every document served from the shard's parsed-document store.
        # (The cold run may already hit entries warmed by earlier tests
        # on this shared fixture — that cross-query reuse is the point.)
        assert warm.stats.documents_from_store == warm.stats.documents_fetched

    def test_status_aggregates_shard_gauges(self, sharded_host):
        service = sharded_host.service
        status = run_on(sharded_host, service.status())
        assert status["workers"] == 2
        assert status["workers_ready"] == 2
        assert set(status["shards"]) == {"shard-0", "shard-1"}
        totals = status["totals"]
        assert totals["completed"] >= 1
        assert totals["document_store"]["documents"] > 0
        per_shard = sum(
            block["statistics"]["completed"] for block in status["shards"].values()
        )
        assert totals["completed"] == per_shard

    def test_health_check(self, sharded_host):
        health = run_on(sharded_host, sharded_host.service.health_check())
        assert health == {"shard-0": True, "shard-1": True}

    def test_submit_accepts_parsed_query(self, sharded_host, universe):
        from repro.sparql.parser import parse_query

        named = discover_query(universe, 1, 1)
        parsed = parse_query(named.text)
        result = sharded_host.execute(parsed, seeds=list(named.seeds))
        assert multiset(result)


class TestHardenedShards:
    """Traversal-hardening budgets cross the process boundary intact."""

    def test_spec_budget_fields_survive_pickling_and_worker_derivation(self):
        import pickle

        spec = make_spec(
            max_depth=3,
            max_origin_derefs=5,
            max_doc_bytes=1024,
            store_path="/tmp/shard-store",
        )
        assert pickle.loads(pickle.dumps(spec)) == spec
        derived = spec.for_worker("shard-0")
        assert derived.max_depth == 3
        assert derived.max_origin_derefs == 5
        assert derived.max_doc_bytes == 1024

    def test_stats_summary_ships_refusal_attribution(self):
        import pickle

        from repro.ltqp.stats import ExecutionStats
        from repro.service.shards import ShardStats, _stats_summary

        stats = ExecutionStats(started_at=1.0, finished_at=2.0)
        stats.documents_fetched = 4
        stats.note_refusal("origin-derefs", "https://adv-trap.example")
        stats.note_refusal("doc-bytes", "https://adv-huge.example")
        shipped = ShardStats(pickle.loads(pickle.dumps(_stats_summary(stats))))
        report = shipped.completeness()
        assert not report["complete"]
        assert report["documents_refused"] == 2
        assert report["refusals_by_kind"] == {"doc-bytes": 1, "origin-derefs": 1}
        assert report["refusals_by_origin"] == {
            "https://adv-huge.example": 1,
            "https://adv-trap.example": 1,
        }
        assert report["documents_attempted"] == 6

    def test_budgeted_worker_reports_refusals_end_to_end(self, universe):
        # Every benign pod shares one origin, so a tight per-origin budget
        # forces refusals on an ordinary run — exercising the whole path:
        # spec → worker EngineConfig → execution → summary → pipe → front-end.
        host = ServiceHost(
            ShardedQueryService(make_spec(max_origin_derefs=6), workers=1)
        ).start()
        try:
            named = discover_query(universe, 1, 1)
            result = host.execute(named.text, seeds=list(named.seeds))
            report = result.stats.completeness()
            assert not report["complete"]
            assert report["documents_refused"] > 0
            assert report["refusals_by_kind"].get("origin-derefs", 0) > 0
            assert set(report["refusals_by_origin"]) == {CONFIG.host}
        finally:
            host.stop()


class TestOriginAffinity:
    def test_same_pod_queries_share_a_shard(self):
        host = ServiceHost(
            ShardedQueryService(make_spec(), workers=2, routing="origin")
        ).start()
        try:
            universe = build_universe(CONFIG)
            first = discover_query(universe, 1, 1)
            second = discover_query(universe, 2, 1, person_index=first.person_index)
            assert first.seeds[0] == second.seeds[0]
            a = host.execute(first.text, seeds=list(first.seeds))
            b = host.execute(second.text, seeds=list(second.seeds))
            assert a.shard == b.shard
            # The second query re-uses the first one's parses: per-origin
            # affinity means zero cross-shard re-parsing of the pod.
            assert b.stats.documents_from_store > 0
        finally:
            host.stop()


class TestLifecycle:
    def test_crash_restart_and_graceful_warm_handoff(self):
        host = ServiceHost(ShardedQueryService(make_spec(), workers=2)).start()
        try:
            service = host.service
            universe = build_universe(CONFIG)
            named = discover_query(universe, 1, 1)
            cold = host.execute(named.text, seeds=list(named.seeds))
            worker = service.workers[cold.shard]

            # Hard crash: the process dies, the shard leaves the ring,
            # a replacement spawns and rejoins.
            generation = worker.generation
            worker.process.kill()
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if worker.generation > generation and worker.state == "ready":
                    break
                time.sleep(0.1)
            assert worker.state == "ready"
            assert service.statistics()["restarts"] >= 1

            # The replacement is cold — same results, re-fetched.
            after_crash = host.execute(named.text, seeds=list(named.seeds))
            assert multiset(after_crash) == multiset(cold)
            assert after_crash.stats.documents_from_store == 0

            # Graceful restart hands the document store over: the next
            # repeat parses nothing.
            report = run_on(
                host, service.restart_worker(cold.shard, warm=True), timeout=120
            )
            assert report["documents"] > 0
            warm = host.execute(named.text, seeds=list(named.seeds))
            assert multiset(warm) == multiset(cold)
            assert warm.stats.documents_from_store == warm.stats.documents_fetched
        finally:
            host.stop()

    def test_persistent_spec_derives_per_worker_paths(self, tmp_path):
        import os

        spec = make_spec(store_path=str(tmp_path))
        derived = spec.for_worker("shard-3")
        assert derived.store_path == os.path.join(str(tmp_path), "shard-3.sqlite")
        assert derived.persistent and spec.persistent
        # Without a store path the spec is shared untouched.
        plain = make_spec()
        assert plain.for_worker("shard-0") is plain
        assert not plain.persistent

    def test_file_handoff_on_graceful_restart(self, tmp_path):
        import os

        spec = make_spec(store_path=str(tmp_path))
        host = ServiceHost(ShardedQueryService(spec, workers=1)).start()
        try:
            service = host.service
            universe = build_universe(CONFIG)
            named = discover_query(universe, 1, 1)
            cold = host.execute(named.text, seeds=list(named.seeds))
            assert os.path.exists(os.path.join(str(tmp_path), "shard-0.sqlite"))

            # Persistent spec: the handoff references the file — nothing
            # streams through the pipe, yet the replacement starts warm.
            report = run_on(
                host, service.restart_worker("shard-0", warm=True), timeout=120
            )
            assert report["handoff"] == "file"
            assert report["documents"] > 0

            warm = host.execute(named.text, seeds=list(named.seeds))
            assert multiset(warm) == multiset(cold)
            assert warm.stats.documents_from_store == warm.stats.documents_fetched
        finally:
            host.stop()

    def test_drain_idle_service_is_clean(self):
        host = ServiceHost(ShardedQueryService(make_spec(), workers=1)).start()
        try:
            pending = run_on(host, host.service.drain(timeout=1.0))
            assert pending == []
        finally:
            assert host.stop() == []

    def test_overload_rejected_at_front_end(self):
        spec = make_spec(max_concurrent=1, max_queued=0)
        host = ServiceHost(ShardedQueryService(spec, workers=1)).start()
        try:
            universe = build_universe(CONFIG)
            named = discover_query(universe, 1, 1)

            async def scenario():
                service = host.service
                first = service.submit(named.text, seeds=list(named.seeds))
                with pytest.raises(ServiceOverloadedError):
                    service.submit(named.text, seeds=list(named.seeds))
                await first.wait()
                assert service.statistics()["rejected"] == 1
                return first

            handle = run_on(host, scenario())
            assert handle.status == "done"
        finally:
            host.stop()
