"""ServiceHost shutdown semantics: drain, surface, join-with-timeout."""

import asyncio

from repro.net import NoLatency, SeededJitterLatency
from repro.service import QueryService, ServiceHost, SharedResources
from repro.solidbench import discover_query


def make_host(universe, latency=None, latency_scale=1.0):
    resources = SharedResources.for_universe(
        universe,
        latency=latency if latency is not None else NoLatency(),
        latency_scale=latency_scale,
    )
    return ServiceHost(QueryService(resources)).start()


class TestHostStop:
    def test_clean_stop_after_completion_reports_nothing(self, tiny_universe):
        host = make_host(tiny_universe)
        named = discover_query(tiny_universe, 1, 5)
        result = host.execute(named.text, seeds=list(named.seeds))
        assert result.results
        assert host.stop() == []

    def test_stop_surfaces_inflight_queries(self, tiny_universe):
        # Heavy simulated latency: the query cannot finish inside the
        # tiny drain window, so stop() must report it instead of
        # swallowing it.
        host = make_host(
            tiny_universe, latency=SeededJitterLatency(seed=3), latency_scale=200.0
        )
        service = host.service
        named = discover_query(tiny_universe, 1, 5)

        async def submit():
            return service.submit(named.text, seeds=list(named.seeds))

        handle = asyncio.run_coroutine_threadsafe(submit(), host.loop).result(30)
        pending = host.stop(drain_timeout=0.1)
        assert [snapshot["id"] for snapshot in pending] == [handle.id]
        assert pending[0]["status"] in ("queued", "running")

    def test_drain_waits_for_short_queries(self, tiny_universe):
        host = make_host(tiny_universe)
        service = host.service
        named = discover_query(tiny_universe, 1, 5)

        async def submit():
            return service.submit(named.text, seeds=list(named.seeds))

        asyncio.run_coroutine_threadsafe(submit(), host.loop).result(30)
        # Generous drain: the no-latency query finishes well inside it.
        assert host.stop(drain_timeout=30.0) == []

    def test_stop_is_idempotent(self, tiny_universe):
        host = make_host(tiny_universe)
        assert host.stop() == []
        assert host.stop() == []
