"""Tests for the long-lived QueryService and its shared resources."""

import asyncio

import pytest

from repro.ltqp.engine import EngineConfig
from repro.net import HttpClient, Internet, NoLatency, StaticApp
from repro.service import (
    QueryService,
    ServiceHost,
    ServiceOverloadedError,
    SharedResources,
)
from repro.solidbench import discover_query


def make_service(universe, **kwargs):
    resources = SharedResources.for_universe(universe, latency=NoLatency())
    return QueryService(resources, **kwargs)


def bindings_of(result):
    return sorted(repr(timed.binding) for timed in result.results)


class TestWarmRuns:
    def test_warm_run_identical_and_parse_free(self, tiny_universe):
        service = make_service(tiny_universe)
        named = discover_query(tiny_universe, 1, 5)

        async def scenario():
            cold = await service.run(named.text, seeds=named.seeds)
            parses_after_cold = service.resources.document_store.parses
            warm = await service.run(named.text, seeds=named.seeds)
            return cold, parses_after_cold, warm

        cold, parses_after_cold, warm = asyncio.run(scenario())
        # Byte-identical result multisets…
        assert bindings_of(cold) == bindings_of(warm)
        assert bindings_of(cold)
        # …with every document served from the parsed-document store:
        assert warm.stats.documents_from_store == warm.stats.documents_fetched
        assert cold.stats.documents_from_store == 0
        # zero re-parses on the warm run.
        assert service.resources.document_store.parses == parses_after_cold

    def test_caches_shared_across_distinct_queries(self, tiny_universe):
        service = make_service(tiny_universe)
        # Both Discover 1 and Discover 2 traverse the same person's pod,
        # so the second query reuses the first one's parses.
        first = discover_query(tiny_universe, 1, 5)
        second = discover_query(tiny_universe, 2, 5, person_index=first.person_index)

        async def scenario():
            await service.run(first.text, seeds=first.seeds)
            return await service.run(second.text, seeds=second.seeds)

        result = asyncio.run(scenario())
        assert result.stats.documents_from_store > 0


class TestAdmissionControl:
    def test_overload_rejected_with_503_semantics(self, tiny_universe):
        service = make_service(tiny_universe, max_concurrent=1, max_queued=1)
        named = discover_query(tiny_universe, 1, 5)

        async def scenario():
            first = service.submit(named.text, seeds=named.seeds)
            second = service.submit(named.text, seeds=named.seeds)
            with pytest.raises(ServiceOverloadedError):
                service.submit(named.text, seeds=named.seeds)
            assert service.rejected == 1
            await asyncio.gather(first.wait(), second.wait())
            # Capacity freed: submissions are accepted again.
            await service.run(named.text, seeds=named.seeds)

        asyncio.run(scenario())
        assert service.accepted == 3 and service.completed == 3

    def test_concurrent_queries_all_complete(self, tiny_universe):
        service = make_service(tiny_universe, max_concurrent=4)
        named = discover_query(tiny_universe, 1, 5)

        async def scenario():
            handles = [service.submit(named.text, seeds=named.seeds) for _ in range(6)]
            assert service.queued_count + service.active_count == 6
            return await asyncio.gather(*(h.wait() for h in handles))

        results = asyncio.run(scenario())
        expected = bindings_of(results[0])
        assert expected
        assert all(bindings_of(r) == expected for r in results)
        assert service.completed == 6


class TestCancellation:
    def test_cancel_running_query(self, tiny_universe):
        service = make_service(tiny_universe)
        named = discover_query(tiny_universe, 1, 5)

        async def scenario():
            handle = service.submit(named.text, seeds=named.seeds)
            await asyncio.sleep(0.005)
            await handle.cancel()
            return handle

        handle = asyncio.run(scenario())
        assert handle.status == "cancelled"
        assert service.cancelled == 1 and service.active_count == 0

    def test_cancel_queued_query_never_runs(self, tiny_universe):
        service = make_service(tiny_universe, max_concurrent=1, max_queued=2)
        named = discover_query(tiny_universe, 1, 5)

        async def scenario():
            first = service.submit(named.text, seeds=named.seeds)
            queued = service.submit(named.text, seeds=named.seeds)
            await asyncio.sleep(0)
            await queued.cancel()
            await first.wait()
            return queued

        queued = asyncio.run(scenario())
        assert queued.status == "cancelled"
        assert queued.execution is None  # never left the admission queue
        assert service.queued_count == 0

    def test_wait_after_cancel_is_safe(self, tiny_universe):
        service = make_service(tiny_universe)
        named = discover_query(tiny_universe, 1, 5)

        async def scenario():
            handle = service.submit(named.text, seeds=named.seeds)
            await asyncio.sleep(0.005)
            await handle.cancel()
            return await handle.wait()

        result = asyncio.run(scenario())
        assert result.stats is not None


class TestBudgetsAndRegistry:
    def test_per_query_document_budget(self, tiny_universe):
        service = make_service(tiny_universe)
        named = discover_query(tiny_universe, 1, 5)

        async def scenario():
            bounded = await service.run(named.text, seeds=named.seeds, max_documents=3)
            unbounded = await service.run(named.text, seeds=named.seeds)
            return bounded, unbounded

        bounded, unbounded = asyncio.run(scenario())
        assert bounded.stats.documents_fetched <= 3
        assert unbounded.stats.documents_fetched > bounded.stats.documents_fetched

    def test_service_default_budget(self, tiny_universe):
        service = make_service(tiny_universe, default_max_documents=2)
        named = discover_query(tiny_universe, 1, 5)
        result = asyncio.run(service.run(named.text, seeds=named.seeds))
        assert result.stats.documents_fetched <= 2

    def test_registry_snapshots(self, tiny_universe):
        service = make_service(tiny_universe)
        named = discover_query(tiny_universe, 1, 5)

        async def scenario():
            handle = service.submit(named.text, seeds=named.seeds)
            await handle.wait()
            return handle

        handle = asyncio.run(scenario())
        assert service.get(handle.id) is handle
        snapshot = handle.snapshot()
        assert snapshot["id"] == handle.id
        assert snapshot["status"] == "done"
        assert snapshot["results"] > 0
        assert snapshot["documents_fetched"] > 0
        assert snapshot["error"] is None

    def test_failed_query_is_reported(self, tiny_universe):
        # Strict mode turns a parse failure into a query error; the
        # registry must report it rather than swallow it.
        resources = SharedResources.for_universe(
            tiny_universe, latency=NoLatency(), lenient=False
        )
        service = QueryService(resources)
        query = "SELECT ?o WHERE { <https://nowhere.invalid/x> <https://p/p> ?o }"

        async def scenario():
            handle = service.submit(query, seeds=["https://nowhere.invalid/x"])
            with pytest.raises(Exception):
                await handle.wait()
            return handle

        handle = asyncio.run(scenario())
        assert handle.status == "failed"
        assert service.failed == 1

    def test_statistics_and_gauges(self, tiny_universe):
        service = make_service(tiny_universe)
        named = discover_query(tiny_universe, 1, 5)
        asyncio.run(service.run(named.text, seeds=named.seeds))
        asyncio.run(service.run(named.text, seeds=named.seeds))
        stats = service.statistics()
        assert stats["completed"] == 2
        assert stats["document_store"]["hits"] > 0
        metrics = service.resources.metrics
        assert metrics.gauge("service.docstore.hit_rate").value > 0
        assert metrics.counter("service.completed").value == 2


class TestInvalidation:
    def test_changed_document_is_reparsed(self):
        internet = Internet()
        app = StaticApp()
        app.put("/doc", '<https://h/doc#s> <https://h/p> "one" .')
        internet.register("https://h", app)
        resources = SharedResources(internet, latency=NoLatency())
        service = QueryService(resources)
        query = "SELECT ?o WHERE { <https://h/doc#s> <https://h/p> ?o }"

        async def run():
            return await service.run(query, seeds=["https://h/doc"])

        first = asyncio.run(run())
        assert [t.binding for t in first.results][0] is not None
        # The document changes upstream: new body → new validator → the
        # store drops its entry and the new content is parsed.
        app.put("/doc", '<https://h/doc#s> <https://h/p> "two" .')
        resources.http_cache.clear()
        second = asyncio.run(run())
        assert "two" in repr(second.results[0].binding)
        assert resources.document_store.invalidations == 1
        assert resources.document_store.parses == 2


class TestServiceHost:
    def test_blocking_facade_from_sync_code(self, tiny_universe):
        service = make_service(tiny_universe)
        named = discover_query(tiny_universe, 1, 5)
        with ServiceHost(service) as host:
            first = host.execute(named.text, seeds=named.seeds, timeout=60)
            second = host.execute(named.text, seeds=named.seeds, timeout=60)
            assert bindings_of(first) == bindings_of(second)
            assert host.statistics()["completed"] == 2
        # Restartable after stop().
        host = ServiceHost(service).start()
        try:
            assert host.execute(named.text, seeds=named.seeds, timeout=60).results
        finally:
            host.stop()


class TestEngineSharing:
    def test_service_does_not_reset_shared_breakers(self, tiny_universe):
        resources = SharedResources.for_universe(tiny_universe, latency=NoLatency())
        # Building a service must not install a fresh policy on the shared
        # client (which would reset circuit-breaker history).
        policy_before = resources.client.policy
        QueryService(resources, config=EngineConfig())
        assert resources.client.policy is policy_before


class TestShutdownErrorSurfacing:
    """Teardown exceptions must not fail queries — but they must not be
    silently swallowed either: they surface query-tagged in
    ``statistics()`` and in the ``/service/status`` document."""

    def test_query_shutdown_errors_surface_in_statistics(self, tiny_universe):
        service = make_service(tiny_universe)
        named = discover_query(tiny_universe, 1, 5)

        async def scenario():
            handle = service.submit(named.text, seeds=named.seeds)
            await handle.wait()
            return handle

        handle = asyncio.run(scenario())
        assert service.statistics()["shutdown_errors"] == []
        handle.execution.stats.note_shutdown_error(
            "traversal", RuntimeError("cancel timed out")
        )
        errors = service.statistics()["shutdown_errors"]
        assert errors == [f"{handle.id}: traversal: RuntimeError: cancel timed out"]

    def test_subscription_shutdown_errors_surface_too(self, tiny_universe):
        from repro.service import ServiceSparqlApp
        from repro.net.message import Request

        service = make_service(tiny_universe)
        named = discover_query(tiny_universe, 1, 5)

        async def scenario():
            subscription = await service.subscribe(named.text, seeds=named.seeds)
            subscription.live.execution.stats.note_shutdown_error(
                "flush-timer", OSError("disk gone")
            )
            assert service.shutdown_errors() == [
                f"{subscription.id}: flush-timer: OSError: disk gone"
            ]
            # ...and through the status document (schema 2).
            app = ServiceSparqlApp(service)
            response = await app.handle(Request("GET", "http://svc/service/status"))
            import json

            document = json.loads(response.body)
            assert document["service"]["shutdown_errors"] == [
                f"{subscription.id}: flush-timer: OSError: disk gone"
            ]
            await subscription.close()

        asyncio.run(scenario())
