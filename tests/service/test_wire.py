"""Tests for the process-portable wire forms (results + documents)."""

import pytest

from repro.ltqp.stats import TimedResult
from repro.rdf.terms import BlankNode, Literal, NamedNode, Variable, intern_iri
from repro.rdf.triples import Triple
from repro.service.docstore import StoredDocument
from repro.service.wire import (
    decode_results,
    decode_term,
    document_from_wire,
    document_to_wire,
    encode_results,
    encode_term,
)
from repro.sparql.bindings import Binding

ALICE = NamedNode("https://solidbench.example/pods/alice/profile#me")
NAME = NamedNode("https://example.org/name")


def binding(**pairs):
    return Binding(tuple((Variable(k), v) for k, v in pairs.items()))


class TestTermCodec:
    @pytest.mark.parametrize(
        "term",
        [
            NamedNode("https://a.example/x"),
            BlankNode("b0"),
            Literal("plain"),
            Literal("hallo", language="nl"),
            Literal("42", datatype="http://www.w3.org/2001/XMLSchema#integer"),
            Variable("name"),
        ],
    )
    def test_roundtrip(self, term):
        back = decode_term(encode_term(term))
        assert back == term
        assert type(back) is type(term)

    def test_decoded_iri_is_interned(self):
        back = decode_term(encode_term(NamedNode("https://a.example/pool")))
        assert back is intern_iri("https://a.example/pool")


class TestResultCodec:
    def test_bindings_roundtrip_with_dedup(self):
        rows = [
            TimedResult(binding(s=ALICE, name=Literal("Alice")), 0.01),
            TimedResult(binding(s=ALICE, name=Literal("Bob")), 0.02),
        ]
        block = encode_results(rows)
        # ALICE appears twice but travels once.
        assert len(block["terms"]) == 3
        back = decode_results(block)
        assert [t.binding for t in back] == [t.binding for t in rows]
        assert [t.elapsed for t in back] == [0.01, 0.02]

    def test_heterogeneous_rows_pad_unbound(self):
        rows = [
            TimedResult(binding(s=ALICE), 0.0),
            TimedResult(binding(s=ALICE, name=Literal("Alice")), 0.0),
        ]
        back = decode_results(encode_results(rows))
        assert len(back[0].binding) == 1
        assert len(back[1].binding) == 2

    def test_empty(self):
        assert decode_results(encode_results([])) == []

    def test_construct_triples_roundtrip(self):
        rows = [TimedResult(Triple(ALICE, NAME, Literal("Alice")), 0.0)]
        back = decode_results(encode_results(rows))
        assert back[0].binding == rows[0].binding
        assert isinstance(back[0].binding, Triple)

    def test_ask_empty_binding_roundtrip(self):
        rows = [TimedResult(Binding(()), 0.0)]
        back = decode_results(encode_results(rows))
        assert back[0].binding == Binding(())


class TestDocumentWire:
    def make_document(self):
        triples = (
            Triple(ALICE, NAME, Literal("Alice")),
            Triple(ALICE, NamedNode("https://example.org/knows"),
                   NamedNode("https://solidbench.example/pods/bob/profile#me")),
        )
        from repro.service.docstore import _links_of

        return StoredDocument(
            url="https://solidbench.example/pods/alice/profile",
            validator='W/"abc123"',
            triples=triples,
            links=_links_of(triples),
            stored_at=12.5,
        )

    def test_roundtrip_preserves_identity(self):
        document = self.make_document()
        back = document_from_wire(document_to_wire(document))
        assert back.url == document.url
        # The validator is the 304-revalidation key: it must survive the
        # handoff byte-for-byte or the importing shard re-parses everything.
        assert back.validator == document.validator
        assert back.triples == document.triples
        assert back.links == document.links

    def test_import_into_store_counts_no_parse(self):
        from repro.service.docstore import DocumentStore

        document = self.make_document()
        store = DocumentStore()
        store.adopt(document_from_wire(document_to_wire(document)))
        assert store.parses == 0
        assert store.lookup(document.url, document.validator) is not None
        assert store.hits == 1
