"""Property tests for consistent-hash routing (stability + minimal remap)."""

import os
import string
import subprocess
import sys
import textwrap

from hypothesis import given, settings, strategies as st

from repro.service.router import HashRing, ShardRouter, pod_origin

_keys = st.text(alphabet=string.ascii_letters + string.digits + " ?{}<>./:#", min_size=1, max_size=60)


class TestPodOrigin:
    def test_simulated_pod_path(self):
        assert (
            pod_origin("https://solidbench.example/pods/alice/profile/card#me")
            == "https://solidbench.example/pods/alice"
        )

    def test_same_pod_same_key(self):
        a = pod_origin("https://solidbench.example/pods/alice/posts/2024.ttl")
        b = pod_origin("https://solidbench.example/pods/alice/profile")
        assert a == b

    def test_distinct_pods_distinct_keys(self):
        a = pod_origin("https://solidbench.example/pods/alice/profile")
        b = pod_origin("https://solidbench.example/pods/bob/profile")
        assert a != b

    def test_real_origin_fallback(self):
        assert pod_origin("https://alice.pod.example/profile#me") == "https://alice.pod.example"


class TestHashRingProperties:
    @given(st.lists(_keys, min_size=50, max_size=200, unique=True), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_removing_one_shard_remaps_at_most_its_keys(self, keys, n):
        """Consistent hashing's defining property: dropping one of N nodes
        moves ONLY the keys that pointed at it — everything else stays."""
        names = [f"shard-{i}" for i in range(n)]
        ring = HashRing(names)
        before = {key: ring.route(key) for key in keys}
        victim = names[0]
        ring.remove(victim)
        for key, owner in before.items():
            if owner != victim:
                assert ring.route(key) == owner

    @given(st.lists(_keys, min_size=100, max_size=300, unique=True), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_adding_one_shard_steals_roughly_one_over_n(self, keys, n):
        names = [f"shard-{i}" for i in range(n)]
        ring = HashRing(names)
        before = {key: ring.route(key) for key in keys}
        ring.add("shard-new")
        moved = sum(1 for key in keys if ring.route(key) != before[key])
        # Expected share is 1/(n+1); allow generous slack for small samples
        # and vnode placement variance, but far below a full reshuffle.
        assert moved <= max(5, int(len(keys) * 2.5 / (n + 1)))
        # And every moved key went to the new shard, nowhere else.
        for key in keys:
            if ring.route(key) != before[key]:
                assert ring.route(key) == "shard-new"

    @given(st.lists(_keys, min_size=50, max_size=150, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_distribution_covers_all_shards(self, keys):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        owners = {ring.route(key) for key in keys}
        # With >=50 distinct keys over 4 shards and 64 vnodes each, every
        # shard owning zero keys would mean a broken ring.
        assert len(owners) >= 2

    def test_empty_ring_routes_none(self):
        assert HashRing([]).route("anything") is None


class TestRouterStability:
    def test_routing_is_process_stable(self):
        """The same keys must route identically under a different
        PYTHONHASHSEED — warm-shard locality depends on it."""
        router = ShardRouter([f"shard-{i}" for i in range(4)], mode="origin")
        seeds = [
            [f"https://solidbench.example/pods/pod{i:05d}/profile/card#me"]
            for i in range(40)
        ]
        local = [router.route("SELECT * WHERE { ?s ?p ?o }", s) for s in seeds]
        script = textwrap.dedent(
            """
            from repro.service.router import ShardRouter
            router = ShardRouter([f"shard-{i}" for i in range(4)], mode="origin")
            seeds = [
                [f"https://solidbench.example/pods/pod{i:05d}/profile/card#me"]
                for i in range(40)
            ]
            print(",".join(router.route("SELECT * WHERE { ?s ?p ?o }", s) for s in seeds))
            """
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "99999"
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip() == ",".join(local)

    def test_origin_mode_keys_on_first_seed_pod(self):
        router = ShardRouter(["a", "b", "c"], mode="origin")
        key1 = router.key_for("QUERY ONE", ["https://x.example/pods/p1/profile"])
        key2 = router.key_for("QUERY TWO", ["https://x.example/pods/p1/posts/1"])
        assert key1 == key2 == "https://x.example/pods/p1"

    def test_query_mode_distinguishes_seeds(self):
        router = ShardRouter(["a", "b"], mode="query")
        assert router.key_for("Q", ["s1"]) != router.key_for("Q", ["s2"])

    def test_rejects_unknown_mode(self):
        import pytest

        with pytest.raises(ValueError):
            ShardRouter(["a"], mode="random")
