"""Fragmentation invariance: answers don't depend on document layout.

SolidBench can fragment a person's messages per creation date (default),
into a single document, or one document per message.  The fragmentation
changes *where* message IRIs live and how many requests traversal needs —
but never the answers.  ([14] studies exactly this design axis.)
"""

import pytest

from repro.bench.harness import oracle_bindings, run_query
from repro.solidbench import Fragmentation, SolidBenchConfig, build_universe, discover_query

SCALE = 0.01
SEED = 21


@pytest.fixture(scope="module")
def universes():
    return {
        mode: build_universe(SolidBenchConfig(scale=SCALE, seed=SEED, fragmentation=mode))
        for mode in Fragmentation
    }


class TestFragmentationInvariance:
    @pytest.mark.parametrize("template", [1, 2, 6])
    def test_answers_equal_across_fragmentations(self, universes, template):
        answers = {}
        for mode, universe in universes.items():
            query = discover_query(universe, template, 1)
            report = run_query(universe, query, check_oracle=True)
            assert report.complete is True, f"{mode}: incomplete"
            # Compare value-level answers (IRIs differ across layouts, the
            # projected literals must not).
            answers[mode] = report.result_count
        assert len(set(answers.values())) == 1, answers

    def test_request_counts_order_by_granularity(self, universes):
        """SINGLE needs strictly fewer requests; PER_RESOURCE at least as
        many as DATED (equal when every message has a unique date)."""
        requests = {}
        for mode, universe in universes.items():
            query = discover_query(universe, 2, 1)
            report = run_query(universe, query, check_oracle=False)
            requests[mode] = report.waterfall.request_count
        assert requests[Fragmentation.SINGLE] < requests[Fragmentation.DATED]
        assert requests[Fragmentation.DATED] <= requests[Fragmentation.PER_RESOURCE]

    def test_file_counts_order_by_granularity(self, universes):
        files = {mode: u.statistics()["files"] for mode, u in universes.items()}
        assert files[Fragmentation.SINGLE] < files[Fragmentation.DATED]
        assert files[Fragmentation.DATED] <= files[Fragmentation.PER_RESOURCE]

    def test_triple_totals_identical(self, universes):
        totals = {mode: u.statistics()["triples"] for mode, u in universes.items()}
        assert len(set(totals.values())) == 1
