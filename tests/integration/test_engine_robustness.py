"""Robustness integration tests: cycles, provenance queries, concurrency."""

import asyncio

import pytest

from repro.ltqp import EngineConfig, LinkTraversalEngine
from repro.net import HttpClient, Internet, NoLatency, StaticApp
from repro.rdf import Variable


def turtle_doc(*links: str, extra: str = "") -> str:
    body = "".join(
        f"<#me> <https://vocab.example/links> <{link}> .\n" for link in links
    )
    return body + extra


class TestCyclicLinkGraphs:
    def build_cycle_world(self):
        """Three documents linking in a cycle, plus one dangling link."""
        internet = Internet()
        app = StaticApp()
        app.put("/a", turtle_doc("https://h/b", extra='<#me> <https://vocab.example/name> "A" .\n'))
        app.put("/b", turtle_doc("https://h/c"))
        app.put("/c", turtle_doc("https://h/a", "https://h/missing"))
        internet.register("https://h", app)
        return internet

    def test_traversal_terminates_on_cycles(self):
        from repro.ltqp import AllIriExtractor

        internet = self.build_cycle_world()
        engine = LinkTraversalEngine(
            HttpClient(internet, latency=NoLatency()), extractors=[AllIriExtractor()]
        )
        result = engine.execute_sync(
            "SELECT ?n WHERE { ?s <https://vocab.example/name> ?n }",
            seeds=["https://h/a"],
        )
        assert len(result) == 1
        # a, b, c fetched exactly once; /missing 404s once (cAll also
        # dereferences the vocabulary IRIs, which we ignore here).
        fetched = [r.url for r in engine.client.log.records if r.url.startswith("https://h/")]
        assert sorted(fetched) == [
            "https://h/a",
            "https://h/b",
            "https://h/c",
            "https://h/missing",
        ]

    def test_self_referencing_document(self):
        from repro.ltqp import AllIriExtractor

        internet = Internet()
        app = StaticApp()
        app.put("/self", turtle_doc("https://h/self#frag"))
        internet.register("https://h", app)
        engine = LinkTraversalEngine(
            HttpClient(internet, latency=NoLatency()), extractors=[AllIriExtractor()]
        )
        result = engine.execute_sync("SELECT ?o WHERE { ?s ?p ?o }", seeds=["https://h/self"])
        assert engine.client.log.records[0].url == "https://h/self"
        assert len(engine.client.log) == 2  # self + the vocab predicate IRI


class TestProvenanceQueries:
    def test_graph_variable_binds_document_urls(self, tiny_universe):
        """Traversal keeps per-document provenance: GRAPH ?g exposes which
        document each triple came from — streamed, not snapshot."""
        webid = tiny_universe.webid(0)
        pod = tiny_universe.pod_of(0)
        engine = tiny_universe.fast_engine()
        query = f"""
        PREFIX snvoc: <https://solidbench.linkeddatafragments.org/www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/>
        SELECT DISTINCT ?g WHERE {{
          GRAPH ?g {{ ?m snvoc:hasCreator <{webid}> }}
        }}
        """
        result = engine.execute_sync(query, seeds=[webid])
        assert result.stats.streaming
        documents = {b[Variable("g")].value for b in result.bindings}
        assert documents
        assert all(url.startswith(pod.base_url) for url in documents)
        # Provenance URLs are real fetched documents.
        fetched = {r.url for r in engine.client.log.records}
        assert documents <= fetched


class TestWorkerConcurrency:
    @pytest.mark.parametrize("workers", [1, 4, 16])
    def test_answers_independent_of_worker_count(self, tiny_universe, workers):
        from repro.solidbench import discover_query

        query = discover_query(tiny_universe, 2, 1)
        engine = LinkTraversalEngine(
            tiny_universe.client(latency=NoLatency()),
            config=EngineConfig(worker_count=workers),
        )
        result = engine.execute_sync(query.text, seeds=query.seeds)
        baseline = tiny_universe.fast_engine().execute_sync(query.text, seeds=query.seeds)
        assert set(result.bindings) == set(baseline.bindings)

    def test_concurrent_executions_do_not_interfere(self, tiny_universe):
        from repro.solidbench import discover_query

        async def run_many():
            queries = [discover_query(tiny_universe, t, 1) for t in (1, 2, 4)]
            engines = [tiny_universe.fast_engine() for _ in queries]
            return await asyncio.gather(
                *[
                    engine.execute(query.text, seeds=query.seeds)
                    for engine, query in zip(engines, queries)
                ]
            )

        results = asyncio.run(run_many())
        assert all(len(result) > 0 for result in results)
