"""Integration tests: traversal under injected faults (the ISSUE scenario).

A seeded 20% transient-fault plan with the default retry policy must
yield *exactly* the fault-free answer; the same plan with resilience
disabled must demonstrably lose results — and say so in the stats'
completeness report.
"""

import pytest

from repro.ltqp import EngineConfig, LinkTraversalEngine, NetworkPolicy
from repro.net.faults import FaultPlan, FaultRule
from repro.net.resilience import BreakerPolicy, RetryPolicy
from repro.solidbench import discover_query


def fast_network() -> NetworkPolicy:
    """Default resilience semantics, negligible backoff sleeps."""
    return NetworkPolicy(retry=RetryPolicy(base_delay=0.0001, max_delay=0.001))


def run_with_plan(universe, query, plan, network):
    universe.internet.install_fault_plan(plan)
    try:
        engine = universe.fast_engine(config=EngineConfig(network=network))
        return engine.query(query.text, seeds=query.seeds).run_sync()
    finally:
        universe.internet.install_fault_plan(None)


def multiset(execution):
    return sorted(repr(binding) for binding in execution.bindings)


class TestTransientFaultRecovery:
    def test_discover_8_5_identical_under_20_percent_faults(self, tiny_universe):
        query = discover_query(tiny_universe, 8, 5)
        baseline = run_with_plan(tiny_universe, query, None, fast_network())
        assert len(baseline) > 0
        faulted = run_with_plan(
            tiny_universe, query, FaultPlan.transient(rate=0.2, seed=13), fast_network()
        )
        assert multiset(faulted) == multiset(baseline)
        assert faulted.stats.http_retries > 0  # faults actually happened
        assert faulted.stats.completeness()["complete"]

    def test_no_retry_loses_results_and_reports_loss(self, tiny_universe):
        query = discover_query(tiny_universe, 8, 5)
        baseline = run_with_plan(tiny_universe, query, None, fast_network())
        degraded = run_with_plan(
            tiny_universe,
            query,
            FaultPlan.transient(rate=0.2, seed=13),
            NetworkPolicy.no_retry(),
        )
        assert len(degraded) < len(baseline)
        report = degraded.stats.completeness()
        assert not report["complete"]
        assert report["documents_abandoned"] > 0
        assert report["estimated_missing_links"] > 0
        assert degraded.stats.documents_attempted == (
            degraded.stats.documents_fetched + degraded.stats.documents_abandoned
        )

    def test_completeness_surfaces_in_summary(self, tiny_universe):
        query = discover_query(tiny_universe, 1, 5)
        execution = run_with_plan(
            tiny_universe, query, FaultPlan.transient(rate=0.2, seed=13), fast_network()
        )
        summary = execution.stats.summary()
        assert "completeness" in summary
        assert summary["completeness"]["complete"]
        assert summary["completeness"]["http_retries"] == execution.stats.http_retries


class TestOriginOutage:
    def test_dead_origin_trips_breaker_and_is_reported(self, tiny_universe):
        query = discover_query(tiny_universe, 1, 5)
        # Kill the single origin every pod lives on: traversal gets nothing.
        origin = query.seeds[0].split("/pods/")[0]
        execution = run_with_plan(
            tiny_universe,
            query,
            FaultPlan.origin_outage(origin),
            NetworkPolicy(
                retry=RetryPolicy(max_attempts=2, base_delay=0.0001, max_delay=0.001),
                breaker=BreakerPolicy(failure_threshold=3, recovery_seconds=60.0),
            ),
        )
        assert len(execution) == 0
        report = execution.stats.completeness()
        assert not report["complete"]
        assert report["origins_tripped"].get(origin, 0) >= 1
        assert execution.stats.breaker_fast_fails >= 0  # seeds may trip it late


class TestLinkRequeue:
    def test_retryable_failure_requeues_until_budget(self, tiny_universe):
        """A fault outliving client retries is re-queued, then abandoned."""
        query = discover_query(tiny_universe, 1, 5)
        seed_url = query.seeds[0].split("#", 1)[0]
        # Fault the seed profile for more attempts than one fetch retries.
        plan = FaultPlan(
            [FaultRule(kind="status", status=503, url_pattern=seed_url, fail_attempts=3)]
        )
        network = NetworkPolicy(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0001, max_delay=0.001),
            max_link_requeues=2,
        )
        execution = run_with_plan(tiny_universe, query, plan, network)
        # attempt 1: 2 client tries (both faulted); re-queue; attempt 2:
        # first try faulted, second passes — traversal completes fully.
        assert execution.stats.documents_retried >= 1
        assert len(execution) > 0
        assert execution.stats.completeness()["complete"]
