"""End-to-end integration tests: the full demo scenario in miniature.

These tests execute Discover queries through the complete stack —
SolidBench pods → Solid server → simulated HTTP → LTQP engine — and
compare against the ground-truth oracle (the same query over the union of
all generated documents).  LTQP completeness is relative to the reachable
subweb; for the Discover suite over SolidBench's link structure, the
reachable answer equals the full answer, which is exactly what the paper's
demo relies on.
"""

import pytest

from repro.bench.harness import run_query, run_suite
from repro.ltqp import EngineConfig, LinkTraversalEngine
from repro.net import NoLatency, RequestLog
from repro.solidbench.queries import discover_query, discover_suite


class TestDiscoverTemplatesComplete:
    @pytest.mark.parametrize("template", range(1, 9))
    def test_template_matches_oracle(self, tiny_universe, template):
        query = discover_query(tiny_universe, template, 1)
        report = run_query(tiny_universe, query)
        assert report.complete is True, f"{query.name}: {report.result_count} vs {report.oracle_count}"

    def test_all_templates_return_results(self, tiny_universe):
        for template in range(1, 9):
            query = discover_query(tiny_universe, template, 1)
            report = run_query(tiny_universe, query, check_oracle=False)
            assert report.result_count > 0, query.name


class TestSuiteRun:
    def test_whole_suite_runs_without_errors(self, tiny_universe):
        # E7's assertion at test scale: all 37 default queries execute.
        reports = run_suite(tiny_universe, discover_suite(tiny_universe), check_oracle=False)
        assert len(reports) == 37
        assert all(r.result_count >= 0 for r in reports)
        assert sum(r.result_count for r in reports) > 0


class TestStreamingBehaviour:
    def test_results_arrive_before_traversal_finishes(self, tiny_universe):
        query = discover_query(tiny_universe, 2, 1)
        report = run_query(tiny_universe, query, check_oracle=False)
        assert report.streaming
        # First result strictly earlier than the last request completion.
        assert report.time_to_first_result < report.total_time

    def test_waterfall_shows_dependency_chain(self, tiny_universe):
        # Fig. 4's shape: card → pod root → containers → dated files.
        query = discover_query(tiny_universe, 1, 1)
        report = run_query(tiny_universe, query, check_oracle=False)
        assert report.waterfall.max_depth >= 3

    def test_multi_pod_query_touches_more_documents(self, tiny_universe):
        single = run_query(tiny_universe, discover_query(tiny_universe, 1, 1), check_oracle=False)
        multi = run_query(tiny_universe, discover_query(tiny_universe, 8, 1), check_oracle=False)
        assert multi.documents_fetched > single.documents_fetched


class TestAuthenticatedQuerying:
    def test_private_documents_require_login(self, tiny_universe):
        universe = tiny_universe
        person = 0
        pod = universe.pod_of(person)
        acl = universe.server.acl_for(pod)
        # Make this pod's posts private (owner-only).
        acl.restrict("posts/")
        try:
            query = discover_query(universe, 1, 1, person_index=person)

            anonymous = run_query(universe, query, check_oracle=False)
            session = universe.idp.login(universe.webid(person))
            authed = run_query(
                universe, query, check_oracle=False, auth_headers=session.headers
            )
            assert anonymous.result_count == 0
            assert authed.result_count > 0
        finally:
            # Restore public access for other tests (session-scoped fixture).
            from repro.solid.acl import AclRule

            acl._rules.pop("posts/", None)

    def test_failed_documents_counted(self, tiny_universe):
        universe = tiny_universe
        pod = universe.pod_of(1)
        acl = universe.server.acl_for(pod)
        acl.restrict("comments/")
        try:
            query = discover_query(universe, 2, 1, person_index=1)
            report = run_query(universe, query, check_oracle=False)
            assert report.documents_failed > 0
        finally:
            acl._rules.pop("comments/", None)


class TestFailureInjection:
    def test_missing_pod_degrades_gracefully(self, tiny_universe):
        engine = tiny_universe.fast_engine()
        query = discover_query(tiny_universe, 1, 1)
        seeds = ["https://solidbench.example/pods/99999999999999999999/profile/card"]
        result = engine.execute_sync(query.text, seeds=seeds)
        assert len(result) == 0
        assert result.stats.documents_failed == 1

    def test_unknown_origin_seed(self, tiny_universe):
        engine = tiny_universe.fast_engine()
        query = discover_query(tiny_universe, 1, 1)
        result = engine.execute_sync(query.text, seeds=["https://dead.example/card"])
        assert len(result) == 0


class TestLatencyRealism:
    def test_jittered_latency_creates_parallelism(self, tiny_universe):
        # With real per-request latency, the engine overlaps fetches — the
        # parallel bars visible in the paper's Fig. 4/5 waterfalls.
        from repro.net import SeededJitterLatency

        query = discover_query(tiny_universe, 1, 1)
        report = run_query(
            tiny_universe,
            query,
            latency=SeededJitterLatency(seed=3, min_rtt_seconds=0.002, max_rtt_seconds=0.01),
            check_oracle=False,
        )
        assert report.waterfall.max_parallelism >= 2
