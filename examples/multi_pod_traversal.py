"""Multi-pod traversal: the paper's Discover 8.5 scenario (§4.2, Fig. 5).

"Discover 8.5 targets multiple Solid pods and will return all posts by
authors of posts that a given person likes. ... all of this happens
automatically in the background without requiring any user interaction."

This example runs that query, then dissects *how* the engine crossed pod
boundaries: which pods were touched, which extractor discovered each
link, and how results streamed in while traversal was still running.

Run:  python examples/multi_pod_traversal.py
"""

import re
from collections import Counter

from repro.bench import build_waterfall, render_waterfall
from repro.solidbench import SolidBenchConfig, build_universe, discover_query


def main() -> None:
    universe = build_universe(SolidBenchConfig(scale=0.02, seed=42))
    query = discover_query(universe, template=8, variant=4)
    person = universe.network.persons[query.person_index]
    print(f"{query.name}: {query.description}")
    print(f"seed person: {person.name} ({query.seeds[0]})\n")

    engine = universe.engine()
    result = engine.query(query.text, seeds=query.seeds).run_sync()

    # Which pods did traversal reach, starting from one WebID?
    pods = Counter()
    for record in engine.client.log.records:
        match = re.search(r"/pods/(\d+)/", record.url)
        if match:
            pods[match.group(1)] += 1
    print(f"{len(result)} results from {len(pods)} pods "
          f"({result.stats.documents_fetched} documents, "
          f"{result.stats.links_queued} links queued)")
    for pod_name, requests in pods.most_common(5):
        owner = next(
            p.name for p in universe.network.persons if p.pod_name == pod_name
        )
        print(f"  pod {pod_name} ({owner}): {requests} requests")

    # Which extractors found the links? (paper §2: Solid-specific +
    # Solid-agnostic strategies work together)
    print(f"\nlinks per extractor: {result.stats.links_by_extractor}")

    # Streaming profile: results arrive while traversal is running.
    times = [timed.elapsed for timed in result.results]
    if times:
        print(f"first result: {times[0]:.3f}s, last: {times[-1]:.3f}s, "
              f"traversal finished: {result.stats.total_time:.3f}s")

    print("\nResource waterfall (cf. paper Fig. 5):")
    print(render_waterfall(build_waterfall(engine.client.log), max_rows=20))


if __name__ == "__main__":
    main()
