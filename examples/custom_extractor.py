"""Plugging in a custom link-extraction strategy (paper §3).

"we have implemented our approach as several small modules, which allows
modules to be enabled or disabled using a plug-and-play configuration
system for the flexible combination of techniques during experimentation"

This example writes a new extractor — one that follows ``snvoc:knows``
links to friends' WebIDs (a social-graph crawler) — combines it with the
standard stack, and compares traversal footprints across configurations.

Run:  python examples/custom_extractor.py
"""

from repro.ltqp import (
    LdpContainerExtractor,
    LinkExtractor,
    MatchIriExtractor,
    StorageExtractor,
    TypeIndexExtractor,
)
from repro.rdf import NamedNode, SNVOC
from repro.solidbench import SolidBenchConfig, build_universe, discover_query


class FriendExtractor(LinkExtractor):
    """Follow ``snvoc:knows`` edges to friends' WebIDs, up to a budget.

    Not part of the paper's stack — it demonstrates how a five-line module
    changes traversal behaviour: the engine starts exploring the social
    neighbourhood instead of staying inside the seed pod.
    """

    name = "friends"

    def __init__(self, max_friends: int = 10) -> None:
        self._budget = max_friends

    def extract(self, document_url, triples, context):
        for triple in triples:
            if self._budget <= 0:
                return
            if triple.predicate == SNVOC.knows and isinstance(triple.object, NamedNode):
                self._budget -= 1
                yield triple.object.value


def run(universe, query, extractors, label):
    engine = universe.engine(extractors=extractors)
    result = engine.query(query.text, seeds=query.seeds).run_sync()
    print(f"{label:<22} results={len(result):4d}  documents={result.stats.documents_fetched:4d}  "
          f"links={result.stats.links_queued:4d}  by={result.stats.links_by_extractor}")
    return result


def main() -> None:
    universe = build_universe(SolidBenchConfig(scale=0.01, seed=42))
    query = discover_query(universe, template=2, variant=1)
    print(f"{query.name}: {query.description}\n")

    standard = [
        MatchIriExtractor(),
        LdpContainerExtractor(),
        StorageExtractor(),
        TypeIndexExtractor(),
    ]
    run(universe, query, standard, "standard stack")

    # Fresh instances: extractors may carry per-execution state.
    with_friends = [
        MatchIriExtractor(),
        LdpContainerExtractor(),
        StorageExtractor(),
        TypeIndexExtractor(),
        FriendExtractor(max_friends=5),
    ]
    run(universe, query, with_friends, "standard + friends")

    minimal = [MatchIriExtractor(), StorageExtractor(), TypeIndexExtractor()]
    run(universe, query, minimal, "no container crawl")


if __name__ == "__main__":
    main()
