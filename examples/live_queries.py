"""Standing queries: signed deltas instead of re-execution.

``examples/live_data.py`` shows the paper's "live data" point the way
the demo makes it: change a pod, re-run the query, the new answers are
there — no index to refresh.  This example shows the stronger form this
repo adds on top: a *standing* query that never re-runs.  After the
initial traversal the pipeline stays open; an edit costs one
conditional fetch of the changed document, one diff against the stored
parse, and a signed delta (``+1`` binding appeared / ``-1`` binding
retracted) through the retained operators.  The live-maintenance bench
(``benchmarks/bench_live.py``) holds this path ≥10× faster than
re-execution — in practice several hundred times.

Two layers are demonstrated:

1. :class:`repro.ltqp.live.LiveQuery` directly — ``start()``, an
   owner-authenticated PATCH, ``refresh(url)`` returning the signed
   events;
2. the same thing hosted on a :class:`repro.service.QueryService` —
   ``subscribe()``, ``apply_update()``, and the event queue a client
   would long-poll (over HTTP this is ``GET /subscribe`` +
   ``POST /update``; ``repro-sparql-ltqp watch`` is the CLI form).

Run:  python examples/live_queries.py
"""

import asyncio
from urllib.parse import urlsplit

from repro.ltqp import LinkTraversalEngine
from repro.ltqp.live import LiveQuery
from repro.net import NoLatency
from repro.net.message import Request
from repro.service import QueryService, SharedResources
from repro.solidbench import SolidBenchConfig, build_universe

FOAF = "http://xmlns.com/foaf/0.1/"


def show(events) -> None:
    for event in events:
        sign = f"+{event.delta}" if event.delta > 0 else str(event.delta)
        row = ", ".join(
            f"?{var.value}={term}" for var, term in sorted(
                event.binding.items(), key=lambda item: item[0].value
            )
        )
        suffix = f"  # {event.url}" if event.url else ""
        print(f"  {sign} {row}{suffix}")


async def patch(universe, url: str, update: str) -> None:
    """Owner-authenticated SPARQL Update against one pod document."""
    parts = urlsplit(url)
    app = universe.internet.app_for(f"{parts.scheme}://{parts.netloc}")
    headers = {"content-type": "application/sparql-update"}
    headers.update(app.login_owner(parts.path))
    response = await universe.internet.dispatch(
        Request("PATCH", url, headers, update.encode("utf-8"))
    )
    print(f"PATCH {url} -> {response.status}")


def rename(webid: str, old: str, new: str) -> str:
    return (
        f'DELETE DATA {{ <{webid}> <{FOAF}name> "{old}" }} ;\n'
        f'INSERT DATA {{ <{webid}> <{FOAF}name> "{new}" }}'
    )


async def standing_live_query(universe) -> None:
    """Layer 1: LiveQuery — the engine-level standing query."""
    pod = next(iter(universe.pods.values()))
    query = (
        f"SELECT ?friend ?name WHERE {{ <{pod.webid}> <{FOAF}knows> ?friend . "
        f"?friend <{FOAF}name> ?name }}"
    )
    engine = LinkTraversalEngine(universe.client(latency=NoLatency()))
    live = LiveQuery(engine, query, seeds=[pod.profile_url])

    initial = await live.start()
    print(f"friends of {pod.owner_name}: {len(initial)} initial results")

    # Rename one friend in their own pod, then refresh just that document.
    binding = {var.value: term for var, term in initial[0].items()}
    friend, old_name = binding["friend"].value, binding["name"].value
    document = friend.split("#", 1)[0]
    await patch(universe, document, rename(friend, old_name, "Vera Updated"))

    events = await live.refresh(document)
    print(f"refresh({document.rsplit('/', 2)[-2]}/...): {len(events)} signed events")
    show(events)
    # current_results() is always exactly the replay of the event log.
    assert sum(live.current_results().values()) == len(initial)
    live.close()


async def service_subscription(universe) -> None:
    """Layer 2: the same standing query hosted on the QueryService."""
    pod = next(iter(universe.pods.values()))
    resources = SharedResources.for_universe(universe, latency=NoLatency())
    service = QueryService(resources)

    query = f"SELECT ?name WHERE {{ <{pod.webid}> <{FOAF}name> ?name }}"
    subscription = await service.subscribe(query, seeds=[pod.profile_url])
    queue = subscription.queue()  # pre-loaded with the full event history
    print(f"\nsubscribed {subscription.id}: owner name of {pod.owner_name}")
    show([await queue.get()])

    # The service applies the edit (owner-authenticated PATCH) and drains
    # the change notification into the subscription's event stream.
    report = await service.apply_update(
        pod.profile_url, rename(pod.webid, pod.owner_name, "Renamed Owner")
    )
    print(f"apply_update -> HTTP {report['status']}, {report['events']} events")
    show([await queue.get() for _ in range(2)])

    await subscription.close()
    assert await queue.get() is None  # end-of-stream sentinel
    print(f"closed; {service.statistics()['subscriptions']} subscriptions remain")


def main() -> None:
    universe = build_universe(SolidBenchConfig(scale=0.01, seed=42))

    async def run():
        await standing_live_query(universe)
        await service_subscription(universe)

    asyncio.run(run())


if __name__ == "__main__":
    main()
