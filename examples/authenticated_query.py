"""Authenticated querying over permissioned pods (paper §3).

"Since certain documents within Solid pods may exist behind
document-level access control, our implementation supports
authentication. This allows users to log into the query engine using
their Solid WebID, after which the query engine will execute queries on
their behalf across all data the user can access."

This example makes one person's posts private, shows that an anonymous
query no longer sees them, then logs in as the pod owner and as a
stranger to demonstrate document-level WAC enforcement end to end.

Run:  python examples/authenticated_query.py
"""

from repro.solidbench import SolidBenchConfig, build_universe, discover_query


def main() -> None:
    universe = build_universe(SolidBenchConfig(scale=0.01, seed=42))

    # Pick a person and make their posts subtree private (owner-only).
    person_index = 2
    pod = universe.pod_of(person_index)
    owner = universe.network.persons[person_index]
    acl = universe.server.acl_for(pod)
    acl.restrict("posts/")
    print(f"made {owner.name}'s posts/ private (WAC owner-only rule)\n")

    query = discover_query(universe, template=1, variant=1, person_index=person_index)

    # 1. Anonymous: traversal hits 401s on the post documents.
    engine = universe.engine()
    anonymous = engine.query(query.text, seeds=query.seeds).run_sync()
    print(f"anonymous:      {len(anonymous):4d} results "
          f"({anonymous.stats.documents_failed} documents denied)")

    # 2. Logged in as the owner: the engine sends the bearer token with
    #    every dereference and sees everything.
    session = universe.idp.login(universe.webid(person_index))
    engine = universe.engine(auth_headers=session.headers)
    as_owner = engine.query(query.text, seeds=query.seeds).run_sync()
    print(f"as {owner.name}: {len(as_owner):4d} results "
          f"({as_owner.stats.documents_failed} documents denied)")

    # 3. Logged in as someone else: authenticated but not authorized.
    stranger = universe.idp.login(universe.webid((person_index + 1) % universe.person_count))
    engine = universe.engine(auth_headers=stranger.headers)
    as_stranger = engine.query(query.text, seeds=query.seeds).run_sync()
    print(f"as a stranger:  {len(as_stranger):4d} results "
          f"({as_stranger.stats.documents_failed} documents denied)")

    assert len(as_owner) > len(anonymous) == len(as_stranger) == 0
    print("\ndocument-level access control enforced; "
          "the engine queried on the logged-in user's behalf.")


if __name__ == "__main__":
    main()
