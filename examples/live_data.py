"""Querying live, changing pods — no index to refresh (paper §1).

A key LTQP selling point the paper states directly: a traversal-based
approach "does not rely on prior indexes over Solid pods, and can query
over live data that is spread over multiple pods."

This example runs a query, then *changes the world* — one person posts a
new message via a Solid ``PATCH`` (SPARQL Update), another publishes a
brand-new document via ``PUT`` — and re-runs the same query.  The new
answers appear immediately, because there is no index that could have
gone stale.

Run:  python examples/live_data.py
"""

import asyncio

from repro.ltqp import LinkTraversalEngine
from repro.net import NoLatency
from repro.net.message import Request
from repro.rdf import SNVOC
from repro.solidbench import SolidBenchConfig, build_universe, discover_query

SNB = f"PREFIX snvoc: <{SNVOC.base}>\n"


async def write(universe, method, url, body, content_type, session):
    request = Request(
        method,
        url,
        headers={"content-type": content_type, **session.headers},
        body=body.encode("utf-8"),
    )
    response = await universe.internet.dispatch(request)
    print(f"{method} {url} -> {response.status}")
    return response


def count_results(universe, query):
    engine = LinkTraversalEngine(universe.client(latency=NoLatency()))
    return len(engine.query(query.text, seeds=query.seeds).run_sync())


def main() -> None:
    universe = build_universe(SolidBenchConfig(scale=0.01, seed=42))
    query = discover_query(universe, template=2, variant=1)  # all messages of P
    person_index = query.person_index
    pod = universe.pod_of(person_index)
    person = universe.network.persons[person_index]
    print(f"{query.name} for {person.name}\n")

    before = count_results(universe, query)
    print(f"results before updates: {before}")

    session = universe.idp.login(universe.webid(person_index))

    # 1. PATCH an existing document: the person writes a new post into
    #    one of their dated post files.
    target_path = next(p for p in pod.document_paths() if p.startswith("posts/"))
    target_url = pod.base_url + target_path
    patch_body = SNB + (
        f"INSERT DATA {{ <{target_url}#breaking> a snvoc:Post ;\n"
        f"  snvoc:hasCreator <{pod.webid}> ;\n"
        f'  snvoc:content "Breaking: live updates work!" ;\n'
        f"  snvoc:id 999999 . }}"
    )
    asyncio.run(write(universe, "PATCH", target_url, patch_body,
                      "application/sparql-update", session))

    # 2. PUT a brand-new document: it appears in the pod's LDP container
    #    listing, so traversal discovers it with no further setup.
    new_url = pod.base_url + "posts/2026-07-07"
    put_body = (
        f"<{new_url}#fresh> a <{SNVOC.Post.value}> ;\n"
        f"  <{SNVOC.hasCreator.value}> <{pod.webid}> ;\n"
        f'  <{SNVOC.content.value}> "A whole new document." ;\n'
        f"  <{SNVOC.id.value}> 1000000 ."
    )
    asyncio.run(write(universe, "PUT", new_url, put_body, "text/turtle", session))

    after = count_results(universe, query)
    print(f"results after updates:  {after}  (+{after - before})")
    assert after == before + 2
    print("\nno index was rebuilt — traversal found the new data by itself.")


if __name__ == "__main__":
    main()
