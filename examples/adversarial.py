"""Hostile pods vs traversal hardening: bound the attack, keep the answer.

Deploys the seeded hostile-pod generator (a link trap, a growing
document, an oversized document, and a cross-pod poisoner, each on its
own origin) next to the benign SolidBench pods, lures traversal into it,
and runs the same Discover query twice:

* unhardened — the engine chases the trap until its global document
  budget saves it, swallows the oversized document whole, and emits
  fabricated (watermarked) results the poisoner planted;
* hardened — per-origin dereference budgets, a per-document byte cap,
  and fair queueing contain every attack, the refusals are attributed
  by kind and origin in ``stats.completeness()``, and the results are
  identical to an adversary-free run.

Run:  python examples/adversarial.py
"""

from repro import EngineConfig, NetworkPolicy, RetryPolicy
from repro.ltqp import TraversalPolicy
from repro.net import NoLatency
from repro.solidbench import SolidBenchConfig, build_universe, discover_query
from repro.solidbench.adversary import (
    AdversaryPlan,
    deploy_adversary,
    restrict_to_benign,
)


def run(universe, query, lures=(), traversal=None, max_documents=0, benign_seeds=True):
    engine = universe.engine(
        latency=NoLatency(),
        config=EngineConfig(
            network=NetworkPolicy(retry=RetryPolicy.disabled(), max_link_requeues=0),
            traversal=traversal if traversal is not None else TraversalPolicy(),
            max_documents=max_documents,
        ),
    )
    seeds = (list(query.seeds) if benign_seeds else []) + list(lures)
    return engine.query(query.text, seeds=seeds).run_sync()


def main() -> None:
    universe = build_universe(SolidBenchConfig(scale=0.01, seed=42))
    query = discover_query(universe, template=1, variant=5)
    print(f"running {query.name}: {query.description}")

    # Adversary-free reference run.
    reference = run(universe, query)
    print(f"\nadversary-free: {len(reference)} results")

    # Plant four attack classes, each on its own https://adv-*.example
    # origin; benign documents are never touched — traversal only reaches
    # the adversary through the lure seeds appended below.
    plan = AdversaryPlan(
        seed=7,
        kinds=("link-trap", "growing-doc", "oversized-doc", "poison"),
        oversized_bytes=256 * 1024,
    )
    deployment = deploy_adversary(
        universe.internet, plan, targets=[universe.webid(query.person_index)]
    )
    try:
        # -- attack cost: follow only the lures, nothing benign ---------
        # Unhardened, the trap spins until the global document budget
        # saves the run; hardened, each hostile origin gets 8 documents.
        naive_lured = run(
            universe, query, lures=deployment.lures, max_documents=300,
            benign_seeds=False,
        )
        naive_cost = deployment.total_requests()
        hardened_lured = run(
            universe,
            query,
            benign_seeds=False,
            lures=deployment.lures,
            traversal=TraversalPolicy(
                max_origin_derefs=8,
                max_parse_bytes=64 * 1024,
                queue_policy="fair",
            ),
        )
        hardened_cost = deployment.total_requests() - naive_cost
        print(
            f"\nlured into the adversary, unhardened: {naive_cost} hostile "
            f"requests answered"
        )
        print(
            f"lured into the adversary, hardened:   {hardened_cost} hostile "
            f"requests ({naive_cost / max(1, hardened_cost):.0f}x cheaper)"
        )
        del naive_lured, hardened_lured

        # -- result integrity: benign seeds + lures together ------------
        # Budgets bound what the adversary can *cost*; what it can
        # *claim* is handled by provenance: every fabricated term carries
        # a hostile-origin IRI or watermark, so results restrict cleanly.
        before = deployment.total_requests()
        hardened = run(
            universe,
            query,
            lures=deployment.lures,
            traversal=TraversalPolicy(
                max_origin_derefs=256,  # generous for the benign origin
                max_parse_bytes=64 * 1024,
                queue_policy="fair",
            ),
        )
        combined_cost = deployment.total_requests() - before
        tainted = len(hardened.bindings) - len(restrict_to_benign(hardened.bindings))
        print(
            f"\ncombined run: {len(hardened)} results, {tainted} attributable "
            f"to the adversary (watermarked), {combined_cost} hostile requests"
        )
    finally:
        deployment.uninstall()

    identical = sorted(map(repr, restrict_to_benign(hardened.bindings))) == sorted(
        map(repr, reference.bindings)
    )
    print(f"benign-restricted answer identical to adversary-free run: {identical}")
    assert identical

    report = hardened.stats.completeness()
    print(f"\nrefusals by kind:   {report['refusals_by_kind']}")
    print(f"refusals by origin: {report['refusals_by_origin']}")
    print(f"complete: {report['complete']} (refused work is declared, not hidden)")


if __name__ == "__main__":
    main()
