"""Guided traversal: same answers, a fraction of the dereferences.

Builds a *hinted* SolidBench universe — every pod publishes a
``settings/cardinality`` source index describing its containers
(classes, predicates, document/entity counts) and its infrastructure —
and runs the same Discover query three ways:

* fifo — the zero-knowledge baseline; crawls everything reachable;
* guided — provenance-scored queue plus the hint documents: prunes
  infrastructure and query-irrelevant containers, orders the rest;
* guided + subweb spec — additionally scopes traversal to declared
  sources: foreign pods are only admitted when an already-fetched
  triple links to them via one of the spec's predicates.

All three produce the identical result multiset; the stats show where
the saved dereferences went (``pruned_by_rule`` attributes every
skipped link).

Run:  python examples/guided_traversal.py
"""

from repro.ltqp import EngineConfig
from repro.ltqp.guided import SubwebRule, SubwebSpecification
from repro.net import NoLatency
from repro.rdf.namespaces import SNVOC
from repro.solidbench import SolidBenchConfig, build_universe, discover_query


def declared_spec() -> SubwebSpecification:
    return SubwebSpecification(
        origins="declared",
        source_depth=2,  # a "source" is origin + /pods/<name>/
        admit_origins_via=(
            SNVOC.likes.value,
            SNVOC.hasPost.value,
            SNVOC.hasComment.value,
            SNVOC.hasReply.value,
            SNVOC.hasModerator.value,
        ),
        rules=(SubwebRule(match="**/noise/**", action="deny", label="noise"),),
    )


def run(universe, query, **config_kwargs):
    engine = universe.engine(latency=NoLatency(), config=EngineConfig(**config_kwargs))
    return engine.query(query.text, seeds=query.seeds).run_sync()


def main() -> None:
    universe = build_universe(
        SolidBenchConfig(scale=0.01, seed=42, emit_hints=True)
    )
    query = discover_query(universe, template=1, variant=1)
    print(f"running {query.name}: {query.description}")

    fifo = run(universe, query, queue_policy="fifo")
    print(
        f"\nfifo baseline:   {len(fifo)} results, "
        f"{fifo.stats.documents_fetched} documents fetched"
    )

    guided = run(universe, query, queue_policy="guided")
    print(
        f"guided (hints):  {len(guided)} results, "
        f"{guided.stats.documents_fetched} documents fetched"
    )

    scoped = run(
        universe, query, queue_policy="guided", subweb=declared_spec()
    )
    print(
        f"guided + spec:   {len(scoped)} results, "
        f"{scoped.stats.documents_fetched} documents fetched"
    )

    identical = (
        sorted(map(repr, fifo.bindings))
        == sorted(map(repr, guided.bindings))
        == sorted(map(repr, scoped.bindings))
    )
    print(f"\nidentical result multisets: {identical}")

    report = scoped.stats.completeness()
    print(f"spec-restricted answer: {report['spec_restricted']}")
    print("pruned links by rule:")
    for rule, count in sorted(report["pruned_by_rule"].items()):
        print(f"  {rule:<24} {count}")


if __name__ == "__main__":
    main()
