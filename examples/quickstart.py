"""Quickstart: query a simulated Solid environment by link traversal.

Builds a small SolidBench universe (the paper's demo environment in
miniature), picks a predefined Discover query, executes it with the
link-traversal engine, and prints the streamed results plus execution
statistics.

Run:  python examples/quickstart.py
"""

from repro.bench import render_waterfall, build_waterfall
from repro.solidbench import SolidBenchConfig, build_universe, discover_query


def main() -> None:
    # 1. A simulated decentralized environment: ~15 pods of social data
    #    behind a simulated HTTP layer (paper §4.2 uses 1,531 pods).
    universe = build_universe(SolidBenchConfig(scale=0.01, seed=42))
    print(f"simulated environment: {universe.statistics()}")

    # 2. One of the 37 predefined queries: all posts of a person.
    query = discover_query(universe, template=1, variant=5)
    print(f"\nrunning {query.name}: {query.description}")
    print(query.text)

    # 3. Execute by link traversal, starting from the person's WebID.
    engine = universe.engine()
    result = engine.query(query.text, seeds=query.seeds).run_sync()

    # 4. Results streamed in while traversal was still running.
    for timed in result.results[:5]:
        print(f"  [{timed.elapsed:.3f}s] {timed.binding}")
    if len(result) > 5:
        print(f"  ... and {len(result) - 5} more")

    print(f"\nstatistics: {result.stats.summary()}")

    # 5. The resource waterfall (paper Fig. 4): what was fetched, when,
    #    and which document's links led there.
    print(render_waterfall(build_waterfall(engine.client.log), max_rows=15))


if __name__ == "__main__":
    main()
