"""Serving the simulated pods over real HTTP sockets.

The in-process transport is the default for speed and determinism, but
the pods are ordinary HTTP apps: this example exposes them through a
real local HTTP server (stdlib sockets) and fetches a WebID profile and
an LDP container listing with ``urllib`` — proof that the Solid substrate
speaks actual HTTP, not just the simulation API.

Run:  python examples/real_http_demo.py
"""

import urllib.request

from repro.net import RealHttpServer
from repro.solidbench import SolidBenchConfig, build_universe


def fetch(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        print(f"GET {url}\n -> {response.status} {response.headers['content-type']}")
        return response.read().decode("utf-8")


def main() -> None:
    universe = build_universe(SolidBenchConfig(scale=0.01, seed=42))
    with RealHttpServer(universe.internet) as server:
        print(f"serving {universe.person_count} pods at {server.base_url}\n")

        webid_doc = universe.webid(0).split("#", 1)[0]
        profile = fetch(server.url_for(webid_doc))
        print(profile[:400], "...\n")

        pod = universe.pod_of(0)
        listing = fetch(server.url_for(pod.base_url + "posts/"))
        print(listing[:400], "...\n")

    print("server stopped")


if __name__ == "__main__":
    main()
