"""Fault-tolerant traversal: inject network faults, watch the engine recover.

Installs a seeded FaultPlan on the simulated Web (20% of URLs answer 503
on their first attempt), runs the same Discover query with the resilient
default client and with resilience disabled, and compares answers and
completeness reports — the resilient run is exact, the naive run loses
results and says so.

Run:  python examples/fault_tolerance.py
"""

from repro import EngineConfig, FaultPlan, NetworkPolicy, RetryPolicy
from repro.net import NoLatency
from repro.solidbench import SolidBenchConfig, build_universe, discover_query


def run(universe, query, network):
    engine = universe.engine(
        latency=NoLatency(), config=EngineConfig(network=network)
    )
    return engine.query(query.text, seeds=query.seeds).run_sync()


def main() -> None:
    universe = build_universe(SolidBenchConfig(scale=0.01, seed=42))
    query = discover_query(universe, template=8, variant=5)
    print(f"running {query.name}: {query.description}")

    # Fault-free reference run.
    reference = run(universe, query, NetworkPolicy())
    print(f"\nfault-free: {len(reference)} results")

    # 20% of URLs (seeded, deterministic) fail their first attempt.  Each
    # run gets a fresh plan: the per-URL attempt counters are state.
    try:
        universe.internet.install_fault_plan(FaultPlan.transient(rate=0.2, seed=13))
        resilient = run(
            universe,
            query,
            NetworkPolicy(retry=RetryPolicy(base_delay=0.001, max_delay=0.01)),
        )
        universe.internet.install_fault_plan(FaultPlan.transient(rate=0.2, seed=13))
        naive = run(universe, query, NetworkPolicy.no_retry())
    finally:
        universe.internet.install_fault_plan(None)

    print(f"\nwith 20% transient faults:")
    print(f"  resilient client: {len(resilient)} results "
          f"({resilient.stats.http_retries} retries, "
          f"{resilient.stats.documents_retried} links re-queued)")
    print(f"  naive client:     {len(naive)} results")

    assert sorted(map(repr, resilient.bindings)) == sorted(map(repr, reference.bindings))
    print("\nresilient answer identical to fault-free run: True")

    print(f"\nresilient completeness: {resilient.stats.completeness()}")
    print(f"naive completeness:     {naive.stats.completeness()}")


if __name__ == "__main__":
    main()
