"""Link traversal vs federated SPARQL, head to head (paper §1).

The paper motivates LTQP by arguing federated SPARQL "assume[s] sources
to be known prior to query execution" and is built for few large sources,
not many small ones.  This example stages the fairest possible fight:

* every pod gets its own SPARQL endpoint,
* the federation engine receives the complete endpoint list up front,
* both engines answer the same single-pod Discover query.

Watch the request counters: federation must probe *every* pod per triple
pattern; traversal discovers the one relevant pod and stops.

Run:  python examples/federation_comparison.py
"""

from repro.bench import render_table, run_query
from repro.bench.harness import oracle_bindings
from repro.federation import FederatedQueryEngine, attach_pod_endpoints
from repro.net import NoLatency
from repro.solidbench import SolidBenchConfig, build_universe, discover_query


def main() -> None:
    universe = build_universe(SolidBenchConfig(scale=0.02, seed=42))
    endpoints = attach_pod_endpoints(universe)
    query = discover_query(universe, template=1, variant=1)
    print(f"{universe.person_count} pods, each with a SPARQL endpoint")
    print(f"query: {query.name} — {query.description}\n")

    # Federation: full source knowledge, FedX-style evaluation.
    federation = FederatedQueryEngine(universe.client(latency=NoLatency()), endpoints)
    fed_results, fed_stats = federation.execute_sync(query.text)

    # Traversal: one seed URL, no source knowledge at all.
    ltqp = run_query(universe, query, check_oracle=True)

    expected = oracle_bindings(universe, query)
    print(
        render_table(
            [
                {
                    "engine": "federation (FedX-style)",
                    "needs source list": "yes (all %d)" % len(endpoints),
                    "requests": fed_stats.total_requests,
                    "results": len(fed_results),
                    "complete": "yes" if set(fed_results) == expected else "NO",
                },
                {
                    "engine": "link traversal",
                    "needs source list": "no (1 seed URL)",
                    "requests": ltqp.waterfall.request_count,
                    "results": ltqp.result_count,
                    "complete": "yes" if ltqp.complete else "NO",
                },
            ]
        )
    )
    print(
        f"federation probed {fed_stats.ask_probes} (pattern × endpoint) pairs "
        f"before evaluating anything;\ntraversal touched only the pods its "
        f"links led to."
    )


if __name__ == "__main__":
    main()
