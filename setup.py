import setuptools; setuptools.setup()
