"""SolidBench generator CLI.

``repro-solidbench --scale 0.05`` prints dataset statistics (paper §4.2);
``--out DIR`` additionally materializes every pod document as a Turtle
file on disk, mirroring the layout a real Solid server would host.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from .config import PAPER_SCALE_TARGETS, Fragmentation, SolidBenchConfig
from .queries import discover_suite
from .universe import build_universe

__all__ = ["main"]


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-solidbench", description="Generate a simulated SolidBench dataset"
    )
    parser.add_argument("--scale", type=float, default=0.02, help="fraction of paper scale")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--fragmentation",
        choices=[f.value for f in Fragmentation],
        default=Fragmentation.DATED.value,
    )
    parser.add_argument("--out", metavar="DIR", help="write pod documents as Turtle files")
    parser.add_argument("--queries", action="store_true", help="print the 37 Discover queries")
    args = parser.parse_args(argv)

    config = SolidBenchConfig(
        scale=args.scale, seed=args.seed, fragmentation=Fragmentation(args.fragmentation)
    )
    universe = build_universe(config)
    stats = universe.statistics()

    report = {
        "generated": stats,
        "paper_default_scale": {
            "pods": PAPER_SCALE_TARGETS["pods"],
            "files": PAPER_SCALE_TARGETS["files"],
            "triples": PAPER_SCALE_TARGETS["triples"],
        },
        "ratio_check": {
            "files_per_pod": round(stats["files_per_pod"], 1),
            "paper_files_per_pod": round(PAPER_SCALE_TARGETS["files_per_pod"], 1),
            "triples_per_file": round(stats["triples_per_file"], 1),
            "paper_triples_per_file": round(PAPER_SCALE_TARGETS["triples_per_file"], 1),
        },
    }
    print(json.dumps(report, indent=2))

    if args.out:
        root = Path(args.out)
        written = 0
        for pod in universe.pods.values():
            pod_dir = root / pod.base_url.rstrip("/").rsplit("/", 1)[-1]
            for path in pod.document_paths():
                target = pod_dir / (path + ".ttl")
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_text(pod.serialize_document(path), encoding="utf-8")
                written += 1
        print(f"# wrote {written} Turtle documents under {root}", file=sys.stderr)

    if args.queries:
        for query in discover_suite(universe):
            print(f"### {query.name} — {query.description}")
            print(query.text)
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
