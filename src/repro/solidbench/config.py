"""SolidBench generator configuration.

Scale calibration: SolidBench's default settings (paper §4.2) produce
1,531 pods, 158,233 RDF files, and 3,556,159 triples — roughly 103 files
and 2,323 triples per pod.  Our defaults reproduce those per-pod ratios;
``scale`` multiplies the person count (``scale=1.0`` ≈ the paper's scale,
benches default to small scales for speed).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Fragmentation", "SolidBenchConfig", "PAPER_SCALE_TARGETS"]

#: The dataset statistics the paper reports for the default SolidBench scale.
PAPER_SCALE_TARGETS = {
    "pods": 1531,
    "files": 158233,
    "triples": 3556159,
    "files_per_pod": 158233 / 1531,
    "triples_per_file": 3556159 / 158233,
}


class Fragmentation(str, Enum):
    """How a person's messages are distributed over pod documents.

    ``DATED`` (SolidBench's composite default): one document per creation
    date, e.g. ``posts/2010-10-12`` — the layout visible in the paper's
    Fig. 4 waterfall.  ``SINGLE`` puts all messages of a kind in one
    document; ``PER_RESOURCE`` gives every message its own document.
    """

    DATED = "dated"
    SINGLE = "single"
    PER_RESOURCE = "per-resource"


@dataclass(frozen=True)
class SolidBenchConfig:
    """Deterministic generator parameters.

    All randomness is drawn from ``random.Random(seed)``; identical configs
    produce byte-identical universes.
    """

    scale: float = 0.02
    seed: int = 42
    host: str = "https://solidbench.example"
    fragmentation: Fragmentation = Fragmentation.DATED

    # Per-person activity (means; actual values are seeded-random per person).
    posts_per_person: int = 35
    comments_per_person: int = 40
    likes_per_person: int = 30
    knows_per_person: int = 25
    albums_per_person: int = 8
    noise_files_per_person: int = 18
    noise_triples_per_file: int = 75
    tags_per_message: int = 3

    # The time window messages are spread over (matches LDBC SNB).
    start_year: int = 2010
    end_year: int = 2012

    #: Publish a per-pod source index at ``settings/cardinality`` (class
    #: partitions, predicate sets, cardinalities, predicate ranges) linked
    #: from the WebID via ``subweb:cardinalityIndex`` — the summary side of
    #: guided traversal (DESIGN.md §4g).  Off by default: a hinted universe
    #: has extra documents/triples per pod, which would shift the baseline
    #: zero-knowledge benchmarks.
    emit_hints: bool = False

    @property
    def person_count(self) -> int:
        return max(2, round(PAPER_SCALE_TARGETS["pods"] * self.scale))

    def with_scale(self, scale: float) -> "SolidBenchConfig":
        from dataclasses import replace

        return replace(self, scale=scale)
