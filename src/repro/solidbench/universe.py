"""Assembling the simulated SolidBench environment.

Ties everything together: generate the social network, fragment it into
pods, mount the pods on a :class:`~repro.solid.server.SolidServer`, stand
up the tag/place vocabulary origin (so links like ``dbpedia.org/Germany``
in the paper's Fig. 5 dereference to something), and expose factories for
clients, engines, and the ground-truth oracle dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..net.client import HttpClient
from ..net.latency import LatencyModel, NoLatency, SeededJitterLatency
from ..net.log import RequestLog
from ..net.router import Internet, StaticApp
from ..rdf.dataset import Dataset
from ..rdf.namespaces import DBPEDIA, RDFS, SNTAG
from ..rdf.terms import Literal, NamedNode, intern_iri
from ..rdf.triples import Quad, Triple
from ..rdf.writer import serialize_turtle
from ..solid.auth import IdentityProvider
from ..solid.pod import Pod
from ..solid.server import SolidServer
from ..ltqp.engine import EngineConfig, LinkTraversalEngine
from ..ltqp.extractors import LinkExtractor
from .config import SolidBenchConfig
from .fragmenter import PodFragmenter
from .social import PLACE_NAMES, TAG_NAMES, SocialNetwork, generate_social_network

__all__ = ["SolidBenchUniverse", "build_universe"]


@dataclass
class SolidBenchUniverse:
    """A fully wired simulated Solid environment."""

    config: SolidBenchConfig
    network: SocialNetwork
    fragmenter: PodFragmenter
    pods: dict[int, Pod]
    server: SolidServer
    internet: Internet
    idp: IdentityProvider
    _oracle: Optional[Dataset] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------

    def webid(self, person_index: int) -> str:
        return self.fragmenter.webid(person_index)

    def pod_of(self, person_index: int) -> Pod:
        return self.pods[person_index]

    @property
    def person_count(self) -> int:
        return len(self.network.persons)

    # ------------------------------------------------------------------
    # client / engine factories
    # ------------------------------------------------------------------

    def client(
        self,
        latency: Optional[LatencyModel] = None,
        log: Optional[RequestLog] = None,
        latency_scale: float = 1.0,
        cache=None,
    ) -> HttpClient:
        return HttpClient(
            self.internet,
            latency=latency if latency is not None else SeededJitterLatency(seed=self.config.seed),
            latency_scale=latency_scale,
            log=log,
            cache=cache,
        )

    def engine(
        self,
        extractors: Optional[list[LinkExtractor]] = None,
        config: Optional[EngineConfig] = None,
        latency: Optional[LatencyModel] = None,
        auth_headers: Optional[dict[str, str]] = None,
    ) -> LinkTraversalEngine:
        return LinkTraversalEngine(
            self.client(latency=latency),
            extractors=extractors,
            config=config,
            auth_headers=auth_headers,
        )

    def fast_engine(self, **kwargs) -> LinkTraversalEngine:
        """An engine with zero simulated latency (for tests)."""
        kwargs.setdefault("latency", NoLatency())
        return self.engine(**kwargs)

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------

    def oracle_dataset(self) -> Dataset:
        """Union of *all* generated documents, with per-document graphs.

        Evaluating a query here gives the complete answer over the whole
        universe — the completeness reference for LTQP executions.
        """
        if self._oracle is None:
            dataset = Dataset()
            for pod in self.pods.values():
                for document in pod.documents():
                    graph = intern_iri(pod.document_url(document.path))
                    for triple in document.triples:
                        dataset.add(Quad(triple.subject, triple.predicate, triple.object, graph))
            self._oracle = dataset
        return self._oracle

    # ------------------------------------------------------------------
    # statistics (bench E5)
    # ------------------------------------------------------------------

    def statistics(self) -> dict:
        """Dataset statistics in the shape the paper reports (§4.2)."""
        file_count = 0
        triple_count = 0
        for pod in self.pods.values():
            paths = pod.document_paths()
            file_count += len(paths)
            triple_count += pod.triple_count()
        return {
            "pods": len(self.pods),
            "files": file_count,
            "triples": triple_count,
            "files_per_pod": file_count / max(1, len(self.pods)),
            "triples_per_file": triple_count / max(1, file_count),
        }


def _build_vocabulary_app(config: SolidBenchConfig) -> tuple[str, StaticApp]:
    """The external origin serving tag and place documents.

    SolidBench hosts a DBpedia/tag slice next to the pods; traversal
    reaches it through ``snvoc:hasTag`` / ``snvoc:isLocatedIn`` objects
    (the "Germany" request in the paper's Fig. 5).
    """
    origin = "https://solidbench.linkeddatafragments.org"
    app = StaticApp()
    for tag in TAG_NAMES:
        node = SNTAG[tag]
        triples = [
            Triple(node, RDFS.label, Literal(tag.replace("_", " "))),
        ]
        path = "/" + node.value.split(origin + "/", 1)[1] if node.value.startswith(origin) else None
        if path:
            app.put(path, serialize_turtle(triples))
    for place in PLACE_NAMES:
        node = DBPEDIA[place]
        triples = [Triple(node, RDFS.label, Literal(place))]
        if node.value.startswith(origin):
            path = "/" + node.value.split(origin + "/", 1)[1]
            app.put(path, serialize_turtle(triples))
    # The SNB vocabulary terms themselves are dereferenceable (the engine
    # follows predicate IRIs of matching triples under cMatch).
    from ..rdf.namespaces import RDF, SNVOC

    for local in (
        "Person", "Post", "Comment", "Forum", "hasCreator", "content", "id",
        "creationDate", "browserUsed", "hasTag", "isLocatedIn", "replyOf",
        "hasReply", "likes", "hasPost", "hasComment", "knows", "containerOf",
        "hasModerator", "title", "firstName", "lastName",
    ):
        node = SNVOC[local]
        triples = [Triple(node, RDFS.label, Literal(local))]
        if node.value.startswith(origin):
            path = "/" + node.value.split(origin + "/", 1)[1]
            app.put(path, serialize_turtle(triples))
    return origin, app


def build_universe(config: Optional[SolidBenchConfig] = None) -> SolidBenchUniverse:
    """Generate and wire a complete simulated SolidBench environment."""
    if config is None:
        config = SolidBenchConfig()
    network = generate_social_network(config)
    fragmenter = PodFragmenter(network)
    pods = fragmenter.build_all_pods()

    idp = IdentityProvider(config.host)
    server = SolidServer(config.host, idp=idp)
    for pod in pods.values():
        server.mount(pod)

    internet = Internet()
    internet.register(config.host, server)
    vocab_origin, vocab_app = _build_vocabulary_app(config)
    if vocab_origin != config.host:
        internet.register(vocab_origin, vocab_app)

    return SolidBenchUniverse(
        config=config,
        network=network,
        fragmenter=fragmenter,
        pods=pods,
        server=server,
        internet=internet,
        idp=idp,
    )
