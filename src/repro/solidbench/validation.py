"""Validation manifests: expected results per Discover query.

SolidBench ships validation result sets so engines can be checked for
correctness, not just speed.  This module generates the same artifact for
our universe: a JSON manifest mapping each query id to its ground-truth
answer (computed by the snapshot oracle over all generated documents),
plus a checker that validates an engine execution against it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Union

from ..sparql.bindings import Binding
from ..sparql.eval import SnapshotEvaluator
from ..sparql.parser import parse_query
from ..sparql.results import binding_to_json_dict
from ..rdf.terms import BlankNode, Literal, NamedNode, Variable
from .queries import NamedQuery, discover_suite
from .universe import SolidBenchUniverse

__all__ = [
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_results",
    "ValidationReport",
]


def _binding_key(entry: dict) -> tuple:
    """Canonical, order-independent key for one solution."""
    return tuple(sorted((name, term["type"], term["value"], term.get("xml:lang", ""),
                         term.get("datatype", "")) for name, term in entry.items()))


def build_manifest(
    universe: SolidBenchUniverse, queries: Optional[Sequence[NamedQuery]] = None
) -> dict:
    """Compute expected results for each query over the oracle dataset."""
    if queries is None:
        queries = discover_suite(universe)
    oracle = SnapshotEvaluator(universe.oracle_dataset())
    manifest: dict = {
        "generator": {
            "scale": universe.config.scale,
            "seed": universe.config.seed,
            "fragmentation": universe.config.fragmentation.value,
        },
        "queries": {},
    }
    for query in queries:
        parsed = parse_query(query.text)
        bindings = [binding_to_json_dict(b) for b in oracle.select(parsed)]
        manifest["queries"][query.name] = {
            "template": query.template,
            "variant": query.variant,
            "seeds": list(query.seeds),
            "expected_count": len(bindings),
            "expected": bindings,
        }
    return manifest


def write_manifest(manifest: dict, path: Union[str, Path]) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")
    return target


def load_manifest(path: Union[str, Path]) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


class ValidationReport:
    """Outcome of validating one engine execution against the manifest."""

    def __init__(self, query_name: str, missing: list, unexpected: list) -> None:
        self.query_name = query_name
        self.missing = missing
        self.unexpected = unexpected

    @property
    def valid(self) -> bool:
        return not self.missing and not self.unexpected

    def __repr__(self) -> str:
        return (
            f"<ValidationReport {self.query_name}: "
            f"{'ok' if self.valid else f'-{len(self.missing)}/+{len(self.unexpected)}'}>"
        )


def validate_results(
    manifest: dict, query_name: str, bindings: Sequence[Binding]
) -> ValidationReport:
    """Compare an engine's answer set against the manifest entry."""
    entry = manifest["queries"].get(query_name)
    if entry is None:
        raise KeyError(f"query {query_name!r} not in manifest")
    expected = {_binding_key(e) for e in entry["expected"]}
    actual = {_binding_key(binding_to_json_dict(b)) for b in bindings}
    missing = sorted(expected - actual)
    unexpected = sorted(actual - expected)
    return ValidationReport(query_name, missing, unexpected)
