"""The SolidBench "Discover" SPARQL query suite.

Eight query templates over the social-network data, each instantiated for
several seed persons, yielding the 37 default queries the paper's demo UI
offers (§4.2).  Template 1 and 8 are the two queries walked through in the
demonstration scenario (Figs. 4 and 5); template 6 is the UI screenshot
query (Fig. 3).

Query ids follow SolidBench's ``<template>.<variant>`` convention
("Discover 1.5", "Discover 8.5", ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..rdf.namespaces import RDF, SNVOC
from .universe import SolidBenchUniverse

__all__ = ["NamedQuery", "discover_query", "discover_suite", "TEMPLATE_DESCRIPTIONS"]

TEMPLATE_DESCRIPTIONS = {
    1: "All posts of a given person",
    2: "All messages (posts and comments) of a given person",
    3: "All comments replying to messages of a given person",
    4: "All tags used on messages of a given person",
    5: "All locations of posts of a given person",
    6: "All forums containing messages of a given person",
    7: "All moderators of forums containing messages of a given person",
    8: "All content by creators of messages a given person likes",
}

#: variants per template: 5+5+5+5+5+4+4+4 = 37 default queries (paper §4.2).
_VARIANTS_PER_TEMPLATE = {1: 5, 2: 5, 3: 5, 4: 5, 5: 5, 6: 4, 7: 4, 8: 4}


@dataclass(frozen=True)
class NamedQuery:
    """A ready-to-run query with its SolidBench-style identifier."""

    query_id: str
    template: int
    variant: int
    description: str
    text: str
    person_index: int
    seeds: tuple[str, ...]

    @property
    def name(self) -> str:
        return f"Discover {self.query_id}"


def _prefix_block() -> str:
    return (
        f"PREFIX snvoc: <{SNVOC.base}>\n"
        f"PREFIX rdf: <{RDF.base}>\n"
    )


def _template_text(template: int, webid: str) -> str:
    person = f"<{webid}>"
    if template == 1:
        body = f"""SELECT DISTINCT ?messageId ?messageCreationDate ?messageContent WHERE {{
  ?message snvoc:hasCreator {person} ;
    rdf:type snvoc:Post ;
    snvoc:content ?messageContent ;
    snvoc:creationDate ?messageCreationDate ;
    snvoc:id ?messageId .
}}"""
    elif template == 2:
        body = f"""SELECT DISTINCT ?messageId ?messageContent WHERE {{
  ?message snvoc:hasCreator {person} ;
    snvoc:content ?messageContent ;
    snvoc:id ?messageId .
}}"""
    elif template == 3:
        body = f"""SELECT DISTINCT ?commentId ?commentContent WHERE {{
  ?message snvoc:hasCreator {person} ;
    snvoc:hasReply ?comment .
  ?comment rdf:type snvoc:Comment ;
    snvoc:id ?commentId ;
    snvoc:content ?commentContent .
}}"""
    elif template == 4:
        body = f"""SELECT DISTINCT ?tag WHERE {{
  ?message snvoc:hasCreator {person} ;
    snvoc:hasTag ?tag .
}}"""
    elif template == 5:
        body = f"""SELECT DISTINCT ?locationIri WHERE {{
  ?message snvoc:hasCreator {person} ;
    rdf:type snvoc:Post ;
    snvoc:isLocatedIn ?locationIri .
}}"""
    elif template == 6:
        body = f"""SELECT DISTINCT ?forumId ?forumTitle WHERE {{
  ?message snvoc:hasCreator {person} .
  ?forum snvoc:containerOf ?message ;
    snvoc:id ?forumId ;
    snvoc:title ?forumTitle .
}}"""
    elif template == 7:
        body = f"""SELECT DISTINCT ?firstName ?lastName WHERE {{
  ?message snvoc:hasCreator {person} .
  ?forum snvoc:containerOf ?message ;
    snvoc:hasModerator ?moderator .
  ?moderator snvoc:firstName ?firstName ;
    snvoc:lastName ?lastName .
}}"""
    elif template == 8:
        body = f"""SELECT DISTINCT ?creator ?messageContent WHERE {{
  {person} snvoc:likes _:g_0 .
  _:g_0 (snvoc:hasPost|snvoc:hasComment) ?message .
  ?message snvoc:hasCreator ?creator .
  ?otherMessage snvoc:hasCreator ?creator ;
    snvoc:content ?messageContent .
}}"""
    else:
        raise ValueError(f"unknown Discover template {template}")
    return _prefix_block() + body


def _variant_person(universe: SolidBenchUniverse, template: int, variant: int) -> int:
    """Deterministic person choice per (template, variant).

    Spread across the universe so variants exercise different pods; always
    picks a person that has the data the template needs (posts, likes, ...).
    """
    count = universe.person_count
    candidate = (template * 7 + variant * 13) % count
    for offset in range(count):
        index = (candidate + offset) % count
        person = universe.network.persons[index]
        if template == 8:
            if universe.network.likes_of(index):
                return index
        elif universe.network.posts_of(index):
            return index
        del person
    return candidate


def discover_query(
    universe: SolidBenchUniverse,
    template: int,
    variant: int = 5,
    person_index: Optional[int] = None,
) -> NamedQuery:
    """Instantiate one Discover query (e.g. ``discover_query(u, 1, 5)`` for
    the paper's "Discover 1.5")."""
    if person_index is None:
        person_index = _variant_person(universe, template, variant)
    webid = universe.webid(person_index)
    text = _template_text(template, webid)
    return NamedQuery(
        query_id=f"{template}.{variant}",
        template=template,
        variant=variant,
        description=TEMPLATE_DESCRIPTIONS[template],
        text=text,
        person_index=person_index,
        seeds=(webid,),
    )


def discover_suite(universe: SolidBenchUniverse) -> list[NamedQuery]:
    """All 37 default queries of the demo UI's dropdown."""
    queries: list[NamedQuery] = []
    for template in sorted(_VARIANTS_PER_TEMPLATE):
        for variant in range(1, _VARIANTS_PER_TEMPLATE[template] + 1):
            queries.append(discover_query(universe, template, variant))
    return queries
