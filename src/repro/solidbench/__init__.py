"""SolidBench: the simulated decentralized social-network benchmark.

A deterministic reimplementation of the SolidBench dataset generator the
paper demonstrates against (§4.2): an LDBC-SNB-style social network
fragmented into Solid pods, plus the 37-query "Discover" suite.
"""

from .adversary import (
    ATTACK_KINDS,
    AdversaryDeployment,
    AdversaryPlan,
    deploy_adversary,
)
from .config import Fragmentation, PAPER_SCALE_TARGETS, SolidBenchConfig
from .fragmenter import PodFragmenter
from .queries import NamedQuery, TEMPLATE_DESCRIPTIONS, discover_query, discover_suite
from .social import SocialNetwork, generate_social_network
from .universe import SolidBenchUniverse, build_universe
from .validation import (
    ValidationReport,
    build_manifest,
    load_manifest,
    validate_results,
    write_manifest,
)

__all__ = [
    "ATTACK_KINDS",
    "AdversaryPlan",
    "AdversaryDeployment",
    "deploy_adversary",
    "SolidBenchConfig",
    "Fragmentation",
    "PAPER_SCALE_TARGETS",
    "SocialNetwork",
    "generate_social_network",
    "PodFragmenter",
    "SolidBenchUniverse",
    "build_universe",
    "NamedQuery",
    "discover_query",
    "discover_suite",
    "TEMPLATE_DESCRIPTIONS",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_results",
    "ValidationReport",
]
