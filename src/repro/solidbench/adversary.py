"""Seeded hostile-pod generator — the adversarial half of the test suite.

"A Prospective Analysis of Security Vulnerabilities within LTQP"
(PAPERS.md) enumerates what an open, untrusted web of pods can do to a
link-traversal engine.  This module plants those attacks in the simulated
universe so the hardening layers (origin budgets, read/parse caps, fair
queueing — see DESIGN.md §4e) can be exercised deterministically:

* ``link-trap``     — an infinite chain of LDP containers (with periodic
  back-edges) that a breadth-first traversal would follow forever;
* ``growing-doc``   — a document that is larger on every re-fetch and
  serves a *different* validator each time, defeating both the HTTP
  cache and validator-keyed document-store dedup (includes a two-node
  container cycle with mutating ETags, the regression case for
  seen-URL-set termination);
* ``oversized-doc`` — one enormous document intended to exhaust memory
  and parser CPU in a single response;
* ``slow-trickle``  — an origin that drips bytes pathologically slowly
  (rigged through the existing :class:`~repro.net.faults.FaultPlan`
  trickle rule, so the client's per-attempt timeout is the defense);
* ``poison``        — cross-pod documents asserting triples about benign
  pods' subjects, trying to smuggle fabricated facts into results and
  lure traversal deeper into hostile territory.

Every hostile pod lives on its **own origin** (``https://adv-<kind>-<i>.
example``), unlike the benign pods which share the SolidBench host —
that is what makes per-origin budgets a meaningful containment boundary.
Deployment never touches benign documents: traversal reaches an attack
only through *lure seeds* (:attr:`AdversaryDeployment.lures`) appended
to a query's seed list, which is how the benign-equivalence property can
demand byte-identical results over benign pods.

Everything is a pure function of :class:`AdversaryPlan` (seeded), so any
observed behaviour replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..net.faults import FaultPlan, FaultRule
from ..net.message import Request, Response
from ..net.router import App, Internet
from ..rdf.namespaces import LDP, RDF, RDFS, SNVOC
from ..rdf.terms import Literal, NamedNode
from ..rdf.triples import Triple
from ..rdf.writer import serialize_turtle

__all__ = [
    "ATTACK_KINDS",
    "POISON_WATERMARK",
    "is_tainted_binding",
    "restrict_to_benign",
    "AdversaryPlan",
    "AdversaryDeployment",
    "deploy_adversary",
    "LinkTrapApp",
    "GrowingDocApp",
    "OversizedDocApp",
    "TrickleChainApp",
    "PoisonApp",
]

#: The five attack classes of the threat model (DESIGN.md §4e).
ATTACK_KINDS = ("link-trap", "growing-doc", "oversized-doc", "slow-trickle", "poison")

#: Every literal a poisoning document fabricates embeds this marker, and
#: every hostile IRI lives on an ``https://<prefix>-…`` origin — so a
#: result binding is attributable to the adversary iff
#: :func:`is_tainted_binding` says so.  This is what "results restricted
#: to benign pods" means operationally in the equivalence property.
POISON_WATERMARK = "~adv-poison~"


def is_tainted_binding(binding, origin_prefix: str = "adv") -> bool:
    """Does this result binding carry any adversary-attributable term?

    True when a term is an IRI on a hostile origin
    (``https://<origin_prefix>-…``) or a literal carrying the
    :data:`POISON_WATERMARK`.  Bindings built purely from benign
    documents can contain neither."""
    text = repr(binding)
    return POISON_WATERMARK in text or f"://{origin_prefix}-" in text


def restrict_to_benign(bindings, origin_prefix: str = "adv"):
    """Drop adversary-attributable bindings (see :func:`is_tainted_binding`)."""
    return [b for b in bindings if not is_tainted_binding(b, origin_prefix)]


@dataclass(frozen=True, slots=True)
class AdversaryPlan:
    """A seeded description of which attacks to plant, and how nasty.

    ``kinds`` selects attack classes (default: all five);
    ``pods_per_kind`` replicates each attack on that many distinct
    origins.  The remaining knobs size the individual attacks.  The plan
    is frozen and hashable — two equal plans deploy identical adversaries.
    """

    seed: int = 42
    kinds: tuple[str, ...] = ATTACK_KINDS
    pods_per_kind: int = 1
    #: Origins are ``https://<origin_prefix>-<kind>-<index>.example``;
    #: vary the prefix to deploy several adversaries side by side.
    origin_prefix: str = "adv"
    # -- link trap -----------------------------------------------------
    #: Containers listed per trap document (branching factor).
    trap_fanout: int = 2
    #: Every document also links back to the trap root (a cycle on top
    #: of the infinite chain, so dedup alone never terminates it).
    trap_cycle: bool = True
    # -- growing document ---------------------------------------------
    #: Triples added per re-fetch of the growing document.
    growth_step_triples: int = 32
    # -- oversized document -------------------------------------------
    #: Approximate serialized size of the oversized document.
    oversized_bytes: int = 1 << 20
    # -- slow trickle --------------------------------------------------
    #: Length of the document chain behind the trickling origin.
    trickle_chain: int = 32
    #: Fixed extra delay per response (simulated seconds).
    trickle_delay: float = 0.05
    #: When > 0, delay additionally scales with body size (bytes/second).
    drip_bytes_per_second: float = 0.0
    # -- poisoning -----------------------------------------------------
    #: Number of poison documents per poisoning origin.
    poison_docs: int = 8

    def __post_init__(self) -> None:
        for kind in self.kinds:
            if kind not in ATTACK_KINDS:
                raise ValueError(f"unknown attack kind {kind!r} (one of {ATTACK_KINDS})")

    def origin_for(self, kind: str, index: int) -> str:
        return f"https://{self.origin_prefix}-{kind}-{index}.example"

    def origins(self) -> list[str]:
        return [
            self.origin_for(kind, index)
            for kind in self.kinds
            for index in range(self.pods_per_kind)
        ]


def _turtle_response(triples: list[Triple], etag: Optional[str] = None) -> Response:
    headers = {"content-type": "text/turtle"}
    if etag:
        headers["etag"] = etag
    return Response(200, headers, serialize_turtle(triples).encode("utf-8"))


def _container(url: str, members: Sequence[str]) -> list[Triple]:
    node = NamedNode(url)
    triples = [Triple(node, RDF.type, LDP.Container)]
    triples.extend(Triple(node, LDP.contains, NamedNode(member)) for member in members)
    return triples


class _HostileApp(App):
    """Base: a hostile pod mounted on one origin, counting its requests."""

    def __init__(self, origin: str) -> None:
        self.origin = origin.rstrip("/")
        self.requests = 0
        self.requests_by_path: dict[str, int] = {}

    def url(self, path: str) -> str:
        return f"{self.origin}{path}"

    async def handle(self, request: Request) -> Response:
        self.requests += 1
        path = request.path
        self.requests_by_path[path] = self.requests_by_path.get(path, 0) + 1
        if request.method not in ("GET", "HEAD"):
            return Response(405, {"content-type": "text/plain"}, b"Method not allowed")
        response = self.get(path)
        if request.method == "HEAD":
            return Response(response.status, dict(response.headers), b"")
        return response

    def get(self, path: str) -> Response:
        raise NotImplementedError


class LinkTrapApp(_HostileApp):
    """An infinite LDP container chain: ``/trap/n`` contains
    ``/trap/{n*fanout+1} … /trap/{n*fanout+fanout}`` (and, with
    ``cycle``, a back-edge to ``/trap/0``).  Every URL is distinct, so
    URL dedup never terminates it — only a budget can."""

    def __init__(self, origin: str, fanout: int = 2, cycle: bool = True) -> None:
        super().__init__(origin)
        self._fanout = max(1, fanout)
        self._cycle = cycle

    def get(self, path: str) -> Response:
        if path == "/":
            return _turtle_response(_container(self.url("/"), [self.url("/trap/0")]))
        if not path.startswith("/trap/"):
            return Response.not_found(self.url(path))
        try:
            index = int(path[len("/trap/"):])
        except ValueError:
            return Response.not_found(self.url(path))
        members = [
            self.url(f"/trap/{index * self._fanout + child + 1}")
            for child in range(self._fanout)
        ]
        if self._cycle:
            members.append(self.url("/trap/0"))
        return _turtle_response(_container(self.url(path), members), etag=f'W/"trap-{index}"')


class GrowingDocApp(_HostileApp):
    """A document that grows by ``step`` triples on every re-fetch, with
    a validator that mutates per request (defeating cache revalidation
    *and* validator-keyed document-store dedup), plus a two-node
    container cycle (``/cycle/a`` ⇄ ``/cycle/b``) whose ETags also
    mutate — the regression case for seen-URL-set termination."""

    def __init__(self, origin: str, step: int = 32) -> None:
        super().__init__(origin)
        self._step = max(1, step)

    def get(self, path: str) -> Response:
        serial = self.requests_by_path.get(path, 1)
        if path == "/":
            return _turtle_response(
                _container(self.url("/"), [self.url("/doc"), self.url("/cycle/a")])
            )
        if path == "/doc":
            node = NamedNode(self.url("/doc"))
            triples = [
                Triple(
                    NamedNode(f"{self.url('/doc')}#gen{i}"),
                    SNVOC.content,
                    Literal(f"generated filler triple {i} of revision {serial}"),
                )
                for i in range(self._step * serial)
            ]
            triples.append(Triple(node, RDFS.label, Literal(f"revision {serial}")))
            return _turtle_response(triples, etag=f'W/"grow-{serial}"')
        if path == "/cycle/a":
            return _turtle_response(
                _container(self.url("/cycle/a"), [self.url("/cycle/b")]),
                etag=f'W/"a-{serial}"',
            )
        if path == "/cycle/b":
            return _turtle_response(
                _container(self.url("/cycle/b"), [self.url("/cycle/a")]),
                etag=f'W/"b-{serial}"',
            )
        return Response.not_found(self.url(path))


class OversizedDocApp(_HostileApp):
    """One enormous document (~``target_bytes`` of serialized Turtle),
    generated once and served whole — the memory/CPU-exhaustion case the
    client read cap and parse cap must abort."""

    def __init__(self, origin: str, target_bytes: int = 1 << 20) -> None:
        super().__init__(origin)
        self._target_bytes = max(1024, target_bytes)
        self._body: Optional[bytes] = None

    def _oversized_body(self) -> bytes:
        if self._body is None:
            filler = "x" * 200
            triples = []
            size = 0
            index = 0
            while size < self._target_bytes:
                triple = Triple(
                    NamedNode(f"{self.url('/huge')}#s{index}"),
                    SNVOC.content,
                    Literal(f"{filler}{index}"),
                )
                triples.append(triple)
                size += 260  # close enough; the exact size is checked below
                index += 1
            body = serialize_turtle(triples).encode("utf-8")
            while len(body) < self._target_bytes:
                triples.extend(triples[: max(1, len(triples) // 4)])
                body = serialize_turtle(triples).encode("utf-8")
            self._body = body
        return self._body

    def get(self, path: str) -> Response:
        if path == "/":
            return _turtle_response(_container(self.url("/"), [self.url("/huge")]))
        if path == "/huge":
            return Response(
                200,
                {"content-type": "text/turtle", "etag": 'W/"huge"'},
                self._oversized_body(),
            )
        return Response.not_found(self.url(path))


class TrickleChainApp(_HostileApp):
    """A chain of small documents (``/t/0`` → … → ``/t/n-1``) served
    behind a :class:`~repro.net.faults.FaultPlan` trickle rule: each
    response is held back (optionally proportionally to its size), so an
    unhardened engine pays the full drip for every link while a
    per-attempt timeout cuts each one off."""

    def __init__(self, origin: str, chain: int = 32) -> None:
        super().__init__(origin)
        self._chain = max(1, chain)

    def get(self, path: str) -> Response:
        if path == "/":
            return _turtle_response(_container(self.url("/"), [self.url("/t/0")]))
        if not path.startswith("/t/"):
            return Response.not_found(self.url(path))
        try:
            index = int(path[len("/t/"):])
        except ValueError:
            return Response.not_found(self.url(path))
        if index >= self._chain:
            return Response.not_found(self.url(path))
        node = NamedNode(self.url(path))
        triples = [Triple(node, RDFS.label, Literal(f"trickle document {index}"))]
        members = []
        if index + 1 < self._chain:
            members = [self.url(f"/t/{index + 1}")]
        triples.extend(_container(self.url(path), members))
        return _turtle_response(triples, etag=f'W/"t-{index}"')


class PoisonApp(_HostileApp):
    """Cross-pod poisoning: each document asserts fabricated triples
    *about benign subjects* (e.g. that a benign person ``snvoc:knows`` a
    hostile-minted one) and lures traversal onward to the next poison
    document.  The fabricated facts always involve at least one
    hostile-origin term, so results restricted to benign pods must be
    unchanged — which is exactly what the equivalence property checks."""

    def __init__(
        self,
        origin: str,
        targets: Sequence[str],
        documents: int = 8,
        seed: int = 42,
    ) -> None:
        super().__init__(origin)
        self._targets = list(targets)
        self._documents = max(1, documents)
        self._seed = seed

    def get(self, path: str) -> Response:
        if path == "/":
            return _turtle_response(
                _container(self.url("/"), [self.url(f"/p/{i}") for i in range(self._documents)])
            )
        if not path.startswith("/p/"):
            return Response.not_found(self.url(path))
        try:
            index = int(path[len("/p/"):])
        except ValueError:
            return Response.not_found(self.url(path))
        if index >= self._documents:
            return Response.not_found(self.url(path))
        rng = random.Random(f"{self._seed}/poison/{self.origin}/{index}")
        node = NamedNode(self.url(path))
        impostor = NamedNode(f"{self.url(path)}#impostor")
        triples = [
            Triple(impostor, RDF.type, SNVOC.Person),
            Triple(impostor, SNVOC.firstName, Literal(f"Impostor{index} {POISON_WATERMARK}")),
            Triple(node, RDFS.label, Literal(f"poison document {index}")),
        ]
        if self._targets:
            # Fabricated claims *about* benign subjects: a fake Post whose
            # snvoc:hasCreator is a benign WebID matches the very pattern
            # the Discover templates anchor on, so an engine that trusts
            # this document emits fabricated (watermarked) results.
            for target in rng.sample(self._targets, min(3, len(self._targets))):
                victim = NamedNode(target)
                fake_post = NamedNode(f"{self.url(path)}#msg-{len(triples)}")
                triples.extend(
                    [
                        Triple(fake_post, SNVOC.hasCreator, victim),
                        Triple(fake_post, RDF.type, SNVOC.Post),
                        Triple(
                            fake_post,
                            SNVOC.content,
                            Literal(f"{POISON_WATERMARK} fabricated post {index}"),
                        ),
                        Triple(
                            fake_post,
                            SNVOC.creationDate,
                            Literal(f"{POISON_WATERMARK} 2026-01-01"),
                        ),
                        Triple(fake_post, SNVOC.id, Literal(f"{POISON_WATERMARK}{index}")),
                        Triple(victim, SNVOC.knows, impostor),
                        Triple(impostor, SNVOC.knows, victim),
                    ]
                )
        members = []
        if index + 1 < self._documents:
            members = [self.url(f"/p/{index + 1}")]
        triples.extend(_container(self.url(path), members))
        return _turtle_response(triples, etag=f'W/"p-{index}"')


@dataclass
class AdversaryDeployment:
    """A deployed adversary: its origins, apps, lures, and fault plan.

    ``lures`` are the hostile entry URLs; append them to a query's seed
    list to expose that execution to the adversary (benign documents are
    never modified).  ``uninstall`` retracts every origin and restores
    the fault plan that was installed before deployment.
    """

    plan: AdversaryPlan
    apps: dict[str, _HostileApp] = field(default_factory=dict)
    lures: list[str] = field(default_factory=list)
    fault_plan: Optional[FaultPlan] = None
    _displaced_fault_plan: Optional[FaultPlan] = None
    _internet: Optional[Internet] = None

    @property
    def origins(self) -> list[str]:
        return sorted(self.apps)

    def total_requests(self) -> int:
        """Requests the adversary answered — the attack's cost measure."""
        return sum(app.requests for app in self.apps.values())

    def requests_by_origin(self) -> dict[str, int]:
        return {origin: app.requests for origin, app in sorted(self.apps.items())}

    def uninstall(self) -> None:
        if self._internet is None:
            return
        for origin in self.apps:
            self._internet.unregister(origin)
        if self.fault_plan is not None and self._internet.fault_plan is self.fault_plan:
            self._internet.install_fault_plan(self._displaced_fault_plan)
        self._internet = None


def deploy_adversary(
    internet: Internet,
    plan: Optional[AdversaryPlan] = None,
    targets: Sequence[str] = (),
) -> AdversaryDeployment:
    """Plant ``plan``'s hostile pods on ``internet`` and return the deployment.

    ``targets`` are benign IRIs (WebIDs) for the poisoning documents to
    fabricate claims about; without them, poison documents still mint
    impostors but make no cross-pod assertions.  A trickle attack
    installs a :class:`FaultPlan` scoped to its own origins; any
    previously installed plan is displaced and restored on
    ``uninstall``.
    """
    if plan is None:
        plan = AdversaryPlan()
    deployment = AdversaryDeployment(plan=plan)
    deployment._internet = internet
    trickle_rules: list[FaultRule] = []
    for kind in plan.kinds:
        for index in range(plan.pods_per_kind):
            origin = plan.origin_for(kind, index)
            app: _HostileApp
            if kind == "link-trap":
                app = LinkTrapApp(origin, fanout=plan.trap_fanout, cycle=plan.trap_cycle)
            elif kind == "growing-doc":
                app = GrowingDocApp(origin, step=plan.growth_step_triples)
            elif kind == "oversized-doc":
                app = OversizedDocApp(origin, target_bytes=plan.oversized_bytes)
            elif kind == "slow-trickle":
                app = TrickleChainApp(origin, chain=plan.trickle_chain)
                trickle_rules.append(
                    FaultRule(
                        kind="trickle",
                        origin=origin,
                        delay_seconds=plan.trickle_delay,
                        drip_bytes_per_second=plan.drip_bytes_per_second,
                    )
                )
            elif kind == "poison":
                app = PoisonApp(
                    origin, targets=targets, documents=plan.poison_docs, seed=plan.seed
                )
            else:  # pragma: no cover - guarded by AdversaryPlan.__post_init__
                raise ValueError(f"unknown attack kind {kind!r}")
            internet.register(origin, app)
            deployment.apps[origin] = app
            deployment.lures.append(f"{origin}/")
    if trickle_rules:
        deployment._displaced_fault_plan = internet.fault_plan
        deployment.fault_plan = FaultPlan(trickle_rules, seed=plan.seed)
        internet.install_fault_plan(deployment.fault_plan)
    return deployment
