"""Per-pod cardinality-hint documents (guided traversal, DESIGN.md §4g).

With ``SolidBenchConfig.emit_hints`` enabled, every pod publishes a
*source index* at ``settings/cardinality`` — the summary side of the
guided-traversal subsystem (:mod:`repro.ltqp.guided`).  The document
declares, per content container (``posts/``, ``comments/``, ``forums/``,
``noise/`` …): the RDF classes of entities stored there, the predicates
that occur, and document/entity counts.  It also declares predicate
*ranges* computed from the generated network (e.g. every object of
``snvoc:containerOf`` is a ``snvoc:Post``) and — because the generator
knows the summary covers the whole pod — ``subweb:completeIndex true``
plus the exact LDP infrastructure documents the index makes redundant
(root, ``profile/`` and ``settings/`` listings, the public type index).

The WebID profile links to it via ``subweb:cardinalityIndex`` so the
:class:`~repro.ltqp.guided.HintDiscoveryExtractor` finds it one hop from
any seed.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..rdf.namespaces import RDF, SUBWEB
from ..rdf.terms import Literal, NamedNode, intern_iri
from ..rdf.triples import Triple
from ..solid.pod import Pod

__all__ = ["HINT_DOCUMENT_PATH", "build_hint_triples", "cardinality_index_url"]

#: Where every pod serves its source index (inside ``settings/``, next to
#: the public type index).
HINT_DOCUMENT_PATH = "settings/cardinality"

#: Containers that are LDP plumbing, not content — never summarized.
_INFRA_CONTAINERS = ("profile/", "settings/")


def cardinality_index_url(pod_base: str) -> str:
    return pod_base + HINT_DOCUMENT_PATH


def build_hint_triples(
    pod: Pod, ranges: Mapping[str, Iterable[str]] = ()
) -> list[Triple]:
    """The source-index triples for one fully built pod.

    Must run after the pod's content documents exist (the summary is
    computed from them) — profile and type index need not exist yet; they
    are infrastructure, addressed by URL.
    """
    document_url = cardinality_index_url(pod.base_url)
    index = NamedNode(document_url + "#index")
    triples = [
        Triple(index, SUBWEB.pod, NamedNode(pod.base_url)),
        Triple(index, SUBWEB.completeIndex, Literal("true")),
    ]
    for infra_url in (
        pod.base_url,
        pod.base_url + "profile/",
        pod.base_url + "settings/",
        pod.type_index_url,
    ):
        triples.append(Triple(index, SUBWEB.infra, intern_iri(infra_url)))

    class_predicate = SUBWEB["class"]
    for container, summary in sorted(_summarize_containers(pod).items()):
        node = NamedNode(f"{document_url}#c-{container.rstrip('/')}")
        triples.append(Triple(index, SUBWEB.summarizes, node))
        triples.append(Triple(node, SUBWEB.container, intern_iri(pod.base_url + container)))
        for class_iri in sorted(summary["classes"]):
            triples.append(Triple(node, class_predicate, intern_iri(class_iri)))
        for predicate_iri in sorted(summary["predicates"]):
            triples.append(Triple(node, SUBWEB.predicate, intern_iri(predicate_iri)))
        triples.append(Triple(node, SUBWEB.documents, Literal(str(summary["documents"]))))
        triples.append(Triple(node, SUBWEB.entities, Literal(str(summary["entities"]))))

    for position, (predicate_iri, classes) in enumerate(sorted(dict(ranges).items())):
        if not classes:
            continue
        node = NamedNode(f"{document_url}#r{position}")
        triples.append(Triple(node, SUBWEB.rangeOf, intern_iri(predicate_iri)))
        for class_iri in sorted(classes):
            triples.append(Triple(node, SUBWEB.rangeClass, intern_iri(class_iri)))
    return triples


def _summarize_containers(pod: Pod) -> dict[str, dict]:
    """Aggregate class/predicate/count summaries per top-level container."""
    summaries: dict[str, dict] = {}
    for document in pod.documents():
        if "/" not in document.path:
            continue
        container = document.path.split("/", 1)[0] + "/"
        if container in _INFRA_CONTAINERS:
            continue
        summary = summaries.setdefault(
            container,
            {"classes": set(), "predicates": set(), "documents": 0, "entities": 0},
        )
        summary["documents"] += 1
        entities = set()
        for triple in document.triples:
            summary["predicates"].add(triple.predicate.value)
            if triple.predicate == RDF.type:
                summary["classes"].add(triple.object.value)
                entities.add(triple.subject)
        summary["entities"] += len(entities)
    return summaries
