"""Deterministic LDBC-SNB-style social network generation.

Produces the *abstract* social network — persons, a knows-graph, forums
(walls and albums, titled exactly like the paper's Fig. 2/3 results:
"Wall of Eli Peretz", "Album 11 of Eli Peretz"), posts, comments, likes,
and tag/city annotations.  :mod:`repro.solidbench.fragmenter` then
distributes it into Solid pods.

All identifiers and choices derive from one seeded RNG; the same config
always yields the same network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import date, datetime, timedelta, timezone
from typing import Optional

from .config import SolidBenchConfig

__all__ = [
    "PersonData",
    "ForumData",
    "MessageData",
    "LikeData",
    "SocialNetwork",
    "generate_social_network",
    "FIRST_NAMES",
    "LAST_NAMES",
    "TAG_NAMES",
    "PLACE_NAMES",
]

FIRST_NAMES = [
    "Eli", "Zulma", "Ana", "Jun", "Mehmet", "Ivan", "Chen", "Abebe", "Bryn",
    "Carmen", "Daniela", "Emre", "Farah", "Gustavo", "Hana", "Igor", "Jana",
    "Kofi", "Lena", "Mikhail", "Noor", "Otavio", "Priya", "Quentin", "Rosa",
    "Santiago", "Tariq", "Uma", "Viktor", "Wafa", "Ximena", "Yusuf", "Zara",
    "Anders", "Beatriz", "Cheng", "Dmitri", "Elena", "Fatima", "Giorgio",
]

LAST_NAMES = [
    "Peretz", "Silva", "Kim", "Yilmaz", "Petrov", "Wang", "Bekele", "Jones",
    "Garcia", "Rossi", "Demir", "Haddad", "Santos", "Sato", "Volkov",
    "Novak", "Mensah", "Fischer", "Sokolov", "Rahman", "Costa", "Dubois",
    "Castillo", "Aziz", "Devi", "Moreau", "Alvarez", "Hassan", "Iyer",
    "Smirnov", "Nasser", "Lopez", "Ahmed", "Okafor", "Kovacs", "Andersen",
    "Li", "Ivanova", "Khan", "Ricci",
]

TAG_NAMES = [
    "Albert_Einstein", "Ludwig_van_Beethoven", "Napoleon", "Genghis_Khan",
    "Charles_Darwin", "Marie_Curie", "William_Shakespeare", "Wolfgang_Amadeus_Mozart",
    "Isaac_Newton", "Leonardo_da_Vinci", "Augustine_of_Hippo", "Frida_Kahlo",
    "Alan_Turing", "Ada_Lovelace", "Confucius", "Aristotle", "Hypatia",
    "Ibn_Sina", "Rumi", "Sun_Tzu", "Cleopatra", "Joan_of_Arc", "Nikola_Tesla",
    "Galileo_Galilei", "Johannes_Gutenberg",
]

PLACE_NAMES = [
    "Germany", "China", "India", "Brazil", "Nigeria", "Mexico", "Japan",
    "Turkey", "France", "Italy", "Spain", "Poland", "Kenya", "Vietnam",
    "Argentina", "Canada", "Egypt", "Indonesia", "Morocco", "Peru",
]

_BROWSERS = ["Firefox", "Chrome", "Safari", "Internet Explorer", "Opera"]


@dataclass(slots=True)
class PersonData:
    """One person = one pod owner."""

    index: int
    ldbc_id: int
    first_name: str
    last_name: str
    knows: list[int] = field(default_factory=list)  # person indexes
    city: str = ""
    browser: str = ""

    @property
    def name(self) -> str:
        return f"{self.first_name} {self.last_name}"

    @property
    def pod_name(self) -> str:
        return f"{self.ldbc_id:020d}"


@dataclass(slots=True)
class ForumData:
    """A wall or album forum, moderated by its owner."""

    forum_id: int
    owner_index: int
    title: str
    kind: str  # "wall" | "album"
    message_ids: list[int] = field(default_factory=list)


@dataclass(slots=True)
class MessageData:
    """A post or a comment."""

    message_id: int
    kind: str  # "post" | "comment"
    creator_index: int
    creation_date: datetime
    content: str
    tags: list[str] = field(default_factory=list)
    place: str = ""
    browser: str = ""
    forum_id: Optional[int] = None  # posts only
    reply_of_id: Optional[int] = None  # comments only

    @property
    def creation_day(self) -> date:
        return self.creation_date.date()


@dataclass(slots=True)
class LikeData:
    person_index: int
    message_id: int
    message_kind: str
    creation_date: datetime


@dataclass(slots=True)
class SocialNetwork:
    """The full abstract network prior to pod fragmentation."""

    config: SolidBenchConfig
    persons: list[PersonData] = field(default_factory=list)
    forums: dict[int, ForumData] = field(default_factory=dict)
    messages: dict[int, MessageData] = field(default_factory=dict)
    likes: list[LikeData] = field(default_factory=list)

    def posts_of(self, person_index: int) -> list[MessageData]:
        return [
            m
            for m in self.messages.values()
            if m.creator_index == person_index and m.kind == "post"
        ]

    def comments_of(self, person_index: int) -> list[MessageData]:
        return [
            m
            for m in self.messages.values()
            if m.creator_index == person_index and m.kind == "comment"
        ]

    def forums_of(self, person_index: int) -> list[ForumData]:
        return [f for f in self.forums.values() if f.owner_index == person_index]

    def likes_of(self, person_index: int) -> list[LikeData]:
        return [l for l in self.likes if l.person_index == person_index]


# LDBC-flavoured id spacing: message/forum ids look like the long ids in the
# paper's Fig. 2 output (e.g. 755914244147) without colliding across kinds.
_PERSON_ID_BASE = 6_597_069_766_000
_FORUM_ID_STRIDE = 137_438_953_472 // 256
_MESSAGE_ID_STRIDE = 970_662_608_896 // 1024


def _random_datetime(rng: random.Random, config: SolidBenchConfig) -> datetime:
    start = datetime(config.start_year, 1, 1, tzinfo=timezone.utc)
    end = datetime(config.end_year, 12, 31, tzinfo=timezone.utc)
    seconds = rng.randrange(int((end - start).total_seconds()))
    return start + timedelta(seconds=seconds)


def _content_sentence(rng: random.Random, author: str, message_id: int) -> str:
    openers = [
        "About", "Thoughts on", "Photos from", "Reading about", "Notes on",
        "A story about", "Remembering", "Learning about",
    ]
    return f"{rng.choice(openers)} {rng.choice(TAG_NAMES).replace('_', ' ')} — {author} ({message_id})"


def generate_social_network(config: SolidBenchConfig) -> SocialNetwork:
    """Generate the deterministic social network for ``config``."""
    rng = random.Random(config.seed)
    network = SocialNetwork(config=config)
    count = config.person_count

    # -- persons -----------------------------------------------------------
    for index in range(count):
        person = PersonData(
            index=index,
            ldbc_id=_PERSON_ID_BASE + index * 7 + rng.randrange(3),
            first_name=FIRST_NAMES[index % len(FIRST_NAMES)],
            last_name=LAST_NAMES[(index // len(FIRST_NAMES) + index) % len(LAST_NAMES)],
            city=rng.choice(PLACE_NAMES),
            browser=rng.choice(_BROWSERS),
        )
        network.persons.append(person)

    # -- knows graph (undirected, stored both ways) -------------------------
    for person in network.persons:
        degree = max(1, round(rng.gauss(config.knows_per_person, config.knows_per_person / 4)))
        degree = min(degree, count - 1)
        candidates = rng.sample(range(count), min(count, degree + 1))
        for other in candidates:
            if other == person.index or other in person.knows:
                continue
            person.knows.append(other)
            other_person = network.persons[other]
            if person.index not in other_person.knows:
                other_person.knows.append(person.index)
            if len(person.knows) >= degree:
                break

    # -- forums: one wall + N albums per person -----------------------------
    next_forum = 0
    for person in network.persons:
        wall = ForumData(
            forum_id=200_000_000_000 + next_forum * _FORUM_ID_STRIDE,
            owner_index=person.index,
            title=f"Wall of {person.name}",
            kind="wall",
        )
        next_forum += 1
        network.forums[wall.forum_id] = wall
        album_count = max(1, round(rng.gauss(config.albums_per_person, 2)))
        for album_number in range(1, album_count + 1):
            album = ForumData(
                forum_id=200_000_000_000 + next_forum * _FORUM_ID_STRIDE,
                owner_index=person.index,
                title=f"Album {album_number} of {person.name}",
                kind="album",
            )
            next_forum += 1
            network.forums[album.forum_id] = album

    # -- posts ---------------------------------------------------------------
    next_message = 0
    for person in network.persons:
        person_forums = network.forums_of(person.index)
        post_count = max(1, round(rng.gauss(config.posts_per_person, config.posts_per_person / 4)))
        for _ in range(post_count):
            message_id = 300_000_000_000 + next_message * _MESSAGE_ID_STRIDE
            next_message += 1
            forum = rng.choice(person_forums)
            message = MessageData(
                message_id=message_id,
                kind="post",
                creator_index=person.index,
                creation_date=_random_datetime(rng, config),
                content=_content_sentence(rng, person.name, message_id),
                tags=rng.sample(TAG_NAMES, k=min(len(TAG_NAMES), max(1, config.tags_per_message))),
                place=rng.choice(PLACE_NAMES),
                browser=person.browser,
                forum_id=forum.forum_id,
            )
            forum.message_ids.append(message_id)
            network.messages[message_id] = message

    # -- comments (reply to friends' posts; fall back to any post) ------------
    all_post_ids = [m.message_id for m in network.messages.values()]
    for person in network.persons:
        friend_posts = [
            m.message_id
            for friend in person.knows
            for m in network.posts_of(friend)
        ]
        pool = friend_posts if friend_posts else all_post_ids
        comment_count = max(
            1, round(rng.gauss(config.comments_per_person, config.comments_per_person / 4))
        )
        for _ in range(comment_count):
            message_id = 300_000_000_000 + next_message * _MESSAGE_ID_STRIDE
            next_message += 1
            target = rng.choice(pool)
            message = MessageData(
                message_id=message_id,
                kind="comment",
                creator_index=person.index,
                creation_date=_random_datetime(rng, config),
                content=_content_sentence(rng, person.name, message_id),
                tags=rng.sample(TAG_NAMES, k=1),
                browser=person.browser,
                reply_of_id=target,
            )
            network.messages[message_id] = message

    # -- likes (of friends' messages) -----------------------------------------
    message_by_creator: dict[int, list[MessageData]] = {}
    for message in network.messages.values():
        message_by_creator.setdefault(message.creator_index, []).append(message)
    for person in network.persons:
        candidates = [
            m for friend in person.knows for m in message_by_creator.get(friend, [])
        ]
        if not candidates:
            continue
        like_count = max(1, round(rng.gauss(config.likes_per_person, config.likes_per_person / 4)))
        liked = rng.sample(candidates, k=min(len(candidates), like_count))
        for message in liked:
            network.likes.append(
                LikeData(
                    person_index=person.index,
                    message_id=message.message_id,
                    message_kind=message.kind,
                    creation_date=_random_datetime(rng, config),
                )
            )

    return network
