"""Fragmenting the social network into Solid pods.

Mirrors SolidBench's pod layout (visible in the paper's Figs. 2-4):

==========================  ==================================================
``profile/card``            WebID profile: name, knows, likes, pim:storage,
                            solid:publicTypeIndex (paper Listing 2)
``settings/publicTypeIndex``  Type Index with Post/Comment/Forum registrations
                            (paper Listing 3)
``posts/<YYYY-MM-DD>``      posts fragmented by creation date (default)
``comments/<YYYY-MM-DD>``   comments fragmented by creation date
``forums/<id>``             the forums this person moderates
``noise/noise-<n>``         irrelevant documents (traversal chaff)
==========================  ==================================================

Alternative fragmentations (``SINGLE``, ``PER_RESOURCE``) change where
message IRIs live; everything else stays put.  Message IRIs are minted
first so cross-pod references (likes, replyOf) always point at the
document that actually serves the message.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..rdf.namespaces import DBPEDIA, FOAF, RDF, SNTAG, SNVOC, SUBWEB
from ..rdf.terms import BlankNode, Literal, NamedNode, XSD_DATETIME, XSD_LONG, intern_iri
from ..rdf.triples import Triple
from ..solid.pod import Pod
from .config import Fragmentation, SolidBenchConfig
from .social import MessageData, PersonData, SocialNetwork

__all__ = ["PodFragmenter"]


class PodFragmenter:
    """Builds one :class:`~repro.solid.pod.Pod` per person."""

    def __init__(self, network: SocialNetwork) -> None:
        self._network = network
        self._config: SolidBenchConfig = network.config
        self._message_iris: dict[int, str] = {}
        self._mint_message_iris()
        # Reverse reply index: SolidBench materializes ``hasReply`` backlinks
        # in the replied-to message's document so traversal can reach
        # comments stored in the commenters' pods (Discover template 3).
        self._replies_by_target: dict[int, list[int]] = {}
        for message in network.messages.values():
            if message.reply_of_id is not None:
                self._replies_by_target.setdefault(message.reply_of_id, []).append(
                    message.message_id
                )

    # ------------------------------------------------------------------
    # IRI minting
    # ------------------------------------------------------------------

    def pod_base(self, person: PersonData) -> str:
        return f"{self._config.host}/pods/{person.pod_name}/"

    def webid(self, person_index: int) -> str:
        person = self._network.persons[person_index]
        return self.pod_base(person) + "profile/card#me"

    def message_iri(self, message_id: int) -> str:
        return self._message_iris[message_id]

    def forum_iri(self, forum_id: int) -> str:
        forum = self._network.forums[forum_id]
        owner = self._network.persons[forum.owner_index]
        return f"{self.pod_base(owner)}forums/{forum_id}#forum"

    def _message_document_path(self, message: MessageData) -> str:
        kind_dir = "posts" if message.kind == "post" else "comments"
        fragmentation = self._config.fragmentation
        if fragmentation is Fragmentation.DATED:
            return f"{kind_dir}/{message.creation_day.isoformat()}"
        if fragmentation is Fragmentation.SINGLE:
            return kind_dir
        return f"{kind_dir}/{message.message_id}"

    def _mint_message_iris(self) -> None:
        for message in self._network.messages.values():
            creator = self._network.persons[message.creator_index]
            path = self._message_document_path(message)
            self._message_iris[message.message_id] = (
                f"{self.pod_base(creator)}{path}#{message.message_id}"
            )

    # ------------------------------------------------------------------
    # pod construction
    # ------------------------------------------------------------------

    def build_pod(self, person: PersonData) -> Pod:
        pod = Pod(self.pod_base(person), owner_name=person.name)
        self._add_message_documents(pod, person)
        self._add_forum_documents(pod, person)
        self._add_noise_documents(pod, person)
        if self._config.emit_hints:
            # Content documents are in place; the hint builder summarizes
            # them, so it must run before (only) the profile/type index.
            from .hints import HINT_DOCUMENT_PATH, build_hint_triples

            pod.add_document(
                HINT_DOCUMENT_PATH, build_hint_triples(pod, ranges=self._hint_ranges())
            )
        pod.build_profile(extra_triples=self._profile_triples(person))
        pod.build_type_index(
            [
                (SNVOC.Post, "posts/", True),
                (SNVOC.Comment, "comments/", True),
                (SNVOC.Forum, "forums/", True),
            ]
        )
        return pod

    def build_all_pods(self) -> dict[int, Pod]:
        return {person.index: self.build_pod(person) for person in self._network.persons}

    def _hint_ranges(self) -> dict[str, set]:
        """Predicate ranges declared in hint documents, computed from the
        generated network so the declarations are accurate by construction
        (the summaries-are-authoritative trust model requires it)."""
        cached = getattr(self, "_hint_ranges_cache", None)
        if cached is not None:
            return cached
        kind_class = {"post": SNVOC.Post.value, "comment": SNVOC.Comment.value}
        # hasPost / hasComment are exact by construction: the like builder
        # picks the predicate from the liked message's kind.
        ranges: dict[str, set] = {
            SNVOC.hasPost.value: {SNVOC.Post.value},
            SNVOC.hasComment.value: {SNVOC.Comment.value},
        }
        container_classes = {
            kind_class[self._network.messages[message_id].kind]
            for forum in self._network.forums.values()
            for message_id in forum.message_ids
        }
        if container_classes:
            ranges[SNVOC.containerOf.value] = container_classes
        reply_classes = {
            kind_class[message.kind]
            for message in self._network.messages.values()
            if message.reply_of_id is not None
        }
        if reply_classes:
            ranges[SNVOC.hasReply.value] = reply_classes
        self._hint_ranges_cache = ranges
        return ranges

    # ------------------------------------------------------------------
    # document builders
    # ------------------------------------------------------------------

    def _profile_triples(self, person: PersonData) -> list[Triple]:
        me = intern_iri(self.webid(person.index))
        triples = [
            Triple(me, RDF.type, SNVOC.Person),
            Triple(me, SNVOC.id, _long_literal(person.ldbc_id)),
            Triple(me, SNVOC.firstName, Literal(person.first_name)),
            Triple(me, SNVOC.lastName, Literal(person.last_name)),
            Triple(me, SNVOC.isLocatedIn, DBPEDIA[person.city]),
            Triple(me, SNVOC.browserUsed, Literal(person.browser)),
        ]
        if self._config.emit_hints:
            from .hints import cardinality_index_url

            triples.append(
                Triple(
                    me,
                    SUBWEB.cardinalityIndex,
                    intern_iri(cardinality_index_url(self.pod_base(person))),
                )
            )
        for friend_index in person.knows:
            friend = intern_iri(self.webid(friend_index))
            triples.append(Triple(me, SNVOC.knows, friend))
            triples.append(Triple(me, FOAF.knows, friend))
        for position, like in enumerate(self._network.likes_of(person.index)):
            like_node = BlankNode(f"like_{person.index}_{position}")
            triples.append(Triple(me, SNVOC.likes, like_node))
            predicate = SNVOC.hasPost if like.message_kind == "post" else SNVOC.hasComment
            triples.append(
                Triple(like_node, predicate, intern_iri(self.message_iri(like.message_id)))
            )
            triples.append(
                Triple(
                    like_node,
                    SNVOC.creationDate,
                    Literal(like.creation_date.isoformat(), datatype=XSD_DATETIME),
                )
            )
        return triples

    def _message_triples(self, message: MessageData) -> list[Triple]:
        iri = intern_iri(self.message_iri(message.message_id))
        creator = intern_iri(self.webid(message.creator_index))
        rdf_class = SNVOC.Post if message.kind == "post" else SNVOC.Comment
        triples = [
            Triple(iri, RDF.type, rdf_class),
            Triple(iri, SNVOC.hasCreator, creator),
            Triple(iri, SNVOC.content, Literal(message.content)),
            Triple(iri, SNVOC.id, _long_literal(message.message_id)),
            Triple(
                iri,
                SNVOC.creationDate,
                Literal(message.creation_date.isoformat(), datatype=XSD_DATETIME),
            ),
            Triple(iri, SNVOC.browserUsed, Literal(message.browser)),
        ]
        for tag in message.tags:
            triples.append(Triple(iri, SNVOC.hasTag, SNTAG[tag]))
        if message.place:
            triples.append(Triple(iri, SNVOC.isLocatedIn, DBPEDIA[message.place]))
        if message.reply_of_id is not None:
            triples.append(
                Triple(iri, SNVOC.replyOf, intern_iri(self.message_iri(message.reply_of_id)))
            )
        for reply_id in self._replies_by_target.get(message.message_id, ()):
            triples.append(Triple(iri, SNVOC.hasReply, intern_iri(self.message_iri(reply_id))))
        return triples

    def _add_message_documents(self, pod: Pod, person: PersonData) -> None:
        by_document: dict[str, list[Triple]] = {}
        for message in self._network.messages.values():
            if message.creator_index != person.index:
                continue
            path = self._message_document_path(message)
            by_document.setdefault(path, []).extend(self._message_triples(message))
        for path, triples in sorted(by_document.items()):
            pod.add_document(path, triples)

    def _add_forum_documents(self, pod: Pod, person: PersonData) -> None:
        for forum in self._network.forums_of(person.index):
            forum_node = intern_iri(self.forum_iri(forum.forum_id))
            triples = [
                Triple(forum_node, RDF.type, SNVOC.Forum),
                Triple(forum_node, SNVOC.id, _long_literal(forum.forum_id)),
                Triple(forum_node, SNVOC.title, Literal(forum.title)),
                Triple(forum_node, SNVOC.hasModerator, intern_iri(self.webid(person.index))),
            ]
            for message_id in forum.message_ids:
                triples.append(
                    Triple(forum_node, SNVOC.containerOf, intern_iri(self.message_iri(message_id)))
                )
            pod.add_document(f"forums/{forum.forum_id}", triples)

    def _add_noise_documents(self, pod: Pod, person: PersonData) -> None:
        # Noise is deterministic per person, independent of generation order.
        rng = random.Random(f"{self._config.seed}/noise/{person.index}")
        noise_ns = f"{self.pod_base(person)}noise/vocab#"
        for file_number in range(self._config.noise_files_per_person):
            path = f"noise/noise-{file_number}"
            document_iri = self.pod_base(person) + path
            triples = []
            for triple_number in range(self._config.noise_triples_per_file):
                subject = NamedNode(f"{document_iri}#entity{triple_number % 7}")
                predicate = intern_iri(f"{noise_ns}p{rng.randrange(12)}")
                triples.append(
                    Triple(subject, predicate, Literal(f"noise-{rng.randrange(1_000_000)}"))
                )
            pod.add_document(path, triples)


def _long_literal(value: int) -> Literal:
    return Literal(str(value), datatype=XSD_LONG)
