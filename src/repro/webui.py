"""Web-based demonstration interface (paper Fig. 3, §4.1).

The paper demonstrates the engine through a browser page with a query
editor, a dropdown of the 37 Discover queries, and a streaming result
list.  This module reproduces that experience locally:

* :func:`render_page` produces the static HTML page (editor + dropdown +
  results pane), and
* :class:`DemoServer` serves it plus a ``/execute`` endpoint that runs the
  engine against the simulated pods, streaming results as NDJSON — the
  same incremental display the demo's Web worker provides.

Run ``python -m repro.webui`` and open the printed URL.
"""

from __future__ import annotations

import html
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from .ltqp.engine import LinkTraversalEngine
from .net.latency import SeededJitterLatency
from .sparql.parser import SparqlParseError, parse_query
from .sparql.results import binding_to_cli_line
from .solidbench.config import SolidBenchConfig
from .solidbench.queries import discover_suite
from .solidbench.universe import SolidBenchUniverse, build_universe

__all__ = ["render_page", "DemoServer"]

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Comunica-style Link Traversal — Python reproduction</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; max-width: 60em; }}
 textarea {{ width: 100%; height: 14em; font-family: monospace; }}
 select, button {{ font-size: 1em; margin: 0.3em 0; }}
 #results {{ border: 1px solid #ccc; padding: 0.5em; height: 20em; overflow-y: scroll;
            font-family: monospace; white-space: pre; }}
 .meta {{ color: #666; }}
</style>
</head>
<body>
<h1>Link Traversal SPARQL over simulated Solid pods</h1>
<p class="meta">Using solid-default config · {pod_count} simulated pods</p>
<label>Type or pick a query:
<select id="preset" onchange="pick()">{options}</select></label>
<textarea id="query">{default_query}</textarea>
<br><button onclick="execute()">Execute query</button>
<span id="status" class="meta"></span>
<h2>Query results:</h2>
<div id="results"></div>
<script>
const PRESETS = {presets_json};
function pick() {{
  const key = document.getElementById('preset').value;
  if (PRESETS[key]) document.getElementById('query').value = PRESETS[key];
}}
async function execute() {{
  const out = document.getElementById('results');
  const status = document.getElementById('status');
  out.textContent = '';
  status.textContent = 'running...';
  const started = performance.now();
  const response = await fetch('/execute?query=' + encodeURIComponent(
      document.getElementById('query').value));
  const reader = response.body.getReader();
  const decoder = new TextDecoder();
  let count = 0, buffer = '';
  while (true) {{
    const {{done, value}} = await reader.read();
    if (done) break;
    buffer += decoder.decode(value, {{stream: true}});
    const lines = buffer.split('\\n');
    buffer = lines.pop();
    for (const line of lines) {{
      if (!line) continue;
      out.textContent += line + '\\n';
      count += 1;
      status.textContent = count + ' results in ' +
          ((performance.now() - started) / 1000).toFixed(1) + 's';
    }}
  }}
  status.textContent = count + ' results in ' +
      ((performance.now() - started) / 1000).toFixed(1) + 's (done)';
}}
</script>
</body>
</html>
"""


def render_page(universe: SolidBenchUniverse) -> str:
    """The static demo page with the 37 preset queries."""
    queries = discover_suite(universe)
    options = "".join(
        f'<option value="{query.name}">[SolidBench] {query.name}</option>'
        for query in queries
    )
    presets = {query.name: query.text for query in queries}
    return _PAGE_TEMPLATE.format(
        pod_count=universe.person_count,
        options=options,
        default_query=html.escape(queries[0].text),
        presets_json=json.dumps(presets),
    )


class DemoServer:
    """Serves the demo page and executes queries over the simulation."""

    def __init__(
        self,
        universe: Optional[SolidBenchUniverse] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._universe = universe if universe is not None else build_universe(
            SolidBenchConfig(scale=0.02)
        )
        self._host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._page = render_page(self._universe)

    @property
    def universe(self) -> SolidBenchUniverse:
        return self._universe

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("server is not running")
        return f"http://{self._host}:{self._server.server_address[1]}/"

    def start(self) -> "DemoServer":
        demo = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, format: str, *args) -> None:
                pass

            def do_GET(self) -> None:
                parts = urlsplit(self.path)
                if parts.path == "/":
                    body = demo._page.encode("utf-8")
                    self.send_response(200)
                    self.send_header("content-type", "text/html; charset=utf-8")
                    self.send_header("content-length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                if parts.path == "/execute":
                    query_text = parse_qs(parts.query).get("query", [""])[0]
                    demo._execute(self, query_text)
                    return
                self.send_response(404)
                self.end_headers()

        self._server = ThreadingHTTPServer((self._host, self._requested_port), _Handler)
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def _execute(self, handler: BaseHTTPRequestHandler, query_text: str) -> None:
        try:
            query = parse_query(query_text)
        except SparqlParseError as error:
            body = json.dumps({"error": str(error)}).encode("utf-8")
            handler.send_response(400)
            handler.send_header("content-type", "application/json")
            handler.send_header("content-length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
            return
        client = self._universe.client(latency=SeededJitterLatency())
        engine = LinkTraversalEngine(client)
        execution = engine.query(query).run_sync()
        variables = query.variables()
        handler.send_response(200)
        handler.send_header("content-type", "application/x-ndjson")
        handler.end_headers()
        for timed in execution.results:
            line = binding_to_cli_line(timed.binding, variables) + "\n"
            handler.wfile.write(line.encode("utf-8"))
            handler.wfile.flush()

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "DemoServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main() -> int:
    server = DemoServer(port=8765)
    server.start()
    print(f"Demo UI running at {server.url} — Ctrl-C to stop")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
