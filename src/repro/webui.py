"""Web-based demonstration interface (paper Fig. 3, §4.1).

The paper demonstrates the engine through a browser page with a query
editor, a dropdown of the 37 Discover queries, and a streaming result
list.  This module reproduces that experience locally:

* :func:`render_page` produces the static HTML page (editor + dropdown +
  results pane), and
* :class:`DemoServer` serves it plus a ``/execute`` endpoint that runs the
  engine against the simulated pods, streaming results as NDJSON — the
  same incremental display the demo's Web worker provides.

By default every ``/execute`` builds a fresh client and engine (the
paper's one-shot demo).  Pass a started
:class:`~repro.service.ServiceHost` to run in **service mode** instead:
executions go through the shared :class:`~repro.service.QueryService`
(so repeat queries hit the HTTP cache and parsed-document store), the
SPARQL protocol is exposed over real HTTP at ``/sparql``, and
``/status.json`` reports live service statistics.

Run ``python -m repro.webui`` and open the printed URL.
"""

from __future__ import annotations

import asyncio
import html
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from .ltqp.engine import LinkTraversalEngine
from .net.latency import SeededJitterLatency
from .net.message import Request
from .obs import Tracer, chrome_trace_events
from .sparql.parser import SparqlParseError, parse_query
from .sparql.results import binding_to_cli_line
from .solidbench.config import SolidBenchConfig
from .solidbench.queries import discover_suite
from .solidbench.universe import SolidBenchUniverse, build_universe

__all__ = ["render_page", "DemoServer"]

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Comunica-style Link Traversal — Python reproduction</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; max-width: 60em; }}
 textarea {{ width: 100%; height: 14em; font-family: monospace; }}
 select, button {{ font-size: 1em; margin: 0.3em 0; }}
 #results {{ border: 1px solid #ccc; padding: 0.5em; height: 20em; overflow-y: scroll;
            font-family: monospace; white-space: pre; }}
 .meta {{ color: #666; }}
 #timeline {{ border: 1px solid #ccc; margin-top: 0.5em; padding: 0.5em;
             height: 16em; overflow-y: scroll; position: relative;
             font-size: 0.7em; font-family: monospace; }}
 .tl-row {{ position: relative; height: 1.1em; }}
 .tl-bar {{ position: absolute; height: 0.9em; background: #4a90d9;
           border-radius: 2px; min-width: 2px; }}
 .tl-bar.cache {{ background: #9b9b9b; }}
 .tl-bar.retry {{ background: #d98b4a; }}
 .tl-bar.error {{ background: #d9534f; }}
 .tl-label {{ position: absolute; left: 0; white-space: nowrap; color: #333; }}
 #first-result-marker {{ position: absolute; top: 0; bottom: 0; width: 0;
                        border-left: 2px dashed #2ca02c; }}
 #live-events {{ border: 1px solid #ccc; padding: 0.5em; height: 10em;
                overflow-y: scroll; font-family: monospace; white-space: pre;
                margin: 0.5em 0; }}
 #live-update {{ width: 100%; font-family: monospace; }}
 .live-add {{ color: #2ca02c; }}
 .live-del {{ color: #d9534f; }}
</style>
</head>
<body>
<h1>Link Traversal SPARQL over simulated Solid pods</h1>
<p class="meta">Using solid-default config · {pod_count} simulated pods</p>
<label>Type or pick a query:
<select id="preset" onchange="pick()">{options}</select></label>
<textarea id="query">{default_query}</textarea>
<br><button onclick="execute()">Execute query</button>
<span id="status" class="meta"></span>
<h2>Query results:</h2>
<div id="results"></div>
<h2>Request timeline:</h2>
<p class="meta">Fetch spans from the execution trace — blue = network,
grey = cache hit, orange = retry, red = error; dashed green line marks the
first streamed result. Full trace at <a href="/trace.json">/trace.json</a>
(Chrome trace-event format).</p>
<div id="timeline"></div>
<h2>Live query (service mode):</h2>
<p class="meta">Subscribe turns the query above into a <em>standing</em>
query: the pane below streams signed result changes (<span class="live-add">+</span>
additions, <span class="live-del">&minus;</span> retractions) as pod documents
change. Apply a SPARQL Update to a document URL to see maintenance live.</p>
<button id="live-subscribe" onclick="liveSubscribe()">Subscribe</button>
<button id="live-close" onclick="liveClose()" disabled>Close subscription</button>
<span id="live-status" class="meta"></span>
<div id="live-events"></div>
<label>Document URL: <input id="live-url" type="text" size="60"></label><br>
<textarea id="live-update" rows="4"
 placeholder="DELETE DATA {{ ... }} ; INSERT DATA {{ ... }}"></textarea><br>
<button onclick="liveUpdate()">Apply update</button>
<script>
const PRESETS = {presets_json};
function pick() {{
  const key = document.getElementById('preset').value;
  if (PRESETS[key]) document.getElementById('query').value = PRESETS[key];
}}
async function execute() {{
  const out = document.getElementById('results');
  const status = document.getElementById('status');
  out.textContent = '';
  status.textContent = 'running...';
  const started = performance.now();
  const response = await fetch('/execute?query=' + encodeURIComponent(
      document.getElementById('query').value));
  const reader = response.body.getReader();
  const decoder = new TextDecoder();
  let count = 0, buffer = '';
  while (true) {{
    const {{done, value}} = await reader.read();
    if (done) break;
    buffer += decoder.decode(value, {{stream: true}});
    const lines = buffer.split('\\n');
    buffer = lines.pop();
    for (const line of lines) {{
      if (!line) continue;
      out.textContent += line + '\\n';
      count += 1;
      status.textContent = count + ' results in ' +
          ((performance.now() - started) / 1000).toFixed(1) + 's';
    }}
  }}
  status.textContent = count + ' results in ' +
      ((performance.now() - started) / 1000).toFixed(1) + 's (done)';
  await renderTimeline();
}}
async function renderTimeline() {{
  const pane = document.getElementById('timeline');
  pane.textContent = '';
  let trace;
  try {{
    trace = await (await fetch('/trace.json')).json();
  }} catch (err) {{
    pane.textContent = '(no trace available)';
    return;
  }}
  const spans = trace.traceEvents.filter(e => e.ph === 'X' && e.name === 'attempt');
  if (!spans.length) {{ pane.textContent = '(no requests recorded)'; return; }}
  const t0 = Math.min(...spans.map(e => e.ts));
  const t1 = Math.max(...spans.map(e => e.ts + (e.dur || 0)));
  const total = Math.max(t1 - t0, 1);
  const labelWidth = 28;  // percent reserved for URL labels
  spans.sort((a, b) => a.ts - b.ts);
  for (const e of spans.slice(0, 400)) {{
    const row = document.createElement('div');
    row.className = 'tl-row';
    const label = document.createElement('span');
    label.className = 'tl-label';
    const url = (e.args && e.args.url) || '';
    label.textContent = url.split('/').filter(Boolean).slice(-1)[0] || url;
    label.title = url;
    const bar = document.createElement('div');
    bar.className = 'tl-bar';
    if (e.args && e.args.from_cache) bar.className += ' cache';
    else if (e.args && e.args.attempt > 1) bar.className += ' retry';
    if (e.args && e.args.error) bar.className += ' error';
    const left = labelWidth + ((e.ts - t0) / total) * (100 - labelWidth);
    const width = Math.max(((e.dur || 0) / total) * (100 - labelWidth), 0.15);
    bar.style.left = left + '%';
    bar.style.width = width + '%';
    bar.title = url + ' — ' + ((e.dur || 0) / 1000).toFixed(1) + ' ms' +
        (e.args && e.args.from_cache ? ' (cache)' : '');
    row.appendChild(label);
    row.appendChild(bar);
    pane.appendChild(row);
  }}
  const first = trace.traceEvents.find(e => e.ph === 'i' && e.name === 'first-result');
  if (first) {{
    const marker = document.createElement('div');
    marker.id = 'first-result-marker';
    marker.style.left = (labelWidth + ((first.ts - t0) / total) * (100 - labelWidth)) + '%';
    marker.title = 'first result';
    pane.appendChild(marker);
  }}
  if (spans.length > 400) {{
    const more = document.createElement('div');
    more.className = 'meta';
    more.textContent = '... and ' + (spans.length - 400) + ' more requests';
    pane.appendChild(more);
  }}
}}
let liveId = null, liveNext = 0, livePolling = false;
function liveRender(events) {{
  const pane = document.getElementById('live-events');
  for (const e of events) {{
    const row = document.createElement('div');
    const sign = document.createElement('span');
    sign.className = e.delta > 0 ? 'live-add' : 'live-del';
    sign.textContent = (e.delta > 0 ? '+' : '') + e.delta + ' ';
    row.appendChild(sign);
    const parts = Object.entries(e.binding).map(([k, v]) => '?' + k + '=' + v);
    row.appendChild(document.createTextNode(
        parts.join(' ') + (e.url ? '   [' + e.url.split('/').slice(-2).join('/') + ']' : '')));
    pane.appendChild(row);
  }}
  pane.scrollTop = pane.scrollHeight;
}}
async function liveSubscribe() {{
  const status = document.getElementById('live-status');
  document.getElementById('live-events').textContent = '';
  const query = document.getElementById('query').value;
  const response = await fetch('/subscribe?query=' + encodeURIComponent(query));
  if (!response.ok) {{
    status.textContent = 'subscribe failed: ' + await response.text();
    return;
  }}
  const opened = await response.json();
  liveId = opened.subscription;
  liveNext = opened.next;
  liveRender(opened.events);
  status.textContent = 'subscribed (' + liveId + ', ' +
      opened.events.length + ' initial results)';
  document.getElementById('live-subscribe').disabled = true;
  document.getElementById('live-close').disabled = false;
  livePolling = true;
  livePoll();
}}
async function livePoll() {{
  while (livePolling && liveId) {{
    let poll;
    try {{
      poll = await (await fetch('/subscribe?id=' + liveId +
          '&after=' + (liveNext - 1) + '&wait=5')).json();
    }} catch (err) {{ break; }}
    if (!livePolling) break;
    if (poll.events && poll.events.length) {{
      liveRender(poll.events);
      liveNext = poll.next;
    }}
    if (poll.closed) break;
  }}
}}
async function liveClose() {{
  livePolling = false;
  if (liveId) await fetch('/subscribe?id=' + liveId + '&close=1');
  liveId = null;
  document.getElementById('live-subscribe').disabled = false;
  document.getElementById('live-close').disabled = true;
  document.getElementById('live-status').textContent = 'closed';
}}
async function liveUpdate() {{
  const status = document.getElementById('live-status');
  const url = document.getElementById('live-url').value;
  const update = document.getElementById('live-update').value;
  if (!url || !update) {{
    status.textContent = 'need a document URL and an update';
    return;
  }}
  const response = await fetch('/update?url=' + encodeURIComponent(url),
      {{method: 'POST', body: update}});
  const text = await response.text();
  status.textContent = response.ok ? 'update applied: ' + text
                                   : 'update rejected: ' + text;
}}
</script>
</body>
</html>
"""


def render_page(universe: SolidBenchUniverse) -> str:
    """The static demo page with the 37 preset queries."""
    queries = discover_suite(universe)
    options = "".join(
        f'<option value="{query.name}">[SolidBench] {query.name}</option>'
        for query in queries
    )
    presets = {query.name: query.text for query in queries}
    return _PAGE_TEMPLATE.format(
        pod_count=universe.person_count,
        options=options,
        default_query=html.escape(queries[0].text),
        presets_json=json.dumps(presets),
    )


class DemoServer:
    """Serves the demo page and executes queries over the simulation."""

    def __init__(
        self,
        universe: Optional[SolidBenchUniverse] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        service=None,
    ) -> None:
        self._universe = universe if universe is not None else build_universe(
            SolidBenchConfig(scale=0.02)
        )
        self._host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._page = render_page(self._universe)
        #: Tracer of the most recent ``/execute`` run, served at /trace.json.
        self._last_trace: Optional[Tracer] = None
        #: A started :class:`~repro.service.ServiceHost` (service mode) or
        #: ``None`` (one-shot mode, the paper's original demo).
        self._service_host = service
        self._sparql_app = None
        if service is not None:
            from .service import ServiceSparqlApp

            self._sparql_app = ServiceSparqlApp(service.service)

    @property
    def universe(self) -> SolidBenchUniverse:
        return self._universe

    @property
    def service_host(self):
        return self._service_host

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("server is not running")
        return f"http://{self._host}:{self._server.server_address[1]}/"

    def start(self) -> "DemoServer":
        demo = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, format: str, *args) -> None:
                pass

            def do_GET(self) -> None:
                parts = urlsplit(self.path)
                if parts.path == "/":
                    body = demo._page.encode("utf-8")
                    self.send_response(200)
                    self.send_header("content-type", "text/html; charset=utf-8")
                    self.send_header("content-length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                if parts.path == "/execute":
                    query_text = parse_qs(parts.query).get("query", [""])[0]
                    demo._execute(self, query_text)
                    return
                if parts.path == "/trace.json":
                    demo._serve_trace(self)
                    return
                if parts.path == "/status.json":
                    demo._serve_status(self)
                    return
                if demo._sparql_app is not None and parts.path in (
                    "/sparql",
                    "/service/status",
                    "/subscribe",
                ):
                    demo._serve_sparql(self)
                    return
                self.send_response(404)
                self.end_headers()

            def do_POST(self) -> None:
                parts = urlsplit(self.path)
                if demo._sparql_app is not None and parts.path in (
                    "/sparql",
                    "/update",
                ):
                    demo._serve_sparql(self)
                    return
                self.send_response(404)
                self.end_headers()

        self._server = ThreadingHTTPServer((self._host, self._requested_port), _Handler)
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def _execute(self, handler: BaseHTTPRequestHandler, query_text: str) -> None:
        try:
            query = parse_query(query_text)
        except SparqlParseError as error:
            body = json.dumps({"error": str(error)}).encode("utf-8")
            handler.send_response(400)
            handler.send_header("content-type", "application/json")
            handler.send_header("content-length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
            return
        tracer = Tracer()
        if self._service_host is not None:
            # Service mode: the shared engine, caches, and document store.
            result = self._service_host.execute(query, tracer=tracer)
            results = result.results
        else:
            # One-shot mode: a fresh client + engine per request.
            client = self._universe.client(latency=SeededJitterLatency())
            engine = LinkTraversalEngine(client)
            results = engine.query(query, tracer=tracer).run_sync().results
        self._last_trace = tracer
        variables = query.variables()
        handler.send_response(200)
        handler.send_header("content-type", "application/x-ndjson")
        handler.end_headers()
        for timed in results:
            line = binding_to_cli_line(timed.binding, variables) + "\n"
            handler.wfile.write(line.encode("utf-8"))
            handler.wfile.flush()

    def _serve_status(self, handler: BaseHTTPRequestHandler) -> None:
        """The schema-2 status document (or the one-shot marker)."""
        from .service.status import STATUS_SCHEMA_VERSION, build_status

        if self._service_host is None:
            document = {
                "schema": STATUS_SCHEMA_VERSION,
                "mode": "one-shot",
                "service": None,
            }
        else:
            document = build_status(self._service_host.service)
        body = json.dumps(document).encode("utf-8")
        handler.send_response(200)
        handler.send_header("content-type", "application/json")
        handler.send_header("content-length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    def _serve_sparql(self, handler: BaseHTTPRequestHandler) -> None:
        """Bridge real HTTP to the simulated SPARQL-protocol app."""
        length = int(handler.headers.get("content-length") or 0)
        request = Request(
            handler.command,
            f"http://service.local{handler.path}",
            {k.lower(): v for k, v in handler.headers.items()},
            handler.rfile.read(length) if length else b"",
        )
        future = asyncio.run_coroutine_threadsafe(
            self._sparql_app.handle(request), self._service_host.loop
        )
        response = future.result()
        handler.send_response(response.status)
        for name, value in response.headers.items():
            if name.lower() != "content-length":
                handler.send_header(name, value)
        handler.send_header("content-length", str(len(response.body)))
        handler.end_headers()
        handler.wfile.write(response.body)

    def _serve_trace(self, handler: BaseHTTPRequestHandler) -> None:
        """Chrome trace-event JSON for the most recent execution."""
        tracer = self._last_trace
        if tracer is None:
            body = json.dumps({"error": "no execution traced yet"}).encode("utf-8")
            handler.send_response(404)
        else:
            body = json.dumps(
                {"traceEvents": chrome_trace_events(tracer), "displayTimeUnit": "ms"}
            ).encode("utf-8")
            handler.send_response(200)
        handler.send_header("content-type", "application/json")
        handler.send_header("content-length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "DemoServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main() -> int:
    server = DemoServer(port=8765)
    server.start()
    print(f"Demo UI running at {server.url} — Ctrl-C to stop")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
