"""Command-line SPARQL link-traversal client (paper Fig. 2).

Mirrors ``comunica-sparql-link-traversal-solid``: takes seed URLs and a
SPARQL query, runs traversal-based execution, and prints one JSON object
per result as results stream in::

    repro-sparql-ltqp --simulate 0.02 --discover 6.5
    repro-sparql-ltqp --simulate 0.02 SEED_URL "SELECT ..." --lenient
    repro-sparql-ltqp --simulate 0.02 --discover 1.5 --waterfall

``repro-sparql-ltqp serve`` instead starts the long-lived
:class:`~repro.service.QueryService` behind the demo web UI and a real
SPARQL-protocol endpoint (see :func:`serve_main`)::

    repro-sparql-ltqp serve --simulate 0.02 --port 8765

``repro-sparql-ltqp watch`` runs a *standing* query: the initial
traversal results stream out as ``+1`` events, then each SPARQL Update
from ``--updates FILE`` (one JSON object per line: ``{"url": ...,
"update": ...}``) is applied to its pod document and the signed result
changes print as they happen (see :func:`watch_main`)::

    repro-sparql-ltqp watch --discover 1.5 --updates edits.jsonl

Since the session has no network, queries run against a simulated
SolidBench environment (``--simulate SCALE``); the engine itself is
transport-agnostic and would run unchanged against real pods.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from typing import Optional

import json

from .bench.waterfall import build_waterfall_from_trace, render_waterfall
from .obs import Metrics, Tracer, render_trace_summary, write_chrome_trace
from .ltqp.engine import EngineConfig, LinkTraversalEngine
from .net.faults import FaultPlan
from .net.latency import NoLatency, SeededJitterLatency
from .net.resilience import NetworkPolicy
from .sparql.parser import parse_query
from .sparql.results import binding_to_cli_line
from .ltqp.links import QUEUE_POLICIES
from .solidbench.config import SolidBenchConfig
from .solidbench.queries import discover_query
from .solidbench.universe import build_universe

__all__ = [
    "main",
    "build_arg_parser",
    "serve_main",
    "build_serve_arg_parser",
    "watch_main",
    "build_watch_arg_parser",
]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sparql-ltqp",
        description="Link-traversal SPARQL querying over (simulated) Solid pods",
    )
    parser.add_argument("seeds", nargs="*", help="seed URLs followed by the SPARQL query text")
    parser.add_argument(
        "--query", help="SPARQL query text (alternative to trailing positional)"
    )
    parser.add_argument(
        "--discover",
        metavar="T.V",
        help="run a predefined SolidBench Discover query, e.g. 1.5 or 8.5",
    )
    parser.add_argument(
        "--simulate",
        type=float,
        default=0.02,
        metavar="SCALE",
        help="SolidBench universe scale (default 0.02 ≈ 31 pods)",
    )
    parser.add_argument("--bench-seed", type=int, default=42, help="generator seed")
    parser.add_argument(
        "--idp",
        default="void",
        help="identity provider: 'void' for anonymous, or a person index to log in as",
    )
    parser.add_argument(
        "--lenient",
        action="store_true",
        default=True,
        help="ignore fetch/parse errors (the default; see --strict)",
    )
    parser.add_argument(
        "--strict",
        action="store_false",
        dest="lenient",
        help="raise on fetch/parse errors instead of skipping documents",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="inject transient 503 faults on fraction P of URLs (deterministic)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=42, help="seed for the injected fault plan"
    )
    parser.add_argument(
        "--no-retry",
        action="store_true",
        help="disable retries/backoff/circuit breaking (the pre-resilience client)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-request timeout in seconds (default from NetworkPolicy)",
    )
    parser.add_argument("--waterfall", action="store_true", help="print the resource waterfall")
    parser.add_argument("--stats", action="store_true", help="print execution statistics")
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record a span trace and write Chrome trace-event JSON to PATH "
        "(open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--trace-summary",
        action="store_true",
        help="print a flamegraph-style text summary of the recorded trace",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect counters/gauges/histograms and print them after the run",
    )
    parser.add_argument(
        "--no-latency", action="store_true", help="disable simulated network latency"
    )
    parser.add_argument(
        "--queue-policy",
        choices=sorted(QUEUE_POLICIES),
        default="fifo",
        help="link queue discipline: fifo = breadth-first (default), "
        "lifo = depth-first, priority = shallowest-link-first, "
        "fair = round-robin across origins (starvation-resistant), "
        "guided = provenance/cardinality-scored (see --subweb)",
    )
    parser.add_argument(
        "--subweb",
        metavar="PATH",
        help="subweb-specification JSON file scoping traversal to declared "
        "sources (guided traversal; pruned links are reported in the "
        "completeness stats)",
    )
    parser.add_argument(
        "--emit-hints",
        action="store_true",
        help="generate per-pod cardinality-hint documents in the simulated "
        "universe (source summaries the guided queue exploits)",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=0,
        metavar="N",
        help="drop links more than N hops from a seed (0 = unbounded)",
    )
    parser.add_argument(
        "--max-origin-derefs",
        type=int,
        default=0,
        metavar="N",
        help="per-origin dereference budget: refuse further links from an "
        "origin after N documents (0 = unbounded)",
    )
    parser.add_argument(
        "--max-doc-bytes",
        type=int,
        default=0,
        metavar="B",
        help="per-document size cap in bytes: abort transfers and refuse "
        "parses over B (0 = unbounded)",
    )
    parser.add_argument("--limit", type=int, default=0, help="stop after N results (0 = all)")
    parser.add_argument(
        "--format",
        choices=["cli", "json", "xml", "csv", "tsv"],
        default="cli",
        help="result format: cli = streaming JSON lines (Fig. 2); others buffer",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the query plan (algebra, join order, extractors) and exit",
    )
    return parser


def build_serve_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sparql-ltqp serve",
        description="Host the demo web UI and a SPARQL endpoint over one "
        "long-lived QueryService with shared cross-query caches",
    )
    parser.add_argument(
        "--simulate",
        type=float,
        default=0.02,
        metavar="SCALE",
        help="SolidBench universe scale (default 0.02 ≈ 31 pods)",
    )
    parser.add_argument("--bench-seed", type=int, default=42, help="generator seed")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8765, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        help="queries traversing at once; more wait in the admission queue",
    )
    parser.add_argument(
        "--max-queued",
        type=int,
        default=32,
        help="admission queue length; past it submissions get a 503",
    )
    parser.add_argument(
        "--max-documents",
        type=int,
        default=0,
        metavar="N",
        help="default per-query link budget (0 = unbounded)",
    )
    parser.add_argument(
        "--max-duration",
        type=float,
        default=0.0,
        metavar="S",
        help="default per-query time budget in seconds (0 = unbounded)",
    )
    parser.add_argument(
        "--queue-policy",
        choices=sorted(QUEUE_POLICIES),
        default="fifo",
        help="link queue discipline for every query (default fifo; "
        "'fair' round-robins dereferences across origins; 'guided' "
        "scores links by provenance and cardinality hints)",
    )
    parser.add_argument(
        "--subweb",
        metavar="PATH",
        help="subweb-specification JSON file applied to every query "
        "(workers load it independently, so the path must be readable "
        "by each shard process)",
    )
    parser.add_argument(
        "--emit-hints",
        action="store_true",
        help="generate per-pod cardinality-hint documents in the simulated "
        "universe",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=0,
        metavar="N",
        help="per-query link-depth bound (0 = unbounded)",
    )
    parser.add_argument(
        "--max-origin-derefs",
        type=int,
        default=0,
        metavar="N",
        help="per-origin dereference budget per query (0 = unbounded)",
    )
    parser.add_argument(
        "--max-doc-bytes",
        type=int,
        default=0,
        metavar="B",
        help="per-document size cap in bytes (0 = unbounded)",
    )
    parser.add_argument(
        "--no-latency", action="store_true", help="disable simulated network latency"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard the service over N worker processes (1 = in-process); "
        "each worker owns its own caches and document store",
    )
    parser.add_argument(
        "--routing",
        choices=["query", "origin"],
        default="query",
        help="shard routing key: 'query' spreads distinct queries, "
        "'origin' pins queries to the shard owning their seed's pod",
    )
    parser.add_argument(
        "--store-path",
        default=None,
        metavar="PATH",
        help="persist the HTTP cache and parsed-document store to PATH "
        "(a SQLite file; with --workers N, a directory holding one file "
        "per shard); restarting against the same path starts warm",
    )
    parser.add_argument(
        "--backend",
        choices=["memory", "sqlite"],
        default=None,
        help="storage backend under the caches (default: memory, or "
        "sqlite when --store-path is given)",
    )
    return parser


def build_watch_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sparql-ltqp watch",
        description="Run a standing (live) query: print initial results as "
        "+1 events, then signed result changes as pod documents change",
    )
    parser.add_argument(
        "seeds", nargs="*", help="seed URLs followed by the SPARQL query text"
    )
    parser.add_argument(
        "--query", help="SPARQL query text (alternative to trailing positional)"
    )
    parser.add_argument(
        "--discover",
        metavar="T.V",
        help="watch a predefined SolidBench Discover query, e.g. 1.5",
    )
    parser.add_argument(
        "--simulate",
        type=float,
        default=0.02,
        metavar="SCALE",
        help="SolidBench universe scale (default 0.02 ≈ 31 pods)",
    )
    parser.add_argument("--bench-seed", type=int, default=42, help="generator seed")
    parser.add_argument(
        "--updates",
        metavar="FILE",
        help="JSON-lines file of edits to apply, one {\"url\": ..., "
        "\"update\": ...} object per line ('-' reads stdin); each update "
        "is PATCHed to its pod owner-authenticated and the resulting "
        "signed events print before the next edit applies",
    )
    parser.add_argument(
        "--no-latency", action="store_true", help="disable simulated network latency"
    )
    return parser


def watch_main(argv: Optional[list[str]] = None) -> int:
    """``repro-sparql-ltqp watch``: one standing query over the simulation.

    Change flow is the full live path: the edit is a real PATCH against
    the simulated Solid server, whose change listener notifies the
    standing query; a drain then re-dereferences the changed document
    (conditional request), diffs it against the stored parse, and pushes
    the signed delta through the retained pipeline.
    """
    from .ltqp.live import LiveQuery

    args = build_watch_arg_parser().parse_args(argv)
    config = SolidBenchConfig(
        scale=args.simulate,
        seed=args.bench_seed,
        emit_hints=getattr(args, "emit_hints", False),
    )
    universe = build_universe(config)

    if args.discover:
        template_text, _, variant_text = args.discover.partition(".")
        named = discover_query(universe, int(template_text), int(variant_text or "1"))
        query_text = named.text
        seeds: list[str] = list(named.seeds)
        print(f"# {named.name}: {named.description}", file=sys.stderr)
    else:
        positional = list(args.seeds)
        query_text = args.query
        if query_text is None:
            if not positional:
                print(
                    "error: no query given (use --discover or pass a query)",
                    file=sys.stderr,
                )
                return 2
            query_text = positional.pop()
        seeds = positional

    latency = NoLatency() if args.no_latency else SeededJitterLatency(seed=args.bench_seed)
    client = universe.client(latency=latency)
    engine = LinkTraversalEngine(client, config=_engine_config(args, lenient=True))
    query = parse_query(query_text)
    variables = query.variables()
    live = LiveQuery(engine, query, seeds=seeds or None)

    def emit(events) -> None:
        for event in events:
            sign = f"+{event.delta}" if event.delta > 0 else str(event.delta)
            line = f"{sign} {binding_to_cli_line(event.binding, variables)}"
            if event.url:
                line += f"  # {event.url}"
            print(line, flush=True)

    edits: list[dict] = []
    if args.updates:
        stream = sys.stdin if args.updates == "-" else open(args.updates)
        with stream:
            for raw in stream:
                raw = raw.strip()
                if raw:
                    edits.append(json.loads(raw))

    async def run() -> int:
        from .net.message import Request

        await live.start()
        emit(live.events)
        print(f"# {len(live.events)} initial results; watching", file=sys.stderr)
        internet = client.internet
        for origin in internet.origins():
            app = internet.app_for(origin)
            add = getattr(app, "add_change_listener", None)
            if add is not None:
                add(live.notify)
        for edit in edits:
            url = edit["url"].split("#", 1)[0]
            from urllib.parse import urlsplit

            parts = urlsplit(url)
            app = internet.app_for(f"{parts.scheme}://{parts.netloc}")
            headers = {"content-type": "application/sparql-update"}
            login = getattr(app, "login_owner", None)
            if login is not None:
                headers.update(login(parts.path))
            response = await internet.dispatch(
                Request("PATCH", url, headers, edit["update"].encode("utf-8"))
            )
            if response.status >= 400:
                print(
                    f"# update rejected: HTTP {response.status} for {url}",
                    file=sys.stderr,
                )
                continue
            emit(await live.drain())
        live.close()
        size = sum(live.current_results().values())
        print(
            f"# {len(edits)} edits applied; {size} current results "
            f"({len(live.events)} events total)",
            file=sys.stderr,
        )
        return 0

    return asyncio.run(run())


def _engine_config(args, **extra) -> EngineConfig:
    """An :class:`EngineConfig` carrying the shared hardening flags.

    ``--max-doc-bytes`` installs the same bound on both sides of the
    dereference: the network client aborts oversized transfers
    (``max_response_bytes``) and the dereferencer refuses oversized
    bodies arriving from cache or store (``max_parse_bytes``).
    """
    config = EngineConfig(**extra)
    config.max_depth = getattr(args, "max_depth", 0)
    config.max_origin_derefs = getattr(args, "max_origin_derefs", 0)
    config.subweb = getattr(args, "subweb", None)
    doc_bytes = getattr(args, "max_doc_bytes", 0)
    if doc_bytes:
        config.max_response_bytes = doc_bytes
        config.max_parse_bytes = doc_bytes
    return config


def build_service_stack(args):
    """Wire universe → shared resources → service → host → web UI.

    Returns the (unstarted) :class:`~repro.webui.DemoServer` whose
    :class:`~repro.service.ServiceHost` is already running.  Split from
    :func:`serve_main` so tests can drive the stack without blocking.
    """
    from .service import QueryService, ServiceHost, SharedResources
    from .webui import DemoServer

    config = SolidBenchConfig(
        scale=args.simulate,
        seed=args.bench_seed,
        emit_hints=getattr(args, "emit_hints", False),
    )
    universe = build_universe(config)
    workers = getattr(args, "workers", 1)
    store_path = getattr(args, "store_path", None)
    storage_backend = getattr(args, "backend", None)
    if workers > 1:
        from .service.shards import ShardSpec, ShardedQueryService

        spec = ShardSpec(
            config=config,
            latency_seed=args.bench_seed,
            no_latency=args.no_latency,
            queue_policy=args.queue_policy,
            max_concurrent=args.max_concurrent,
            max_queued=args.max_queued,
            default_max_documents=args.max_documents,
            default_max_duration=args.max_duration,
            max_depth=getattr(args, "max_depth", 0),
            max_origin_derefs=getattr(args, "max_origin_derefs", 0),
            max_doc_bytes=getattr(args, "max_doc_bytes", 0),
            subweb=getattr(args, "subweb", None),
            store_path=store_path,
            storage_backend=storage_backend,
        )
        service = ShardedQueryService(
            spec, workers=workers, routing=getattr(args, "routing", "query")
        )
    else:
        latency = (
            NoLatency() if args.no_latency else SeededJitterLatency(seed=args.bench_seed)
        )
        resources = SharedResources.for_universe(
            universe,
            latency=latency,
            store_path=store_path,
            storage_backend=storage_backend,
        )
        service = QueryService(
            resources,
            config=_engine_config(args, queue_policy=args.queue_policy),
            max_concurrent=args.max_concurrent,
            max_queued=args.max_queued,
            default_max_documents=args.max_documents,
            default_max_duration=args.max_duration,
        )
    host = ServiceHost(service).start()
    return DemoServer(universe, host=args.host, port=args.port, service=host)


def serve_main(argv: Optional[list[str]] = None) -> int:
    """``repro-sparql-ltqp serve``: one service behind UI + endpoint.

    SIGTERM (and Ctrl-C) trigger a *graceful* shutdown: stop accepting
    HTTP, drain in-flight queries for a few seconds, and report whatever
    was still running when the deadline hit.
    """
    import signal
    import threading

    args = build_serve_arg_parser().parse_args(argv)
    server = build_service_stack(args)
    server.start()
    print(f"Demo UI running at {server.url} — Ctrl-C to stop", file=sys.stderr)
    print(
        f"SPARQL endpoint at {server.url}sparql — "
        f"status at {server.url}status.json",
        file=sys.stderr,
    )
    if getattr(args, "workers", 1) > 1:
        print(
            f"Sharded over {args.workers} workers ({args.routing} routing)",
            file=sys.stderr,
        )
    if getattr(args, "store_path", None):
        print(f"Persistent store at {args.store_path}", file=sys.stderr)
    shutdown = threading.Event()

    def _on_sigterm(signum, frame):  # noqa: ARG001 — signal handler shape
        print("SIGTERM received; draining...", file=sys.stderr)
        shutdown.set()

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        shutdown.wait()
    except KeyboardInterrupt:
        print("Interrupted; draining...", file=sys.stderr)
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.stop()
        pending = server.service_host.stop()
        if pending:
            print(
                f"# {len(pending)} queries still in flight at shutdown:",
                file=sys.stderr,
            )
            for snapshot in pending:
                print(f"#   {json.dumps(snapshot)}", file=sys.stderr)
        else:
            print("# drained cleanly", file=sys.stderr)
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "watch":
        return watch_main(argv[1:])
    args = build_arg_parser().parse_args(argv)

    config = SolidBenchConfig(
        scale=args.simulate,
        seed=args.bench_seed,
        emit_hints=getattr(args, "emit_hints", False),
    )
    universe = build_universe(config)

    if args.discover:
        template_text, _, variant_text = args.discover.partition(".")
        named = discover_query(universe, int(template_text), int(variant_text or "1"))
        query_text = named.text
        seeds: list[str] = list(named.seeds)
        print(f"# {named.name}: {named.description}", file=sys.stderr)
    else:
        positional = list(args.seeds)
        query_text = args.query
        if query_text is None:
            if not positional:
                print("error: no query given (use --discover or pass a query)", file=sys.stderr)
                return 2
            query_text = positional.pop()
        seeds = positional

    auth_headers: Optional[dict[str, str]] = None
    if args.idp != "void":
        person_index = int(args.idp)
        session = universe.idp.login(universe.webid(person_index))
        auth_headers = session.headers
        print(f"# logged in as {session.webid}", file=sys.stderr)

    latency = NoLatency() if args.no_latency else SeededJitterLatency(seed=args.bench_seed)
    client = universe.client(latency=latency)

    if args.fault_rate > 0:
        client.internet.install_fault_plan(
            FaultPlan.transient(rate=args.fault_rate, seed=args.fault_seed)
        )
        print(
            f"# fault injection: transient 503s on {args.fault_rate:.0%} of URLs "
            f"(seed {args.fault_seed})",
            file=sys.stderr,
        )

    network = NetworkPolicy.no_retry() if args.no_retry else NetworkPolicy()
    if args.timeout is not None:
        network.request_timeout = args.timeout
    engine = LinkTraversalEngine(
        client,
        config=_engine_config(
            args, network=network, lenient=args.lenient, queue_policy=args.queue_policy
        ),
        auth_headers=auth_headers,
    )

    query = parse_query(query_text)
    variables = query.variables()

    # The waterfall is trace-driven: any of these flags turns tracing on
    # for this run (the engine is a strict no-op when tracer is None).
    tracer: Optional[Tracer] = None
    if args.trace or args.trace_summary or args.waterfall:
        tracer = Tracer()
    metrics: Optional[Metrics] = Metrics() if args.metrics else None

    def emit_observability() -> None:
        if tracer is not None and args.waterfall:
            print(
                render_waterfall(build_waterfall_from_trace(tracer), show_via=True),
                file=sys.stderr,
            )
        if tracer is not None and args.trace:
            events = write_chrome_trace(tracer, args.trace)
            print(f"# trace: {events} events -> {args.trace}", file=sys.stderr)
        if tracer is not None and args.trace_summary:
            print(render_trace_summary(tracer), file=sys.stderr)
        if metrics is not None:
            print(metrics.render(), file=sys.stderr)

    if args.explain:
        from .ltqp.explain import explain_plan

        print(explain_plan(query, seeds=seeds, extractors=engine.extractors))
        return 0

    if args.format != "cli":
        from .sparql.results import (
            results_to_csv,
            results_to_sparql_json,
            results_to_sparql_xml,
            results_to_tsv,
        )

        execution = engine.query(
            query, seeds=seeds or None, tracer=tracer, metrics=metrics
        ).run_sync()
        bindings = execution.bindings
        if args.limit:
            bindings = bindings[: args.limit]
        renderers = {
            "json": results_to_sparql_json,
            "xml": results_to_sparql_xml,
            "csv": results_to_csv,
            "tsv": results_to_tsv,
        }
        print(renderers[args.format](variables, bindings), end="")
        print(f"# {len(bindings)} results", file=sys.stderr)
        emit_observability()
        return 0

    execution = engine.query(query, seeds=seeds or None, tracer=tracer, metrics=metrics)

    async def run() -> int:
        count = 0
        start = time.monotonic()
        async for binding in execution:
            print(binding_to_cli_line(binding, variables), flush=True)
            count += 1
            if args.limit and count >= args.limit:
                await execution.cancel()
                break
        elapsed = time.monotonic() - start
        print(f"# {count} results in {elapsed:.2f}s", file=sys.stderr)
        return count

    asyncio.run(run())

    emit_observability()
    if args.stats:
        log = client.log
        print(
            f"# requests={len(log)} bytes={log.total_bytes()} "
            f"depth={log.max_depth()} parallelism={log.max_parallelism()} "
            f"retries={log.retry_count()}",
            file=sys.stderr,
        )
        completeness = execution.stats.completeness()
        print(f"# completeness: {json.dumps(completeness)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
