"""Embedded single-file persistence: SQLite in WAL mode.

One file holds every namespace (parsed documents, HTTP responses) of
one worker's storage tier.  Design points:

* **WAL journal** — readers never block the writer, and a crash at any
  point rolls back to the last committed transaction on reopen: the
  file is never corrupt, only *behind*.  A document whose write had not
  been committed simply misses on the next lookup and falls back to a
  cold dereference — the same path as a never-seen URL.
* **Batched commits** — writes accumulate in one open transaction and
  commit on :meth:`flush` (or automatically every ``auto_flush`` writes,
  so an unbounded ingest cannot hold a giant transaction open).  The
  service flushes on drain and close; a crash between ``put`` and
  ``flush`` loses only that window.
* **Synchronous=NORMAL** — in WAL mode this fsyncs on checkpoint, not
  per commit; a power loss can lose the last commits but never corrupts
  (SQLite's documented durability/perf trade for cache workloads).

The connection is shared across threads behind one lock: the service
host's event-loop thread, web-UI handler threads, and benchmark drivers
all reach the same store.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Iterator, Optional

__all__ = ["SqliteBackend"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS kv (
    namespace TEXT NOT NULL,
    key TEXT NOT NULL,
    value BLOB NOT NULL,
    updated_at REAL NOT NULL,
    PRIMARY KEY (namespace, key)
) WITHOUT ROWID
"""


class SqliteBackend:
    """Crash-safe namespaced key/value store in one SQLite file."""

    kind = "sqlite"
    persistent = True

    def __init__(self, path: str, auto_flush: int = 256) -> None:
        self.path = str(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # isolation_level=None: no implicit transaction management — we
        # open and commit transactions explicitly so the crash window is
        # exactly the un-flushed batch, nothing more or less.
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        self._lock = threading.Lock()
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(_SCHEMA)
        self._in_transaction = False
        self._auto_flush = max(1, auto_flush)
        self.pending_writes = 0
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.flushes = 0
        self._closed = False

    def _begin(self) -> None:
        if not self._in_transaction:
            self._conn.execute("BEGIN")
            self._in_transaction = True

    def _commit_locked(self) -> None:
        if self._in_transaction:
            self._conn.execute("COMMIT")
            self._in_transaction = False
            self.flushes += 1
        self.pending_writes = 0

    def _after_write_locked(self) -> None:
        self.pending_writes += 1
        if self.pending_writes >= self._auto_flush:
            self._commit_locked()

    # -- protocol -------------------------------------------------------

    def get(self, namespace: str, key: str) -> Optional[bytes]:
        with self._lock:
            self.gets += 1
            row = self._conn.execute(
                "SELECT value FROM kv WHERE namespace = ? AND key = ?",
                (namespace, key),
            ).fetchone()
        return bytes(row[0]) if row is not None else None

    def put(self, namespace: str, key: str, value: bytes) -> None:
        import time

        with self._lock:
            self._begin()
            self._conn.execute(
                "INSERT OR REPLACE INTO kv (namespace, key, value, updated_at) "
                "VALUES (?, ?, ?, ?)",
                (namespace, key, sqlite3.Binary(value), time.time()),
            )
            self.puts += 1
            self._after_write_locked()

    def delete(self, namespace: str, key: str) -> None:
        with self._lock:
            self._begin()
            self._conn.execute(
                "DELETE FROM kv WHERE namespace = ? AND key = ?", (namespace, key)
            )
            self.deletes += 1
            self._after_write_locked()

    def scan(self, namespace: str) -> Iterator[tuple[str, bytes]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, value FROM kv WHERE namespace = ? ORDER BY updated_at",
                (namespace,),
            ).fetchall()
        for key, value in rows:
            yield key, bytes(value)

    def count(self, namespace: str) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM kv WHERE namespace = ?", (namespace,)
            ).fetchone()
        return int(row[0])

    def clear(self, namespace: str) -> None:
        with self._lock:
            self._begin()
            self._conn.execute("DELETE FROM kv WHERE namespace = ?", (namespace,))
            self._commit_locked()

    def flush(self) -> None:
        with self._lock:
            self._commit_locked()

    def close(self) -> None:
        if self._closed:
            return
        with self._lock:
            self._commit_locked()
            self._conn.close()
            self._closed = True

    def namespaces(self) -> dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT namespace, COUNT(*) FROM kv GROUP BY namespace"
            ).fetchall()
        return {name: int(n) for name, n in rows}

    def integrity_ok(self) -> bool:
        """SQLite's own structural check — the crash-safety probe."""
        with self._lock:
            row = self._conn.execute("PRAGMA integrity_check").fetchone()
        return row is not None and row[0] == "ok"

    def file_bytes(self) -> int:
        try:
            total = os.path.getsize(self.path)
            for suffix in ("-wal", "-shm"):
                side = self.path + suffix
                if os.path.exists(side):
                    total += os.path.getsize(side)
            return total
        except OSError:
            return 0

    def statistics(self) -> dict:
        return {
            "kind": self.kind,
            "persistent": self.persistent,
            "path": self.path,
            "namespaces": self.namespaces() if not self._closed else {},
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "flushes": self.flushes,
            "pending_writes": self.pending_writes,
            "file_bytes": self.file_bytes(),
        }
