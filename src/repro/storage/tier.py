"""The shared cache discipline above a storage backend.

:class:`StorageTier` is the one eviction/statistics surface both the
parsed-document store and the HTTP cache used to duplicate (each had its
own ``max_*`` bound and an O(n) ``min(..., key=stored_at)`` oldest-entry
scan).  The tier keeps *decoded* entries in a bounded
:class:`~collections.OrderedDict` in true LRU order — a hit refreshes
recency in O(1), eviction pops the least-recently-used entry in O(1) —
and, when a persistent backend sits below, spills beyond the bound to it:

* **put** inserts into the LRU and write-throughs the encoded bytes;
* **get** answers from the LRU, else reads through (decode + promote);
* **eviction** only forgets the in-memory copy when the backend is
  persistent — capacity becomes disk-bounded, not RAM-bounded;
* with no persistent backend the LRU is authoritative and eviction
  discards, which is exactly the pre-persistence behavior.

The LRU holds live objects: callers may mutate an entry in place (the
HTTP cache renews validator timestamps on 304) and such mutations are
visible to every in-process reader but not written back — after a
restart a renewed entry simply revalidates once more, which is correct,
just one conditional request slower.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, Optional

from .backend import Keyspace, StorageBackend

__all__ = ["StorageTier"]


class StorageTier:
    """Bounded-LRU cache of decoded entries over an optional keyspace."""

    def __init__(
        self,
        namespace: str,
        max_entries: int,
        encode: Callable[[object], bytes],
        decode: Callable[[bytes], object],
        backend: Optional[StorageBackend] = None,
    ) -> None:
        self.namespace = namespace
        self._max_entries = max(1, max_entries)
        self._encode = encode
        self._decode = decode
        # Only a persistent backend earns the encode/decode round trip:
        # a memory backend below a memory LRU would double-store.
        self._keyspace = (
            Keyspace(backend, namespace)
            if backend is not None and backend.persistent
            else None
        )
        self._lru: "OrderedDict[str, object]" = OrderedDict()
        self.evictions = 0
        self.backend_reads = 0
        self.backend_writes = 0

    # -- capacity -------------------------------------------------------

    @property
    def persistent(self) -> bool:
        return self._keyspace is not None

    @property
    def max_memory_entries(self) -> int:
        return self._max_entries

    def __len__(self) -> int:
        """Total reachable entries (disk-backed when persistent)."""
        if self._keyspace is not None:
            return self._keyspace.count()
        return len(self._lru)

    def memory_entries(self) -> int:
        return len(self._lru)

    def __contains__(self, key: str) -> bool:
        if key in self._lru:
            return True
        return self._keyspace is not None and self._keyspace.get(key) is not None

    # -- the discipline -------------------------------------------------

    def _admit(self, key: str, entry: object) -> None:
        # With a persistent keyspace below, eviction only forgets the
        # in-memory copy (the durable one remains reachable); without
        # one, eviction is deletion — the old in-memory bound.
        self._lru[key] = entry
        self._lru.move_to_end(key)
        while len(self._lru) > self._max_entries:
            self._lru.popitem(last=False)
            self.evictions += 1

    def get(self, key: str) -> Optional[object]:
        entry = self._lru.get(key)
        if entry is not None:
            self._lru.move_to_end(key)
            return entry
        if self._keyspace is not None:
            raw = self._keyspace.get(key)
            if raw is not None:
                entry = self._decode(raw)
                self.backend_reads += 1
                self._admit(key, entry)
                return entry
        return None

    def peek(self, key: str) -> Optional[object]:
        """Like :meth:`get` without refreshing recency (introspection)."""
        entry = self._lru.get(key)
        if entry is not None:
            return entry
        if self._keyspace is not None:
            raw = self._keyspace.get(key)
            if raw is not None:
                self.backend_reads += 1
                return self._decode(raw)
        return None

    def put(self, key: str, entry: object) -> None:
        self._admit(key, entry)
        if self._keyspace is not None:
            self._keyspace.put(key, self._encode(entry))
            self.backend_writes += 1

    def delete(self, key: str) -> None:
        self._lru.pop(key, None)
        if self._keyspace is not None:
            self._keyspace.delete(key)

    def items(self) -> Iterator[tuple[str, object]]:
        """Every reachable entry, in-memory copies winning over stored ones."""
        if self._keyspace is None:
            yield from list(self._lru.items())
            return
        seen: set[str] = set()
        for key, raw in self._keyspace.scan():
            seen.add(key)
            entry = self._lru.get(key)
            yield key, entry if entry is not None else self._decode(raw)
        for key, entry in list(self._lru.items()):
            if key not in seen:
                yield key, entry

    def clear(self) -> None:
        self._lru.clear()
        self.evictions = 0
        self.backend_reads = 0
        self.backend_writes = 0
        if self._keyspace is not None:
            self._keyspace.clear()

    def flush(self) -> None:
        if self._keyspace is not None:
            self._keyspace.flush()

    def statistics(self) -> dict:
        stats = {
            "entries": len(self),
            "memory_entries": len(self._lru),
            "max_memory_entries": self._max_entries,
            "evictions": self.evictions,
            "persistent": self.persistent,
            "backend_reads": self.backend_reads,
            "backend_writes": self.backend_writes,
        }
        if self._keyspace is not None:
            stats["backend"] = self._keyspace.backend.kind
        return stats
