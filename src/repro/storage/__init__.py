"""The persistent storage tier under the service's caches (ROADMAP item 1).

The paper's demo leans on the *browser disk cache* — the Fig. 4
waterfall answers nearly every repeat dereference "(disk cache)" in
2–13 ms — and the structural-assumptions evaluation shows fetch-plus-
parse cost dominating LTQP end-to-end time.  Everything this repo
amortizes (HTTP responses in :class:`~repro.net.cache.HttpCache`,
parsed documents in :class:`~repro.service.docstore.DocumentStore`)
lived purely in process memory: a ``serve`` restart was fully cold and
capacity was bounded by RAM.

This package separates *store* from *layout* (after lakesuperior's
store/layout split):

* :class:`StorageBackend` — the store: a tiny namespaced key/value
  protocol (``get``/``put``/``delete``/``scan``/``count``/``clear``/
  ``flush``/``close``) over opaque byte values;
* :class:`MemoryBackend` — the default: plain dicts, nothing survives
  the process (exactly the pre-persistence behavior);
* :class:`SqliteBackend` — embedded, single-file, WAL-mode, crash-safe;
  a restart against the same path starts *warm* and capacity is bounded
  by disk, not RAM;
* :class:`StorageTier` — the layout: a bounded in-process LRU of
  *decoded* entries above a backend keyspace, with read-through on
  miss and write-through on put.  Both ``DocumentStore`` and
  ``HttpCache`` ride this one discipline, which is also where their
  previously duplicated eviction/statistics surface now lives.

Serialization stays at the caller: the tier takes ``encode``/``decode``
callables, so the document store reuses the process-portable term-table
codec from :mod:`repro.service.wire` — validator keys survive a restart
and invalidation keeps riding the ETag/304-revalidation machinery.
"""

from .backend import Keyspace, MemoryBackend, StorageBackend, open_backend
from .sqlite import SqliteBackend
from .tier import StorageTier

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "SqliteBackend",
    "Keyspace",
    "StorageTier",
    "open_backend",
]
