"""The storage-backend protocol and its in-memory reference implementation.

A backend is a namespaced key/value store over opaque byte values.  The
namespace keeps independent tiers (parsed documents, HTTP responses,
future delta logs) in one physical store — one SQLite file per worker —
without key collisions.

Backends declare whether they are ``persistent``.  The
:class:`~repro.storage.tier.StorageTier` only write-throughs to
persistent backends: a non-persistent backend under a bounded in-memory
LRU would just hold a redundant encoded copy of what the LRU already
holds decoded, so the memory configuration keeps today's exact
LRU-only behavior (and hot-path cost).
"""

from __future__ import annotations

from typing import Iterator, Optional, Protocol, runtime_checkable

__all__ = ["StorageBackend", "MemoryBackend", "Keyspace", "open_backend"]


@runtime_checkable
class StorageBackend(Protocol):
    """Namespaced key/value byte store.

    ``kind`` names the implementation (``"memory"``, ``"sqlite"``);
    ``persistent`` says whether entries survive :meth:`close` — the tier
    above uses it to decide between write-through and LRU-only modes.
    """

    kind: str
    persistent: bool

    def get(self, namespace: str, key: str) -> Optional[bytes]:
        """The stored value, or ``None``."""
        ...

    def put(self, namespace: str, key: str, value: bytes) -> None:
        """Insert or replace one entry."""
        ...

    def delete(self, namespace: str, key: str) -> None:
        """Remove one entry (no-op when absent)."""
        ...

    def scan(self, namespace: str) -> Iterator[tuple[str, bytes]]:
        """Iterate every ``(key, value)`` in the namespace."""
        ...

    def count(self, namespace: str) -> int:
        """Number of entries in the namespace."""
        ...

    def clear(self, namespace: str) -> None:
        """Drop every entry in the namespace."""
        ...

    def flush(self) -> None:
        """Make every accepted write durable (commit)."""
        ...

    def close(self) -> None:
        """Flush and release the store."""
        ...

    def statistics(self) -> dict:
        """JSON-friendly store statistics for the status endpoints."""
        ...


class MemoryBackend:
    """Plain-dict backend: the protocol's reference implementation.

    Nothing survives the process; ``flush``/``close`` are no-ops.  This
    is the default backend and exists so every code path (and test) can
    exercise the protocol without touching disk.
    """

    kind = "memory"
    persistent = False

    def __init__(self) -> None:
        self._namespaces: dict[str, dict[str, bytes]] = {}
        self.puts = 0
        self.gets = 0
        self.deletes = 0

    def _space(self, namespace: str) -> dict[str, bytes]:
        return self._namespaces.setdefault(namespace, {})

    def get(self, namespace: str, key: str) -> Optional[bytes]:
        self.gets += 1
        return self._namespaces.get(namespace, {}).get(key)

    def put(self, namespace: str, key: str, value: bytes) -> None:
        self.puts += 1
        self._space(namespace)[key] = bytes(value)

    def delete(self, namespace: str, key: str) -> None:
        self.deletes += 1
        self._namespaces.get(namespace, {}).pop(key, None)

    def scan(self, namespace: str) -> Iterator[tuple[str, bytes]]:
        yield from list(self._namespaces.get(namespace, {}).items())

    def count(self, namespace: str) -> int:
        return len(self._namespaces.get(namespace, {}))

    def clear(self, namespace: str) -> None:
        self._namespaces.pop(namespace, None)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def statistics(self) -> dict:
        return {
            "kind": self.kind,
            "persistent": self.persistent,
            "namespaces": {
                name: len(space) for name, space in self._namespaces.items()
            },
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
        }


class Keyspace:
    """One namespace of a backend, bound for callers that take a flat store."""

    def __init__(self, backend: StorageBackend, namespace: str) -> None:
        self.backend = backend
        self.namespace = namespace

    @property
    def persistent(self) -> bool:
        return self.backend.persistent

    def get(self, key: str) -> Optional[bytes]:
        return self.backend.get(self.namespace, key)

    def put(self, key: str, value: bytes) -> None:
        self.backend.put(self.namespace, key, value)

    def delete(self, key: str) -> None:
        self.backend.delete(self.namespace, key)

    def scan(self) -> Iterator[tuple[str, bytes]]:
        return self.backend.scan(self.namespace)

    def count(self) -> int:
        return self.backend.count(self.namespace)

    def clear(self) -> None:
        self.backend.clear(self.namespace)

    def flush(self) -> None:
        self.backend.flush()


def open_backend(backend: Optional[str] = None, path: Optional[str] = None) -> StorageBackend:
    """Build a backend from CLI-shaped arguments.

    ``backend`` may be ``"memory"``, ``"sqlite"``, or ``None`` to infer:
    a ``path`` means SQLite, no path means memory.  SQLite requires a
    path; memory rejects one (a silently ignored ``--store-path`` would
    surprise exactly the operator who asked for persistence).
    """
    if backend is None:
        backend = "sqlite" if path else "memory"
    if backend == "memory":
        if path:
            raise ValueError("the memory backend takes no store path")
        return MemoryBackend()
    if backend == "sqlite":
        if not path:
            raise ValueError("the sqlite backend needs a store path")
        from .sqlite import SqliteBackend

        return SqliteBackend(path)
    raise ValueError(f"unknown storage backend {backend!r}")
