"""Execution statistics: time-to-first-result, links followed, queue evolution.

The paper's headline quantitative claims live here:

* "first results showing up in less than a second" → :attr:`ExecutionStats.time_to_first_result`
* "non-complex queries can be completed in the order of seconds" → :attr:`total_time`
* optimizing "the number of links that need to be followed" → :attr:`documents_fetched`, :attr:`links_queued`
* link-queue evolution [34] → :attr:`queue_samples`
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .links import QueueSample

__all__ = ["TimedResult", "ExecutionStats"]


@dataclass(slots=True)
class TimedResult:
    """One query result annotated with its arrival time (seconds from start)."""

    binding: "object"
    elapsed: float


@dataclass(slots=True)
class ExecutionStats:
    """Aggregated metrics for one query execution."""

    started_at: float = 0.0
    finished_at: float = 0.0
    first_result_at: Optional[float] = None
    result_count: int = 0
    documents_fetched: int = 0
    documents_failed: int = 0
    triples_discovered: int = 0
    links_queued: int = 0
    links_by_extractor: dict[str, int] = field(default_factory=dict)
    queue_samples: list[QueueSample] = field(default_factory=list)
    streaming: bool = True
    replans: int = 0

    @property
    def total_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def time_to_first_result(self) -> Optional[float]:
        if self.first_result_at is None:
            return None
        return self.first_result_at - self.started_at

    def summary(self) -> dict:
        """A JSON-friendly digest (used by the bench harness)."""
        return {
            "results": self.result_count,
            "total_time_s": round(self.total_time, 4),
            "ttfr_s": (
                round(self.time_to_first_result, 4)
                if self.time_to_first_result is not None
                else None
            ),
            "documents_fetched": self.documents_fetched,
            "documents_failed": self.documents_failed,
            "triples_discovered": self.triples_discovered,
            "links_queued": self.links_queued,
            "links_by_extractor": dict(sorted(self.links_by_extractor.items())),
            "streaming": self.streaming,
            "replans": self.replans,
        }
