"""Execution statistics: time-to-first-result, links followed, queue evolution.

The paper's headline quantitative claims live here:

* "first results showing up in less than a second" → :attr:`ExecutionStats.time_to_first_result`
* "non-complex queries can be completed in the order of seconds" → :attr:`total_time`
* optimizing "the number of links that need to be followed" → :attr:`documents_fetched`, :attr:`links_queued`
* link-queue evolution [34] → :attr:`queue_samples`

Since lenient execution silently tolerates network faults, the stats also
carry a **completeness report** (:meth:`ExecutionStats.completeness`):
how many documents were attempted, retried, and finally abandoned, which
origins tripped their circuit breakers, and an estimate of how many links
the abandoned documents would have contributed — so "the query returned
N results" can always be qualified with "and here is what it may have
missed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .links import QueueSample

__all__ = ["TimedResult", "ExecutionStats"]


@dataclass(slots=True)
class TimedResult:
    """One query result annotated with its arrival time (seconds from start)."""

    binding: "object"
    elapsed: float


@dataclass(slots=True)
class ExecutionStats:
    """Aggregated metrics for one query execution."""

    started_at: float = 0.0
    finished_at: float = 0.0
    first_result_at: Optional[float] = None
    result_count: int = 0
    documents_fetched: int = 0
    documents_failed: int = 0
    #: Of the fetched documents, how many skipped the parse because the
    #: shared parsed-document store already held them (warm service runs).
    documents_from_store: int = 0
    triples_discovered: int = 0
    links_queued: int = 0
    links_by_extractor: dict[str, int] = field(default_factory=dict)
    queue_samples: list[QueueSample] = field(default_factory=list)
    #: True when the compiled plan has no blocking operators — every result
    #: can stream during traversal instead of waiting for the finalize pass.
    streaming: bool = True
    replans: int = 0
    #: Errors raised while tearing down background tasks (flush timer,
    #: traversal).  Shutdown must not fail the query, but swallowing these
    #: silently hides real bugs — they are recorded here instead.
    shutdown_errors: list[str] = field(default_factory=list)

    # -- degradation accounting (lenient mode under faults) ----------------
    #: Links re-queued after a retryable dereference failure.
    documents_retried: int = 0
    #: Retryable failures given up on for good (retries + re-queues spent).
    documents_abandoned: int = 0
    #: Client-level HTTP retry attempts during this execution.
    http_retries: int = 0
    #: Attempts that hit the per-request timeout.
    http_timeouts: int = 0
    #: Requests fast-failed because the origin's circuit breaker was open.
    breaker_fast_fails: int = 0
    #: Origin → number of closed→open breaker transitions in this run.
    origins_tripped: dict[str, int] = field(default_factory=dict)

    # -- refusal accounting (adversarial hardening budgets) -----------------
    #: Documents the engine *chose* not to take: origin dereference/byte
    #: budgets, the client read cap, or the parse cap.  Distinct from
    #: ``documents_abandoned`` (wanted but lost to faults) — a refusal is
    #: deliberate, attributed, and never retried.
    documents_refused: int = 0
    #: Budget kind → refusal count.  Kinds: ``origin-derefs``,
    #: ``origin-bytes``, ``doc-bytes`` (client read cap), ``parse-bytes``
    #: (parse cap), ``depth`` (link-extraction suppressed at max depth —
    #: attribution only, not counted in ``documents_refused``).
    refusals_by_kind: dict[str, int] = field(default_factory=dict)
    #: Origin → refusal count (same attribution, sliced by who caused it).
    refusals_by_origin: dict[str, int] = field(default_factory=dict)

    # -- source-selection accounting (guided traversal, DESIGN.md §4g) ------
    #: Links the :class:`~repro.ltqp.guided.SourceSelector` declined to
    #: dereference.  A prune is *scoping*, not degradation: the user (or a
    #: pod's published spec/summary) declared those documents outside the
    #: query's subweb, so ``complete`` stays true — the answer is complete
    #: *for the restricted subweb*, and ``spec_restricted`` says so.
    links_pruned: int = 0
    #: Selector rule label → pruned-link count (``spec:…``, ``hint:…``,
    #: ``origin:undeclared``).
    pruned_by_rule: dict[str, int] = field(default_factory=dict)
    #: Origin → pruned-link count.
    pruned_by_origin: dict[str, int] = field(default_factory=dict)

    def note_pruned(self, rule: str, origin: str) -> None:
        """Attribute one selector-pruned link to its rule and origin."""
        self.links_pruned += 1
        self.pruned_by_rule[rule] = self.pruned_by_rule.get(rule, 0) + 1
        self.pruned_by_origin[origin] = self.pruned_by_origin.get(origin, 0) + 1

    def note_refusal(self, kind: str, origin: str, document: bool = True) -> None:
        """Attribute one budget refusal to ``kind`` and ``origin``.

        ``document=False`` records attribution without counting a refused
        document (depth suppression: the document itself was taken)."""
        if document:
            self.documents_refused += 1
        self.refusals_by_kind[kind] = self.refusals_by_kind.get(kind, 0) + 1
        self.refusals_by_origin[origin] = self.refusals_by_origin.get(origin, 0) + 1

    def note_shutdown_error(self, stage: str, error: BaseException) -> None:
        """Record an exception swallowed during task teardown."""
        self.shutdown_errors.append(f"{stage}: {type(error).__name__}: {error}")

    @property
    def total_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def time_to_first_result(self) -> Optional[float]:
        if self.first_result_at is None:
            return None
        return self.first_result_at - self.started_at

    @property
    def documents_attempted(self) -> int:
        """Distinct documents traversal tried to obtain (fetched, lost,
        or refused by a hardening budget)."""
        return self.documents_fetched + self.documents_abandoned + self.documents_refused

    def estimated_missing_links(self) -> int:
        """How many links the abandoned documents likely held.

        Abandoned documents were never parsed, so their out-links are
        unknown; estimate with the mean out-degree of the documents that
        *were* fetched.  Zero when nothing was abandoned.
        """
        if not self.documents_abandoned:
            return 0
        seeds = self.links_by_extractor.get("seed", 0)
        discovered = max(0, self.links_queued - seeds)
        if not self.documents_fetched:
            return self.documents_abandoned
        return round(self.documents_abandoned * discovered / self.documents_fetched)

    def completeness(self) -> dict:
        """The degradation report: what lenient execution may have lost."""
        return {
            "complete": self.documents_abandoned == 0 and self.documents_refused == 0,
            "spec_restricted": self.links_pruned > 0,
            "links_pruned": self.links_pruned,
            "pruned_by_rule": dict(sorted(self.pruned_by_rule.items())),
            "pruned_by_origin": dict(sorted(self.pruned_by_origin.items())),
            "documents_attempted": self.documents_attempted,
            "documents_fetched": self.documents_fetched,
            "documents_retried": self.documents_retried,
            "documents_abandoned": self.documents_abandoned,
            "documents_refused": self.documents_refused,
            "refusals_by_kind": dict(sorted(self.refusals_by_kind.items())),
            "refusals_by_origin": dict(sorted(self.refusals_by_origin.items())),
            "http_retries": self.http_retries,
            "http_timeouts": self.http_timeouts,
            "breaker_fast_fails": self.breaker_fast_fails,
            "origins_tripped": dict(sorted(self.origins_tripped.items())),
            "estimated_missing_links": self.estimated_missing_links(),
        }

    def summary(self) -> dict:
        """A JSON-friendly digest (used by the bench harness)."""
        return {
            "results": self.result_count,
            "total_time_s": round(self.total_time, 4),
            "ttfr_s": (
                round(self.time_to_first_result, 4)
                if self.time_to_first_result is not None
                else None
            ),
            "documents_fetched": self.documents_fetched,
            "documents_failed": self.documents_failed,
            "documents_from_store": self.documents_from_store,
            "triples_discovered": self.triples_discovered,
            "links_queued": self.links_queued,
            "links_by_extractor": dict(sorted(self.links_by_extractor.items())),
            "streaming": self.streaming,
            "replans": self.replans,
            "shutdown_errors": list(self.shutdown_errors),
            "completeness": self.completeness(),
        }
