"""The guided link queue: provenance- and hint-scored prioritization.

Scores combine three signals, in lexicographic order:

1. **Extractor tier** (:data:`~repro.ltqp.links.EXTRACTOR_RANK` via the
   link's provenance) — structural metadata first: seeds, then hint /
   source-index documents, storage and type-index pointers, then data
   links.  Hint-derived container links share the type-index tier.  One
   exception jumps the tiers: a data link whose producing *predicate*
   appears in the query (``likes``, ``hasPost``, …) is a navigational
   edge the join itself needs, so it is promoted to
   :data:`QUERY_MATCH_TIER` — between storage and type-index.  Without
   this, a query whose first answer lives across a ``likes`` hop (e.g.
   Discover template 8) drains every container of the seed pod before
   taking the one hop that produces a result.
2. **Result-contribution boost** — when the pipeline emits a binding, the
   engine calls :meth:`GuidedLinkQueue.note_result_contribution` with the
   documents whose triples joined into it; pending links that are
   *siblings* of a contributing document (same container prefix) move
   ahead of equal-tier links.  Containers that are producing results get
   drained first — the guided-LTQP heuristic that reachability from
   productive sources predicts productivity.
3. **Hint cardinality** — among equal-tier, equal-boost links, documents
   from containers with more declared entities first, then shallow before
   deep.

Boosts arrive while links are already enqueued — and a boost *promotes*
entries buried anywhere in the heap, which top-of-heap lazy re-scoring
cannot see.  The queue instead marks itself dirty on each contribution
and rebuilds entry scores once, on the next pop (many results between two
pops coalesce into one O(n) re-heap).
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..links import Link, LinkQueue, QueuePolicyContext, provenance_rank

__all__ = ["GuidedLinkQueue", "QUERY_MATCH_TIER"]

#: Tier for data links produced by a predicate the query itself uses —
#: ahead of type-index/container structure (3) but after storage roots (2).
QUERY_MATCH_TIER = 2.5


class GuidedLinkQueue(LinkQueue):
    def __init__(self, context: Optional[QueuePolicyContext] = None) -> None:
        super().__init__()
        self._context = context
        self._heap: list[tuple[tuple, int, Link]] = []
        self._counter = 0
        #: IRIs of the query's concrete predicates — links discovered via
        #: one of these are join edges, not speculative crawl.
        query = getattr(context, "query", None)
        self._query_predicates = frozenset(
            predicate.value for predicate in getattr(query, "predicates", ())
        )
        #: Contribution boost per container prefix (see _prefix_of).
        self._boosts: dict[str, int] = {}
        #: Set when a boost landed after entries were scored; the next pop
        #: re-scores the whole heap once.
        self._dirty = False

    # -- scoring --------------------------------------------------------------

    def note_result_contribution(self, document_url: str) -> None:
        """A document's triples just joined into an emitted binding —
        promote its pending sibling links."""
        prefix = _prefix_of(document_url)
        if prefix:
            self._boosts[prefix] = self._boosts.get(prefix, 0) + 1
            self._dirty = True

    def _boost_of(self, link: Link) -> int:
        return self._boosts.get(_prefix_of(link.url), 0)

    def _score(self, link: Link) -> tuple:
        tier: float = provenance_rank(link)
        provenance = link.provenance
        if (
            provenance is not None
            and provenance.predicate in self._query_predicates
            and tier > QUERY_MATCH_TIER
        ):
            tier = QUERY_MATCH_TIER
        boost = self._boost_of(link)
        entities = 0
        context = self._context
        if context is not None and context.hints is not None:
            pod = context.hints.pod_for(link.url)
            if pod is not None:
                hint = pod.container_for(link.url)
                if hint is not None:
                    entities = hint.entities
        return (tier, -boost, link.depth, -entities)

    # -- queue plumbing -------------------------------------------------------

    def _push_impl(self, link: Link) -> None:
        self._counter += 1
        heapq.heappush(self._heap, (self._score(link), self._counter, link))

    def _pop_impl(self) -> Link:
        if self._dirty:
            self._heap = [
                (self._score(link), counter, link) for _, counter, link in self._heap
            ]
            heapq.heapify(self._heap)
            self._dirty = False
        if not self._heap:
            raise IndexError("pop from empty link queue")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


def _prefix_of(url: str) -> str:
    """The container prefix of a document URL: up to the last ``/``."""
    clean = url.split("#", 1)[0]
    slash = clean.rfind("/")
    if slash <= len("https://"):
        return ""
    return clean[: slash + 1]
