"""Guided traversal: the source-selection subsystem (DESIGN.md §4g).

Zero-knowledge LTQP dereferences every reachable document; the guided
subsystem prunes and prioritizes instead, following two lines of work
cited in PAPERS.md: *Guided Link-Traversal-Based Query Processing*
(arXiv:2005.02239) and *Distributed Subweb Specifications for Traversing
the Web* (arXiv:2302.14411).

Three cooperating pieces:

* :class:`SubwebSpecification` — declarative per-origin allow/deny/depth
  rules, loadable from a JSON file (CLI ``--subweb``) or discovered as RDF
  documents inside pods.
* :class:`CardinalityHints` — per-pod source summaries (class partitions,
  predicate sets, cardinalities per container) published by pods at a
  ``subweb:cardinalityIndex`` document; SolidBench emits them.
* :class:`SourceSelector` — combines both with the query's subject groups
  to decide, per link, *follow*, *defer* (origin not yet admitted), or
  *prune* — before the link ever costs a dereference.  Every pruned link
  is attributed in ``ExecutionStats.completeness()``.

The :class:`GuidedLinkQueue` (``queue_policy="guided"``) scores surviving
links from their :class:`~repro.ltqp.links.LinkProvenance`, hint
cardinalities, and result-contribution feedback from the pipeline.
"""

from .discovery import HintDiscoveryExtractor
from .hints import CardinalityHints, ContainerHint, PodHints, query_scopes
from .queue import GuidedLinkQueue
from .selector import LinkDecision, SourceSelector
from .subweb import SubwebRule, SubwebSpecification

__all__ = [
    "CardinalityHints",
    "ContainerHint",
    "PodHints",
    "query_scopes",
    "GuidedLinkQueue",
    "HintDiscoveryExtractor",
    "LinkDecision",
    "SourceSelector",
    "SubwebRule",
    "SubwebSpecification",
]
