"""Per-pod cardinality hints (source summaries) and query subject groups.

A pod may publish a *source index* document (SolidBench emits one per pod
at ``settings/cardinality``, linked from the WebID profile via
``subweb:cardinalityIndex``) describing each content container: the RDF
classes of the entities stored there, the set of predicates that occur,
and document/entity counts.  It may also declare predicate *ranges*
(``subweb:rangeOf`` / ``subweb:rangeClass`` — e.g. every object of
``snvoc:containerOf`` is a ``snvoc:Post``) and, with
``subweb:completeIndex true``, that the summary covers the pod's whole
content tree so the LDP infrastructure crawl (root container, profile and
settings listings, type index) is redundant.

The consuming side is VoID-style source selection: the query's WHERE
clause decomposes into *subject groups* — per conjunctive scope, the set
of predicates and class constraints attached to each subject term.  A
summarized container is **relevant** iff some subject group could bind
entities from it: its class partition intersects the group's (declared or
range-derived) class constraints and its predicate set covers the group's
required predicates.  Irrelevant containers are pruned before
dereferencing — sound under subject-local fragmentation (all triples of
an entity live in its container's documents) and trusting summaries to be
accurate, the model of the distributed-subweb-specification line of work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ...rdf.namespaces import RDF, SUBWEB
from ...rdf.terms import Literal, NamedNode, Term, Variable
from ...rdf.triples import Triple, TriplePattern
from ...sparql.algebra import (
    BGP,
    AlternativePath,
    Distinct,
    Extend,
    Filter,
    GraphOp,
    GroupBy,
    Join,
    LeftJoin,
    Minus,
    Operator,
    OrderBy,
    PredicatePath,
    Project,
    Reduced,
    Slice,
    SubSelect,
    Union,
    ValuesOp,
)

__all__ = [
    "ContainerHint",
    "PodHints",
    "CardinalityHints",
    "SubjectGroup",
    "QueryScope",
    "query_scopes",
    "container_relevant",
    "is_hint_document",
]


@dataclass(frozen=True, slots=True)
class ContainerHint:
    """Summary of one content container."""

    container: str
    classes: frozenset = frozenset()
    predicates: frozenset = frozenset()
    documents: int = 0
    entities: int = 0


@dataclass(frozen=True, slots=True)
class PodHints:
    """Everything one source-index document declared about its pod."""

    pod: str
    source_url: str
    complete: bool = False
    containers: tuple = ()
    #: Exact URLs of LDP infrastructure documents the index makes
    #: redundant when ``complete`` (root/profile/settings listings, type
    #: index).
    infra: frozenset = frozenset()
    ranges: Mapping[str, frozenset] = field(default_factory=dict)

    def container_for(self, url: str) -> Optional[ContainerHint]:
        best = None
        for hint in self.containers:
            if url.startswith(hint.container):
                if best is None or len(hint.container) > len(best.container):
                    best = hint
        return best


def is_hint_document(triples: Iterable[Triple]) -> bool:
    return any(triple.predicate == SUBWEB.pod for triple in triples)


class CardinalityHints:
    """Accumulates :class:`PodHints` as source-index documents arrive."""

    def __init__(self) -> None:
        self._pods: dict[str, PodHints] = {}
        self._by_source: dict[str, PodHints] = {}
        self._ranges: dict[str, frozenset] = {}

    @property
    def pod_count(self) -> int:
        return len(self._pods)

    @property
    def ranges(self) -> Mapping[str, frozenset]:
        """Declared predicate ranges, unioned across every absorbed index.

        Trusted as universe-wide: a declared range is assumed accurate for
        the predicate wherever it occurs (the summaries-are-authoritative
        assumption; DESIGN.md §4g discusses the trust model).
        """
        return self._ranges

    def absorb_triples(self, url: str, triples: Iterable[Triple]) -> Optional[PodHints]:
        """Parse a source-index document; returns the pod's hints, or None
        when the document carries no ``subweb:pod`` declaration."""
        triple_list = list(triples)
        pod_base: Optional[str] = None
        complete = False
        infra: set[str] = set()
        summaries: dict[Term, dict] = {}
        range_of: dict[Term, str] = {}
        range_classes: dict[Term, set] = {}
        class_predicate = SUBWEB["class"]
        for triple in triple_list:
            predicate = triple.predicate
            obj = triple.object
            if predicate == SUBWEB.pod and isinstance(obj, NamedNode):
                pod_base = obj.value
            elif predicate == SUBWEB.completeIndex and isinstance(obj, Literal):
                complete = obj.value == "true"
            elif predicate == SUBWEB.infra and isinstance(obj, NamedNode):
                infra.add(obj.value)
            elif predicate == SUBWEB.container and isinstance(obj, NamedNode):
                summaries.setdefault(triple.subject, {})["container"] = obj.value
            elif predicate == class_predicate and isinstance(obj, NamedNode):
                summaries.setdefault(triple.subject, {}).setdefault("classes", set()).add(obj.value)
            elif predicate == SUBWEB.predicate and isinstance(obj, NamedNode):
                summaries.setdefault(triple.subject, {}).setdefault("predicates", set()).add(
                    obj.value
                )
            elif predicate == SUBWEB.documents and isinstance(obj, Literal):
                summaries.setdefault(triple.subject, {})["documents"] = _safe_int(obj.value)
            elif predicate == SUBWEB.entities and isinstance(obj, Literal):
                summaries.setdefault(triple.subject, {})["entities"] = _safe_int(obj.value)
            elif predicate == SUBWEB.rangeOf and isinstance(obj, NamedNode):
                range_of[triple.subject] = obj.value
            elif predicate == SUBWEB.rangeClass and isinstance(obj, NamedNode):
                range_classes.setdefault(triple.subject, set()).add(obj.value)
        if pod_base is None:
            return None
        containers = tuple(
            ContainerHint(
                container=str(fields["container"]),
                classes=frozenset(fields.get("classes", ())),
                predicates=frozenset(fields.get("predicates", ())),
                documents=int(fields.get("documents", 0)),
                entities=int(fields.get("entities", 0)),
            )
            for _, fields in sorted(summaries.items(), key=lambda item: str(item[0]))
            if "container" in fields
        )
        pod = PodHints(
            pod=pod_base,
            source_url=url,
            complete=complete,
            containers=containers,
            infra=frozenset(infra),
            ranges={
                predicate: frozenset(range_classes.get(subject, ()))
                for subject, predicate in range_of.items()
                if range_classes.get(subject)
            },
        )
        self._pods[pod_base] = pod
        self._by_source[url.split("#", 1)[0]] = pod
        for predicate, classes in pod.ranges.items():
            self._ranges[predicate] = self._ranges.get(predicate, frozenset()) | classes
        return pod

    def pod_by_source(self, url: str) -> Optional[PodHints]:
        """The pod hints absorbed from exactly this source-index URL."""
        return self._by_source.get(url.split("#", 1)[0])

    def pod_for(self, url: str) -> Optional[PodHints]:
        best = None
        for base, pod in self._pods.items():
            if url.startswith(base) and (best is None or len(base) > len(best.pod)):
                best = pod
        return best


def _safe_int(text: str) -> int:
    try:
        return int(text)
    except ValueError:
        return 0


# -- query subject groups ------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SubjectGroup:
    """Constraints one conjunctive scope places on one subject term.

    ``predicates``: concrete predicate IRIs required of the subject.
    ``any_of``: per property-path alternation, a set of predicates of
    which at least one must be available.  ``classes``: declared
    ``rdf:type`` constraints.  ``object_of`` / ``object_of_any``: the
    predicates under which the subject appears in object position within
    the same scope — range declarations turn these into additional class
    constraints.
    """

    subject: str
    predicates: frozenset = frozenset()
    any_of: tuple = ()
    classes: frozenset = frozenset()
    object_of: frozenset = frozenset()
    object_of_any: tuple = ()


@dataclass(frozen=True, slots=True)
class QueryScope:
    """One conjunctive scope of the WHERE clause (one Union branch etc.)."""

    groups: tuple = ()


#: Safety valve for the Join cross-product of Union branches.
_MAX_SCOPES = 64


def query_scopes(where: Operator) -> tuple:
    """Decompose a WHERE tree into conjunctive scopes of subject groups.

    Union branches become separate scopes; Joins combine their children's
    scopes pairwise; optional/minus parts are kept as their own scopes
    (conservative: each part is source-selected as if required on its
    own, so no container an optional part needs is ever pruned).
    """
    scopes = []
    for items in _conjunctions(where):
        groups = _build_groups(items)
        if groups:
            scopes.append(QueryScope(groups=tuple(groups)))
    return tuple(scopes)


def _conjunctions(op: Operator) -> list:
    """Lists of pattern items, one list per conjunctive scope.

    An item is ``("p", TriplePattern)`` or ``("any", subject, predicates,
    object)`` for an alternation path with the given predicate options.
    Unanalyzable paths are skipped — omitting a constraint only ever makes
    more containers look relevant, never fewer.
    """
    if isinstance(op, BGP):
        items = [("p", pattern) for pattern in op.patterns]
        for path_pattern in op.path_patterns:
            path = path_pattern.path
            if isinstance(path, PredicatePath):
                items.append(
                    ("p", TriplePattern(path_pattern.subject, path.predicate, path_pattern.object))
                )
            elif isinstance(path, AlternativePath) and all(
                isinstance(option, PredicatePath) for option in path.options
            ):
                predicates = frozenset(option.predicate.value for option in path.options)
                items.append(("any", path_pattern.subject, predicates, path_pattern.object))
        return [items]
    if isinstance(op, Join):
        left = _conjunctions(op.left)
        right = _conjunctions(op.right)
        if len(left) * len(right) <= _MAX_SCOPES:
            return [a + b for a in left for b in right]
        return left + right
    if isinstance(op, Union):
        return _conjunctions(op.left) + _conjunctions(op.right)
    if isinstance(op, (LeftJoin, Minus)):
        return _conjunctions(op.left) + _conjunctions(op.right)
    if isinstance(op, (Filter, Extend, Project, Distinct, Reduced, Slice, OrderBy, GroupBy, GraphOp)):
        return _conjunctions(op.input)
    if isinstance(op, SubSelect):
        return _conjunctions(op.query.where)
    if isinstance(op, ValuesOp):
        return [[]]
    raise TypeError(f"unknown operator: {op!r}")


def _build_groups(items: list) -> list:
    predicates: dict[Term, set] = {}
    any_of: dict[Term, list] = {}
    classes: dict[Term, set] = {}
    subjects: list[Term] = []

    def _bucket(store: dict, term: Term) -> set:
        if term not in predicates and term not in any_of:
            subjects.append(term)
        return store.setdefault(term, set() if store is not any_of else [])

    for item in items:
        if item[0] == "p":
            pattern = item[1]
            subject = pattern.subject
            predicate = pattern.predicate
            if isinstance(predicate, NamedNode):
                _bucket(predicates, subject).add(predicate.value)
                if predicate == RDF.type and isinstance(pattern.object, NamedNode):
                    classes.setdefault(subject, set()).add(pattern.object.value)
            else:
                # Variable predicate: the subject is constrained, but by
                # nothing a summary can check.  Record the group with no
                # requirements so it matches every container (no pruning
                # from this group — conservative).
                _bucket(predicates, subject)
        else:
            _, subject, options, _obj = item
            bucket = _bucket(any_of, subject)
            bucket.append(options)
            predicates.setdefault(subject, set())
    # Object-position occurrences, for range-derived class constraints.
    object_of: dict[Term, set] = {}
    object_of_any: dict[Term, list] = {}
    known = set(predicates) | set(any_of)
    for item in items:
        if item[0] == "p":
            pattern = item[1]
            if pattern.object in known and isinstance(pattern.predicate, NamedNode):
                if pattern.predicate != RDF.type:
                    object_of.setdefault(pattern.object, set()).add(pattern.predicate.value)
        else:
            _, _subject, options, obj = item
            if obj in known:
                object_of_any.setdefault(obj, []).append(options)
    groups = []
    for subject in subjects:
        groups.append(
            SubjectGroup(
                subject=str(subject),
                predicates=frozenset(predicates.get(subject, ())),
                any_of=tuple(any_of.get(subject, ())),
                classes=frozenset(classes.get(subject, ())),
                object_of=frozenset(object_of.get(subject, ())),
                object_of_any=tuple(object_of_any.get(subject, ())),
            )
        )
    return groups


def container_relevant(
    hint: ContainerHint, scopes: tuple, ranges: Mapping[str, frozenset]
) -> bool:
    """Could any subject group bind entities out of this container?"""
    if not scopes:
        return True
    for scope in scopes:
        for group in scope.groups:
            if _group_matches(group, hint, ranges):
                return True
    return False


def _group_matches(group: SubjectGroup, hint: ContainerHint, ranges) -> bool:
    # Class partition: every class constraint — declared rdf:type plus
    # range-derived ones — must intersect the container's classes.
    if hint.classes:
        constraints = []
        if group.classes:
            constraints.append(group.classes)
        for predicate in group.object_of:
            declared = ranges.get(predicate)
            if declared:
                constraints.append(declared)
        for options in group.object_of_any:
            declared_union: set = set()
            for predicate in options:
                declared = ranges.get(predicate)
                if not declared:
                    declared_union = set()
                    break
                declared_union |= declared
            if declared_union:
                constraints.append(frozenset(declared_union))
        for constraint in constraints:
            if not (constraint & hint.classes):
                return False
    # Predicate coverage: every required predicate must occur in the
    # container; alternations need at least one option.
    if hint.predicates:
        for predicate in group.predicates:
            if predicate not in hint.predicates:
                return False
        for options in group.any_of:
            if not (options & hint.predicates):
                return False
    return True
