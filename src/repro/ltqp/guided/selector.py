"""The source selector: follow, defer, or prune — before dereferencing.

One :class:`SourceSelector` serves one query execution.  It combines

* a :class:`~repro.ltqp.guided.subweb.SubwebSpecification` (CLI-supplied
  and/or discovered inside pods),
* :class:`~repro.ltqp.guided.hints.CardinalityHints` absorbed from
  source-index documents as traversal encounters them, and
* the query's subject groups (:func:`~repro.ltqp.guided.hints.query_scopes`)

into a per-link decision.  Checks split by *when* their grounds are
known:

``check_static(link)``
    Spec path/depth rules and hint-based container relevance — grounds
    that only ever **deny** more as knowledge grows, so applying them at
    push time can never prune a link a later document would have
    justified.

``check(link)``
    The full decision, adding origin admission, evaluated at pop time.
    Origin knowledge is *monotone in the other direction* — absorbing
    documents admits origins, never revokes them — so a link denied only
    for its origin is not dropped but **deferred**: parked with the
    selector and re-queued the moment some traversed document declares
    its origin.  Links still deferred when traversal quiesces were never
    going to be admitted; the engine counts them as pruned.

The engine feeds every fetched document through ``absorb_document``
*before* link extraction, so a document's own links are always judged
with that document's declarations already absorbed.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..links import Link
from ...net.message import split_url
from ...rdf.triples import Triple
from .hints import CardinalityHints, container_relevant, is_hint_document
from .subweb import SubwebSpecification

__all__ = ["LinkDecision", "SourceSelector"]


class LinkDecision:
    """Outcome of a selector check."""

    __slots__ = ("action", "rule")

    FOLLOW = "follow"
    PRUNE = "prune"
    DEFER = "defer"

    def __init__(self, action: str, rule: str = "") -> None:
        self.action = action
        self.rule = rule

    def __repr__(self) -> str:
        return f"LinkDecision({self.action!r}, {self.rule!r})"


_FOLLOW = LinkDecision(LinkDecision.FOLLOW)


class SourceSelector:
    def __init__(
        self,
        spec: Optional[SubwebSpecification] = None,
        hints: Optional[CardinalityHints] = None,
        where=None,
        seeds: Iterable[str] = (),
    ) -> None:
        self.spec = spec or SubwebSpecification()
        self.hints = hints if hints is not None else CardinalityHints()
        if where is not None:
            from .hints import query_scopes

            self.scopes = query_scopes(where)
        else:
            self.scopes = ()
        self._admit_via = frozenset(self.spec.admit_origins_via)
        self._admitted: set[str] = set()
        for seed in seeds:
            origin = self._source_key(seed)
            if origin:
                self._admitted.add(origin)
        #: Links parked awaiting origin admission, keyed by origin.
        self._deferred: dict[str, list[Link]] = {}
        #: Relevance verdicts are stable per container (scopes are fixed;
        #: ranges only grow, and a grown range can only *relax* a class
        #: constraint it already satisfied — cache by container URL).
        self._relevance: dict[str, bool] = {}

    # -- decisions ------------------------------------------------------------

    def check_static(self, link: Link) -> LinkDecision:
        """Push-time check: spec rules and hint relevance only."""
        allowed, rule = self.spec.decide(link.url, link.depth)
        if not allowed:
            return LinkDecision(LinkDecision.PRUNE, f"spec:{rule}")
        pod = self.hints.pod_for(link.url)
        if pod is not None:
            if pod.complete and link.url in pod.infra:
                return LinkDecision(LinkDecision.PRUNE, "hint:infra")
            hint = pod.container_for(link.url)
            if hint is not None and not self._container_relevant(hint):
                return LinkDecision(LinkDecision.PRUNE, "hint:irrelevant")
        return _FOLLOW

    def check(self, link: Link) -> LinkDecision:
        """Pop-time check: static grounds plus origin admission."""
        decision = self.check_static(link)
        if decision.action != LinkDecision.FOLLOW:
            return decision
        if self.spec.origins == "declared":
            origin = self._source_key(link.url)
            if origin and origin not in self._admitted:
                return LinkDecision(LinkDecision.DEFER, "origin:undeclared")
        return _FOLLOW

    def _container_relevant(self, hint) -> bool:
        verdict = self._relevance.get(hint.container)
        if verdict is None:
            verdict = container_relevant(hint, self.scopes, self.hints.ranges)
            self._relevance[hint.container] = verdict
        return verdict

    def relevant_containers(self, pod) -> list:
        """The pod's summarized containers worth traversing, best first
        (most entities) — the hint extractor turns these into links."""
        relevant = [hint for hint in pod.containers if self._container_relevant(hint)]
        relevant.sort(key=lambda hint: (-hint.entities, hint.container))
        return relevant

    # -- knowledge absorption -------------------------------------------------

    def absorb_document(self, url: str, triples: list) -> list:
        """Absorb a fetched document's declarations.

        Parses source-index documents into hints, composes discovered
        subweb specs, and admits origins declared via the spec's
        ``admit_origins_via`` predicates.  Returns any previously deferred
        links whose origin this document just admitted — the engine
        re-queues them.
        """
        if is_hint_document(triples):
            pod = self.hints.absorb_triples(url, triples)
            if pod is not None and pod.ranges:
                # New ranges can flip cached "irrelevant under no ranges"
                # verdicts; recompute lazily.
                self._relevance.clear()
        else:
            discovered = SubwebSpecification.from_triples(triples)
            if discovered is not None:
                self.spec = self.spec.compose(discovered)
                self._admit_via = frozenset(self.spec.admit_origins_via)
        released: list[Link] = []
        if self.spec.origins == "declared" and self._admit_via:
            for triple in triples:
                predicate = triple.predicate
                if getattr(predicate, "value", None) not in self._admit_via:
                    continue
                obj_value = getattr(triple.object, "value", "")
                if not obj_value.startswith(("http://", "https://")):
                    continue
                origin = self._source_key(obj_value)
                if origin and origin not in self._admitted:
                    self._admitted.add(origin)
                    released.extend(self._deferred.pop(origin, ()))
        return released

    # -- deferral -------------------------------------------------------------

    def defer(self, link: Link) -> None:
        origin = self._source_key(link.url)
        self._deferred.setdefault(origin, []).append(link)

    def drain_deferred(self) -> list:
        """Take every still-deferred link (traversal is quiescing; their
        origins were never declared — they count as pruned)."""
        drained = [link for links in self._deferred.values() for link in links]
        self._deferred.clear()
        return drained

    @property
    def deferred_count(self) -> int:
        return sum(len(links) for links in self._deferred.values())

    @property
    def restricts(self) -> bool:
        return self.spec.restricts or self.hints.pod_count > 0

    def _source_key(self, url: str) -> str:
        """The admission unit of a URL — its origin, extended by the
        spec's ``source_depth`` leading path segments (so many pods on
        one host stay distinct sources)."""
        try:
            origin, path, _ = split_url(url)
        except ValueError:
            return ""
        depth = self.spec.source_depth
        if depth <= 0:
            return origin
        segments = [segment for segment in path.split("?", 1)[0].split("/") if segment]
        return origin + "/" + "/".join(segments[:depth]) + "/"
