"""Subweb specifications: declarative traversal scopes.

A specification is an ordered list of :class:`SubwebRule` — glob patterns
over document URLs with an ``allow``/``deny`` action and an optional
depth cap — plus an origin-admission policy.  It answers "may this link
be dereferenced at all?" independently of any query, after the
distributed subweb-specification proposal (arXiv:2302.14411): data
publishers (or the querying user, via ``--subweb file.json``) declare
which parts of the Web a traversal should range over, instead of the
engine discovering that the hard way one dereference at a time.

Rule matching is first-match-wins in rule order; a URL no rule matches
gets ``default_action``.  Globs use ``*`` (within one path segment),
``**`` (across segments), and ``?`` (one character).

Origin admission is the spec's second axis: with ``origins="any"`` every
origin is fair game (the paper's open-Web default); ``origins="declared"``
denies documents from origins that are neither seed origins nor *declared*
by already-traversed data — an origin becomes declared when a traversed
document mentions it as the object of one of the ``admit_origins_via``
predicates (e.g. ``snvoc:likes``: the things a profile points at are part
of the query's subweb; unrelated origins are not).

Specifications are plain frozen data — picklable, so
:class:`~repro.service.shards.ShardSpec` can carry one to worker
processes, and composable with ``compose`` (CLI spec + specs discovered
inside pods).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ...rdf.namespaces import SUBWEB
from ...rdf.terms import Literal, NamedNode
from ...rdf.triples import Triple

__all__ = ["SubwebRule", "SubwebSpecification", "glob_to_regex"]


def glob_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a URL glob: ``**`` crosses ``/``, ``*`` does not."""
    out = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "*":
            if pattern.startswith("**", i):
                out.append(".*")
                i += 2
            else:
                out.append("[^/]*")
                i += 1
        elif ch == "?":
            out.append("[^/]")
            i += 1
        else:
            out.append(re.escape(ch))
            i += 1
    return re.compile("".join(out) + r"\Z")


@dataclass(frozen=True, slots=True)
class SubwebRule:
    """One allow/deny rule over document URLs.

    ``max_depth`` (when > 0) further restricts an ``allow`` rule: a
    matching link deeper than the cap is denied.  ``label`` names the rule
    in pruning statistics (``pruned_by_rule``); it defaults to the glob.
    """

    match: str
    action: str = "allow"
    max_depth: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.action not in ("allow", "deny"):
            raise ValueError(f"rule action must be allow|deny, got {self.action!r}")
        if not self.label:
            object.__setattr__(self, "label", f"{self.action}:{self.match}")

    def matches(self, url: str) -> bool:
        return _compiled(self.match).search(url) is not None


# Compiled-glob cache, keyed by pattern text.  Rules are frozen dataclasses
# that travel through pickle (ShardSpec), so the compiled form lives here
# rather than on the instance.
_GLOB_CACHE: dict[str, "re.Pattern[str]"] = {}


def _compiled(pattern: str) -> "re.Pattern[str]":
    regex = _GLOB_CACHE.get(pattern)
    if regex is None:
        regex = _GLOB_CACHE[pattern] = glob_to_regex(pattern)
    return regex


@dataclass(frozen=True, slots=True)
class SubwebSpecification:
    """An ordered rule list plus the origin-admission policy."""

    rules: tuple[SubwebRule, ...] = ()
    default_action: str = "allow"
    #: ``"any"`` (open Web) or ``"declared"`` (sources must be seed
    #: sources or declared via ``admit_origins_via`` predicates in
    #: traversed data).
    origins: str = "any"
    #: Predicate IRIs whose objects declare admitted sources.
    admit_origins_via: tuple[str, ...] = ()
    #: Granularity of a "source" for admission: 0 means the network
    #: origin; N > 0 appends the first N path segments — e.g. 2 makes
    #: ``https://host/pods/alice/`` one source, which is what Solid needs
    #: when many pods share one host.
    source_depth: int = 0

    def __post_init__(self) -> None:
        if self.default_action not in ("allow", "deny"):
            raise ValueError(f"default_action must be allow|deny, got {self.default_action!r}")
        if self.origins not in ("any", "declared"):
            raise ValueError(f"origins must be any|declared, got {self.origins!r}")

    # -- evaluation -----------------------------------------------------------

    def decide(self, url: str, depth: int = 0) -> tuple[bool, str]:
        """``(allowed, rule_label)`` for a document URL at traversal depth.

        First matching rule wins; the label of the denying rule (or
        ``"default"``) feeds pruning attribution.
        """
        for rule in self.rules:
            if not rule.matches(url):
                continue
            if rule.action == "deny":
                return False, rule.label
            if rule.max_depth and depth > rule.max_depth:
                return False, f"depth>{rule.max_depth}:{rule.label}"
            return True, rule.label
        if self.default_action == "deny":
            return False, "default"
        return True, "default"

    @property
    def restricts(self) -> bool:
        """Whether this spec can ever deny anything."""
        return (
            self.default_action == "deny"
            or self.origins == "declared"
            or any(rule.action == "deny" or rule.max_depth for rule in self.rules)
        )

    # -- composition ----------------------------------------------------------

    def compose(self, other: "SubwebSpecification") -> "SubwebSpecification":
        """This spec refined by ``other`` (e.g. one discovered in a pod).

        Rules concatenate (this spec's rules keep precedence), the
        stricter origin policy wins, and origin-admission predicates
        union.  ``default_action`` stays this spec's — a discovered spec
        narrows, it does not re-open.
        """
        origins = "declared" if "declared" in (self.origins, other.origins) else "any"
        return SubwebSpecification(
            rules=self.rules + other.rules,
            default_action=self.default_action,
            origins=origins,
            admit_origins_via=tuple(
                dict.fromkeys(self.admit_origins_via + other.admit_origins_via)
            ),
            source_depth=max(self.source_depth, other.source_depth),
        )

    # -- JSON round-trip (the ``--subweb`` file format) ----------------------

    def to_json(self) -> dict:
        return {
            "default": self.default_action,
            "origins": self.origins,
            "admit_origins_via": list(self.admit_origins_via),
            "source_depth": self.source_depth,
            "rules": [
                {
                    "match": rule.match,
                    "action": rule.action,
                    **({"max_depth": rule.max_depth} if rule.max_depth else {}),
                    **({"label": rule.label} if rule.label != f"{rule.action}:{rule.match}" else {}),
                }
                for rule in self.rules
            ],
        }

    @classmethod
    def from_json(cls, data: dict) -> "SubwebSpecification":
        rules = tuple(
            SubwebRule(
                match=entry["match"],
                action=entry.get("action", "allow"),
                max_depth=int(entry.get("max_depth", 0)),
                label=entry.get("label", ""),
            )
            for entry in data.get("rules", ())
        )
        return cls(
            rules=rules,
            default_action=data.get("default", "allow"),
            origins=data.get("origins", "any"),
            admit_origins_via=tuple(data.get("admit_origins_via", ())),
            source_depth=int(data.get("source_depth", 0)),
        )

    @classmethod
    def from_file(cls, path: str) -> "SubwebSpecification":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    # -- RDF form (specs discovered as documents inside pods) ----------------

    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> Optional["SubwebSpecification"]:
        """Parse a spec document (``subweb:`` vocabulary); None if absent.

        Shape::

            <> subweb:defaultAction "allow" ;
               subweb:origins "declared" ;
               subweb:admitVia snvoc:likes .
            <#r0> a subweb:Rule ; subweb:match "…/noise/**" ;
                  subweb:action "deny" ; subweb:maxDepth 4 .

        Rules order by subject IRI for determinism.
        """
        default_action = None
        origins = None
        source_depth = 0
        admit_via: list[str] = []
        rule_fields: dict[object, dict[str, object]] = {}
        seen_vocab = False
        for triple in triples:
            predicate = triple.predicate
            if not isinstance(predicate, NamedNode) or predicate not in SUBWEB:
                continue
            seen_vocab = True
            obj = triple.object
            if predicate == SUBWEB.defaultAction and isinstance(obj, Literal):
                default_action = obj.value
            elif predicate == SUBWEB.origins and isinstance(obj, Literal):
                origins = obj.value
            elif predicate == SUBWEB.admitVia and isinstance(obj, NamedNode):
                admit_via.append(obj.value)
            elif predicate == SUBWEB.sourceDepth and isinstance(obj, Literal):
                try:
                    source_depth = int(obj.value)
                except ValueError:
                    pass
            elif predicate == SUBWEB.match and isinstance(obj, Literal):
                rule_fields.setdefault(triple.subject, {})["match"] = obj.value
            elif predicate == SUBWEB.action and isinstance(obj, Literal):
                rule_fields.setdefault(triple.subject, {})["action"] = obj.value
            elif predicate == SUBWEB.maxDepth and isinstance(obj, Literal):
                try:
                    rule_fields.setdefault(triple.subject, {})["max_depth"] = int(obj.value)
                except ValueError:
                    pass
        if not seen_vocab or (default_action is None and origins is None and not rule_fields):
            return None
        rules = tuple(
            SubwebRule(
                match=str(fields["match"]),
                action=str(fields.get("action", "allow")),
                max_depth=int(fields.get("max_depth", 0)),
            )
            for _, fields in sorted(rule_fields.items(), key=lambda item: str(item[0]))
            if "match" in fields
        )
        return cls(
            rules=rules,
            default_action=default_action or "allow",
            origins=origins or "any",
            admit_origins_via=tuple(dict.fromkeys(admit_via)),
            source_depth=source_depth,
        )
