"""Link extraction for guided traversal's own metadata documents.

Two jobs, both only active when a :class:`~.selector.SourceSelector` is
installed (the engine adds this extractor in that case):

1. In *any* document: follow ``subweb:cardinalityIndex`` and
   ``subweb:specification`` objects — pods advertise their source index
   and traversal scope from the WebID profile, and the guided queue ranks
   these links ahead of data (tier ``"hint"``).
2. In a *source-index* document (the selector absorbed it just before
   extraction runs): emit links to the pod's summarized containers that
   are relevant to the query — ``"hint-container"`` tier, carrying the
   container's class as provenance.  With a complete index this replaces
   the LDP infrastructure crawl the selector prunes.
"""

from __future__ import annotations

from ..extractors import LinkExtractor
from ..links import LinkProvenance
from ...rdf.namespaces import SUBWEB
from ...rdf.terms import NamedNode

__all__ = ["HintDiscoveryExtractor"]


class HintDiscoveryExtractor(LinkExtractor):
    name = "hint"

    def __init__(self, selector) -> None:
        self._selector = selector

    def discover(self, document_url, triples, context):
        triple_list = list(triples)
        for triple in triple_list:
            if triple.predicate in (SUBWEB.cardinalityIndex, SUBWEB.specification):
                if isinstance(triple.object, NamedNode):
                    yield triple.object.value, LinkProvenance(
                        extractor=self.name, predicate=triple.predicate.value
                    )
        pod = self._selector.hints.pod_by_source(document_url)
        if pod is not None:
            for hint in self._selector.relevant_containers(pod):
                first_class = min(hint.classes) if hint.classes else None
                yield hint.container, LinkProvenance(
                    extractor="hint-container", for_class=first_class
                )
