"""Link extraction strategies.

After each document is dereferenced, extractors inspect its triples and
propose follow-up links.  Each proposal carries a structured
:class:`~repro.ltqp.links.LinkProvenance` — which extractor emitted it,
on the evidence of which predicate / query pattern / type-index class —
via the :meth:`LinkExtractor.discover` API; the engine, trace spans,
waterfall, and the guided queue all consume that instead of parsing
``via`` strings.  The paper combines Solid-agnostic reachability
criteria [19] with Solid-specific extractors [14]:

* :class:`AllIriExtractor` — the ``cAll`` criterion: follow every IRI.
* :class:`MatchIriExtractor` — ``cMatch``: follow IRIs occurring in triples
  that match some query pattern (the query-relevance heuristic).
* :class:`LdpContainerExtractor` — traverse ``ldp:contains`` hierarchies
  (paper Listing 1).
* :class:`StorageExtractor` — follow ``pim:storage`` links from WebID
  profiles to pod roots (paper Listing 2).
* :class:`TypeIndexExtractor` — follow ``solid:publicTypeIndex`` links and,
  inside a type index, the registrations whose ``solid:forClass`` matches a
  class the query asks for (paper Listing 3).  When the query constrains no
  classes, all registrations are followed.

Extractors are plug-and-play (mirroring Comunica's module system): the
engine takes any combination, and the ablation bench (E8) measures their
effect on links followed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .links import LinkProvenance
from ..rdf.namespaces import LDP, PIM, RDF, SOLID
from ..rdf.terms import NamedNode, Term, Variable
from ..rdf.triples import Triple, TriplePattern
from ..sparql.algebra import (
    BGP,
    Extend,
    Filter,
    GraphOp,
    GroupBy,
    Join,
    LeftJoin,
    Minus,
    Operator,
    OrderBy,
    PathPattern,
    Project,
    Distinct,
    Reduced,
    Slice,
    SubSelect,
    Union,
    ValuesOp,
)
from ..sparql.paths import path_predicates

__all__ = [
    "QueryContext",
    "LinkExtractor",
    "AllIriExtractor",
    "MatchIriExtractor",
    "LdpContainerExtractor",
    "ScopedLdpContainerExtractor",
    "StorageExtractor",
    "TypeIndexExtractor",
    "SOLID_AWARE_EXTRACTORS",
    "default_extractors",
    "build_query_context",
]


@dataclass(frozen=True)
class QueryContext:
    """What the query asks for — extractors use it to filter links.

    ``patterns``: all triple patterns in the query (paths appear with a
    ``None`` predicate wildcard).  ``predicates``: concrete predicate IRIs.
    ``classes``: concrete objects of ``rdf:type`` patterns.  ``iris``:
    every IRI constant in the query.
    """

    patterns: tuple[TriplePattern, ...] = ()
    predicates: frozenset[NamedNode] = frozenset()
    classes: frozenset[NamedNode] = frozenset()
    iris: frozenset[str] = frozenset()
    entity_iris: frozenset[str] = frozenset()

    @property
    def constrains_classes(self) -> bool:
        return bool(self.classes)


def build_query_context(where: Operator) -> QueryContext:
    """Derive a :class:`QueryContext` from an algebra tree."""
    patterns: list[TriplePattern] = []
    _collect_patterns(where, patterns)
    predicates: set[NamedNode] = set()
    classes: set[NamedNode] = set()
    iris: set[str] = set()
    entity_iris: set[str] = set()
    for pattern in patterns:
        for term in pattern:
            if isinstance(term, NamedNode):
                iris.add(term.value)
        is_type_pattern = pattern.predicate == RDF.type
        if isinstance(pattern.subject, NamedNode):
            entity_iris.add(pattern.subject.value)
        if isinstance(pattern.object, NamedNode) and not is_type_pattern:
            entity_iris.add(pattern.object.value)
        if isinstance(pattern.predicate, NamedNode):
            predicates.add(pattern.predicate)
            if is_type_pattern and isinstance(pattern.object, NamedNode):
                classes.add(pattern.object)
    return QueryContext(
        patterns=tuple(patterns),
        predicates=frozenset(predicates),
        classes=frozenset(classes),
        iris=frozenset(iris),
        entity_iris=frozenset(entity_iris),
    )


def _collect_patterns(op: Operator, out: list[TriplePattern]) -> None:
    if isinstance(op, BGP):
        out.extend(op.patterns)
        for path_pattern in op.path_patterns:
            # Paths contribute a wildcard-predicate pattern plus their
            # member predicates as individual patterns for matching.
            for predicate in path_predicates(path_pattern.path):
                out.append(TriplePattern(path_pattern.subject, predicate, path_pattern.object))
        return
    if isinstance(op, (Join, LeftJoin, Union, Minus)):
        _collect_patterns(op.left, out)
        _collect_patterns(op.right, out)
        return
    if isinstance(op, (Filter, Extend, Project, Distinct, Reduced, Slice, OrderBy, GroupBy, GraphOp)):
        _collect_patterns(op.input, out)
        return
    if isinstance(op, SubSelect):
        _collect_patterns(op.query.where, out)
        return
    if isinstance(op, ValuesOp):
        return
    raise TypeError(f"unknown operator: {op!r}")


class LinkExtractor:
    """Base class. ``name`` tags links for statistics and prioritization.

    Subclasses implement either :meth:`discover` (the rich API: yields
    ``(url, LinkProvenance)`` pairs) or the legacy :meth:`extract` (bare
    URLs); the base class bridges each in terms of the other, so existing
    third-party extractors that only know ``extract`` keep working and
    merely get coarse provenance (extractor kind alone).
    """

    name = "abstract"

    def extract(
        self, document_url: str, triples: Iterable[Triple], context: QueryContext
    ) -> Iterator[str]:
        if type(self).discover is LinkExtractor.discover:
            raise NotImplementedError
        for url, _provenance in self.discover(document_url, triples, context):
            yield url

    def discover(
        self, document_url: str, triples: Iterable[Triple], context: QueryContext
    ) -> Iterator[tuple[str, Optional[LinkProvenance]]]:
        """Yield ``(url, provenance)`` pairs for follow-up links."""
        if type(self).extract is LinkExtractor.extract:
            raise NotImplementedError
        provenance = LinkProvenance(extractor=self.name)
        for url in self.extract(document_url, triples, context):
            yield url, provenance


def _iris_of(triple: Triple) -> Iterator[str]:
    for term in triple:
        if isinstance(term, NamedNode) and term.value.startswith(("http://", "https://")):
            yield term.value


def _render_pattern(pattern: TriplePattern) -> str:
    """Compact one-line rendering of a query pattern for provenance."""
    return " ".join(_render_term(term) for term in pattern)


def _render_term(term: Term | None) -> str:
    if term is None:
        return "?"
    if isinstance(term, Variable):
        return str(term)
    if isinstance(term, NamedNode):
        value = term.value
        for sep in ("#", "/"):
            if sep in value:
                tail = value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return value
    return str(term)


class AllIriExtractor(LinkExtractor):
    """cAll reachability: every HTTP(S) IRI in the document is a link."""

    name = "all-iris"

    def extract(self, document_url, triples, context):
        for triple in triples:
            yield from _iris_of(triple)


class MatchIriExtractor(LinkExtractor):
    """cMatch reachability: IRIs from triples matching some query pattern.

    Provenance records the predicate of the producing triple and a compact
    rendering of the query pattern it matched — the guided queue scores
    cMatch links by *which* pattern justified them.
    """

    name = "match"

    def discover(self, document_url, triples, context):
        if not context.patterns:
            return
        # Bucket patterns by concrete predicate so a triple only ever tests
        # the patterns that could match it — most document triples carry a
        # predicate no query pattern mentions and fall through for free.
        by_predicate: dict[Term, list[TriplePattern]] = {}
        wildcard: list[TriplePattern] = []
        for pattern in context.patterns:
            predicate = pattern.predicate
            if predicate is None or isinstance(predicate, Variable):
                wildcard.append(pattern)
            else:
                by_predicate.setdefault(predicate, []).append(pattern)
        # Provenance is interned per (predicate, pattern): documents repeat
        # the same few predicates thousands of times.
        provenance_cache: dict[tuple[Term, TriplePattern], LinkProvenance] = {}
        for triple in triples:
            candidates = by_predicate.get(triple.predicate)
            if candidates is not None:
                if wildcard:
                    candidates = candidates + wildcard
            elif wildcard:
                candidates = wildcard
            else:
                continue
            for pattern in candidates:
                if pattern.matches(triple):
                    key = (triple.predicate, pattern)
                    provenance = provenance_cache.get(key)
                    if provenance is None:
                        provenance = provenance_cache[key] = LinkProvenance(
                            extractor=self.name,
                            predicate=(
                                triple.predicate.value
                                if isinstance(triple.predicate, NamedNode)
                                else None
                            ),
                            pattern=_render_pattern(pattern),
                        )
                    for url in _iris_of(triple):
                        yield url, provenance
                    break


class LdpContainerExtractor(LinkExtractor):
    """Traverse LDP containment: follow every ``ldp:contains`` object."""

    name = "ldp-container"

    def discover(self, document_url, triples, context):
        provenance = LinkProvenance(extractor=self.name, predicate=LDP.contains.value)
        for triple in triples:
            if triple.predicate == LDP.contains and isinstance(triple.object, NamedNode):
                yield triple.object.value, provenance


class StorageExtractor(LinkExtractor):
    """From a WebID profile to the pod root: follow ``pim:storage``."""

    name = "storage"

    def discover(self, document_url, triples, context):
        provenance = LinkProvenance(extractor=self.name, predicate=PIM.storage.value)
        for triple in triples:
            if triple.predicate == PIM.storage and isinstance(triple.object, NamedNode):
                yield triple.object.value, provenance


class TypeIndexExtractor(LinkExtractor):
    """Follow type indexes, filtering registrations by query classes.

    Two phases operate on whatever document is at hand:

    1. In any document: follow ``solid:publicTypeIndex`` /
       ``solid:privateTypeIndex`` objects.
    2. In a type index document: for each ``solid:TypeRegistration``,
       follow ``solid:instance`` / ``solid:instanceContainer`` targets —
       but when the query constrains classes, only registrations whose
       ``solid:forClass`` is one of them.

    Followed registration targets accumulate in :attr:`registered_targets`;
    :class:`ScopedLdpContainerExtractor` uses that set to restrict container
    descent to type-index-relevant subtrees (the pruning of [14]).  State
    is per-instance — use a fresh instance per query execution.
    """

    name = "type-index"

    def __init__(self) -> None:
        self.registered_targets: set[str] = set()

    def discover(self, document_url, triples, context):
        triple_list = list(triples)
        index_provenance = None
        for triple in triple_list:
            if triple.predicate in (SOLID.publicTypeIndex, SOLID.privateTypeIndex):
                if isinstance(triple.object, NamedNode):
                    if index_provenance is None:
                        index_provenance = LinkProvenance(
                            extractor=self.name, predicate=triple.predicate.value
                        )
                    yield triple.object.value, index_provenance

        # Index registrations: group forClass and targets by subject.
        for_class: dict[Term, set[NamedNode]] = {}
        targets: dict[Term, list[NamedNode]] = {}
        for triple in triple_list:
            if triple.predicate == SOLID.forClass and isinstance(triple.object, NamedNode):
                for_class.setdefault(triple.subject, set()).add(triple.object)
            elif triple.predicate in (SOLID.instance, SOLID.instanceContainer):
                if isinstance(triple.object, NamedNode):
                    targets.setdefault(triple.subject, []).append(triple.object)
        for registration, links in targets.items():
            classes = for_class.get(registration, set())
            if context.constrains_classes and classes and not (classes & context.classes):
                continue
            provenance = LinkProvenance(
                extractor=self.name,
                predicate=SOLID.instanceContainer.value,
                for_class=min(c.value for c in classes) if classes else None,
            )
            for target in links:
                self.registered_targets.add(target.value)
                yield target.value, provenance


class ScopedLdpContainerExtractor(LinkExtractor):
    """LDP containment scoped to type-index-registered subtrees.

    The plain :class:`LdpContainerExtractor` crawls every container it
    sees — including ``noise/`` and ``settings/`` (visible in the paper's
    Fig. 4 waterfall).  This variant descends only into containers under a
    target the type index registered for the query, reproducing the
    structural pruning of [14].  Pair it with the *same*
    :class:`TypeIndexExtractor` instance.
    """

    name = "ldp-scoped"

    def __init__(self, type_index: TypeIndexExtractor) -> None:
        self._type_index = type_index

    def discover(self, document_url, triples, context):
        targets = self._type_index.registered_targets
        if not any(document_url.startswith(target) for target in targets):
            return
        provenance = LinkProvenance(extractor=self.name, predicate=LDP.contains.value)
        for triple in triples:
            if triple.predicate == LDP.contains and isinstance(triple.object, NamedNode):
                yield triple.object.value, provenance


#: The Solid-aware configuration demonstrated in the paper.
SOLID_AWARE_EXTRACTORS = (
    MatchIriExtractor,
    LdpContainerExtractor,
    StorageExtractor,
    TypeIndexExtractor,
)


def default_extractors() -> list[LinkExtractor]:
    """The paper's default extractor stack (Solid-aware + cMatch)."""
    return [cls() for cls in SOLID_AWARE_EXTRACTORS]
