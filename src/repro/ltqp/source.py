"""The growing triple source (Fig. 1).

Dereferenced documents feed their triples into one continuously growing
store; query operators read from it *incrementally*: each consumer holds a
cursor (a log position) and pulls only the quads added since.  Per-document
provenance is kept (named graphs keyed by document URL) so GRAPH queries
and the completeness oracle work.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Optional

from ..rdf.dataset import Dataset
from ..rdf.terms import NamedNode, intern_iri
from ..rdf.triples import Quad, Triple

__all__ = ["GrowingTripleSource"]


class GrowingTripleSource:
    """An append-only quad store with growth notification.

    Producers call :meth:`add_document`; consumers read
    ``dataset.match_since(cursor, ...)`` and await :meth:`wait_for_growth`
    to block until more data (or end-of-traversal) arrives.
    """

    def __init__(self) -> None:
        self._dataset = Dataset()
        self._growth_event = asyncio.Event()
        self._closed = False
        self._document_count = 0

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def position(self) -> int:
        return self._dataset.log_position

    @property
    def document_count(self) -> int:
        return self._document_count

    @property
    def closed(self) -> bool:
        return self._closed

    def add_document(self, url: str, triples: Iterable[Triple]) -> int:
        """Ingest one dereferenced document; returns #new quads."""
        graph = intern_iri(url)
        added = 0
        for triple in triples:
            if self._dataset.add(Quad(triple.subject, triple.predicate, triple.object, graph)):
                added += 1
        self._document_count += 1
        if added:
            self._notify()
        return added

    def update_document(
        self, url: str, triples: Iterable[Triple]
    ) -> tuple[list[Triple], list[Triple]]:
        """Replace a document's graph with a new parse, minimally.

        Diffs ``triples`` against the document's current named graph and
        applies only the difference: removed triples are retracted (signed
        ``-1`` log entries), new ones inserted.  Returns
        ``(added, removed)`` — empty/empty when the parse is unchanged.

        This is the live-refresh ingest path: unlike :meth:`add_document`
        it may *shrink* the store, so it must only run on executions whose
        pipeline understands signed deltas.
        """
        graph_name = intern_iri(url)
        graph = self._dataset.graph(graph_name)
        new_triples = set(triples)
        # Sorted so the signed log (and every downstream event stream) is
        # deterministic regardless of set iteration order — sharded and
        # unsharded subscriptions must observe identical change sequences.
        sort_key = lambda t: (repr(t.subject), repr(t.predicate), repr(t.object))  # noqa: E731
        removed = sorted((t for t in graph if t not in new_triples), key=sort_key)
        added = sorted((t for t in new_triples if t not in graph), key=sort_key)
        # Retractions first: an in-place mutation (same subject/predicate,
        # new object) then reads retract-then-insert, never both present.
        for triple in removed:
            self._dataset.remove(Quad(triple.subject, triple.predicate, triple.object, graph_name))
        for triple in added:
            self._dataset.add(Quad(triple.subject, triple.predicate, triple.object, graph_name))
        if added or removed:
            self._notify()
        return added, removed

    def close(self) -> None:
        """Signal end of traversal: no more growth will happen."""
        self._closed = True
        self._notify()

    def _notify(self) -> None:
        self._growth_event.set()

    async def wait_for_growth(self, position: int) -> bool:
        """Wait until the log grows past ``position`` or the source closes.

        Returns ``True`` when new data is available, ``False`` on close
        with no new data.
        """
        while self._dataset.log_position <= position:
            if self._closed:
                return self._dataset.log_position > position
            self._growth_event.clear()
            if self._dataset.log_position > position or self._closed:
                continue
            await self._growth_event.wait()
        return True
