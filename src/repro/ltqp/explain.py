"""Query plan explanation.

Renders what the engine will do before it does it: the algebra tree, the
compiled physical operator tree with the *blocking boundary* marked
(which operators stream during traversal and which hold output for the
quiescence finalize pass), the zero-knowledge BGP join order with
per-pattern scores, the seed URLs, and the extractor stack — the
observability counterpart to Comunica's ``--explain`` flag.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union as TypingUnion

from ..rdf.terms import Variable
from ..sparql.algebra import (
    BGP,
    Distinct,
    Extend,
    Filter,
    GraphOp,
    GroupBy,
    Join,
    LeftJoin,
    Minus,
    Operator,
    OrderBy,
    Project,
    Query,
    Reduced,
    Slice,
    SubSelect,
    Union,
    ValuesOp,
)
from ..sparql.planner import pattern_score, plan_bgp_order
from .extractors import LinkExtractor, build_query_context
from .pipeline import (
    DescribeNode,
    ExistsFilterNode,
    GroupAggregateNode,
    IncrementalNode,
    LeftJoinNode,
    MinusNode,
    OrderSliceNode,
    Pipeline,
    compile_query_pipeline,
)

__all__ = ["explain_algebra", "explain_physical", "explain_plan"]


def explain_algebra(op: Operator, indent: int = 0) -> str:
    """Indented textual rendering of an algebra tree."""
    pad = "  " * indent
    if isinstance(op, BGP):
        lines = [f"{pad}BGP"]
        for pattern in op.patterns:
            lines.append(f"{pad}  {pattern}")
        for path_pattern in op.path_patterns:
            lines.append(f"{pad}  {path_pattern.subject} <path> {path_pattern.object}")
        return "\n".join(lines)
    if isinstance(op, (Join, Union, LeftJoin, Minus)):
        name = type(op).__name__
        return (
            f"{pad}{name}\n"
            + explain_algebra(op.left, indent + 1)
            + "\n"
            + explain_algebra(op.right, indent + 1)
        )
    if isinstance(op, Filter):
        return f"{pad}Filter\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, Extend):
        return f"{pad}Extend ?{op.variable.value}\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, GraphOp):
        return f"{pad}Graph {op.name}\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, ValuesOp):
        return f"{pad}Values ({len(op.rows)} rows)"
    if isinstance(op, Project):
        variables = " ".join(f"?{v.value}" for v in op.variables)
        return f"{pad}Project [{variables}]\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, (Distinct, Reduced)):
        return f"{pad}{type(op).__name__}\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, Slice):
        return (
            f"{pad}Slice offset={op.offset} limit={op.limit}\n"
            + explain_algebra(op.input, indent + 1)
        )
    if isinstance(op, OrderBy):
        return f"{pad}OrderBy ({len(op.conditions)} keys)\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, GroupBy):
        return f"{pad}GroupBy ({len(op.keys)} keys, {len(op.bindings)} aggregates)\n" + explain_algebra(
            op.input, indent + 1
        )
    if isinstance(op, SubSelect):
        return f"{pad}SubSelect\n" + explain_algebra(op.query.where, indent + 1)
    return f"{pad}{type(op).__name__}"


def _physical_label(node: IncrementalNode) -> str:
    from .pipeline import (
        DistinctNode,
        ExtendNode,
        FilterNode,
        JoinNode,
        LimitNode,
        PathScanNode,
        ProjectNode,
        ScanNode,
        ValuesNode,
    )

    if isinstance(node, ScanNode):
        return f"Scan {node._pattern}"
    if isinstance(node, PathScanNode):
        return f"PathScan {node._pattern.subject} <path> {node._pattern.object}"
    if isinstance(node, JoinNode):
        key = " ".join(f"?{v.value}" for v in node._key_variables)
        return f"HashJoin [{key}]" if key else "HashJoin [cross]"
    if isinstance(node, LeftJoinNode):
        key = " ".join(f"?{v.value}" for v in node._key_variables)
        return f"LeftJoin [{key}]" if key else "LeftJoin [cross]"
    if isinstance(node, MinusNode):
        key = " ".join(f"?{v.value}" for v in node._key_variables)
        return f"Minus [{key}]" if key else "Minus [scan]"
    if isinstance(node, ExistsFilterNode):
        mode = "eager" if node._eager else "deferred"
        return f"ExistsFilter ({mode})"
    if isinstance(node, GroupAggregateNode):
        return (
            f"GroupAggregate ({len(node._op.keys)} keys, "
            f"{len(node._aggregates)} aggregates)"
        )
    if isinstance(node, OrderSliceNode):
        return (
            f"OrderSlice ({len(node._conditions)} keys, "
            f"offset={node._offset}, limit={node._limit})"
        )
    if isinstance(node, DescribeNode):
        return f"Describe ({len(node._constants)} constant targets)"
    if isinstance(node, FilterNode):
        return "Filter"
    if isinstance(node, ExtendNode):
        return f"Extend ?{node._variable.value}"
    if isinstance(node, ProjectNode):
        variables = " ".join(f"?{v.value}" for v in node._variables)
        return f"Project [{variables}]"
    if isinstance(node, DistinctNode):
        return "Distinct"
    if isinstance(node, LimitNode):
        return f"Limit {node._limit}"
    if isinstance(node, ValuesNode):
        return f"Values ({len(node._rows)} rows)"
    return type(node).__name__


def _subtree_blocks(node: IncrementalNode) -> bool:
    return node.blocking or any(_subtree_blocks(child) for child in node.children())


def explain_physical(
    plan: TypingUnion[Pipeline, IncrementalNode], indent: int = 0
) -> str:
    """Indented rendering of a compiled physical operator tree.

    Blocking operators are annotated; the lowest ones — those whose inputs
    are fully streaming — are the *blocking boundary*: everything below
    them delivers results mid-traversal, everything on or above flushes at
    quiescence via the finalize pass.
    """
    node = plan.root if isinstance(plan, Pipeline) else plan
    lines: list[str] = []

    def render(node: IncrementalNode, depth: int) -> None:
        label = "  " * depth + _physical_label(node)
        if node.blocking:
            if any(_subtree_blocks(child) for child in node.children()):
                label += "   [blocking]"
            else:
                label += "   <-- blocking boundary (finalizes at quiescence)"
        lines.append(label)
        for child in node.children():
            render(child, depth + 1)

    render(node, indent)
    return "\n".join(lines)


def _find_bgps(op: Operator, out: list[BGP]) -> None:
    if isinstance(op, BGP):
        out.append(op)
        return
    if isinstance(op, (Join, Union, LeftJoin, Minus)):
        _find_bgps(op.left, out)
        _find_bgps(op.right, out)
        return
    if isinstance(op, (Filter, Extend, Project, Distinct, Reduced, Slice, OrderBy, GroupBy, GraphOp)):
        _find_bgps(op.input, out)
        return
    if isinstance(op, SubSelect):
        _find_bgps(op.query.where, out)


def explain_plan(
    query: Query,
    seeds: Iterable[str] = (),
    extractors: Optional[list[LinkExtractor]] = None,
) -> str:
    """Full engine-level explanation for a parsed query."""
    context = build_query_context(query.where)
    seed_list = list(seeds) or sorted(context.entity_iris)
    sections: list[str] = []

    sections.append(f"query form: {query.form}")
    pipeline = compile_query_pipeline(query, seed_iris=context.iris)
    blocking_count = len(pipeline.blocking_nodes)
    sections.append(
        "execution: "
        + (
            "streaming (pipelined incremental operators)"
            if not blocking_count
            else (
                f"streaming below the blocking boundary; {blocking_count} "
                "blocking operator(s) finalize at traversal quiescence"
            )
        )
    )

    sections.append("seeds:")
    for seed in seed_list:
        sections.append(f"  {seed}")
    if not seed_list:
        sections.append("  (none — query mentions no entity IRIs)")

    if extractors is not None:
        sections.append("extractors: " + ", ".join(e.name for e in extractors))

    if context.classes:
        classes = ", ".join(sorted(c.value.rsplit("/", 1)[-1] for c in context.classes))
        sections.append(f"type-index class filter: {classes}")

    sections.append("\nalgebra:")
    sections.append(explain_algebra(query.where, indent=1))

    sections.append("\nphysical plan:")
    sections.append(explain_physical(pipeline, indent=1))

    bgps: list[BGP] = []
    _find_bgps(query.where, bgps)
    for index, bgp in enumerate(bgps):
        patterns = list(bgp.patterns) + list(bgp.path_patterns)
        if len(patterns) < 2:
            continue
        ordered = plan_bgp_order(patterns, seed_iris=context.iris)
        sections.append(f"\nzero-knowledge join order (BGP {index}):")
        bound: set[Variable] = set()
        for position, pattern in enumerate(ordered):
            score = pattern_score(pattern, frozenset(bound), frozenset(context.iris))
            rendered = (
                str(pattern)
                if not hasattr(pattern, "path")
                else f"{pattern.subject} <path> {pattern.object}"
            )
            sections.append(f"  {position + 1}. {rendered}   score={score}")
            bound |= pattern.variables()

    return "\n".join(sections) + "\n"
