"""Query plan explanation.

Renders what the engine will do before it does it: the algebra tree, the
zero-knowledge BGP join order with per-pattern scores, whether the query
streams through the incremental pipeline or waits for traversal
quiescence, the seed URLs, and the extractor stack — the observability
counterpart to Comunica's ``--explain`` flag.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..rdf.terms import Variable
from ..sparql.algebra import (
    BGP,
    Distinct,
    Extend,
    Filter,
    GraphOp,
    GroupBy,
    Join,
    LeftJoin,
    Minus,
    Operator,
    OrderBy,
    Project,
    Query,
    Reduced,
    Slice,
    SubSelect,
    Union,
    ValuesOp,
    is_monotonic,
)
from ..sparql.planner import pattern_score, plan_bgp_order
from .extractors import LinkExtractor, build_query_context

__all__ = ["explain_algebra", "explain_plan"]


def explain_algebra(op: Operator, indent: int = 0) -> str:
    """Indented textual rendering of an algebra tree."""
    pad = "  " * indent
    if isinstance(op, BGP):
        lines = [f"{pad}BGP"]
        for pattern in op.patterns:
            lines.append(f"{pad}  {pattern}")
        for path_pattern in op.path_patterns:
            lines.append(f"{pad}  {path_pattern.subject} <path> {path_pattern.object}")
        return "\n".join(lines)
    if isinstance(op, (Join, Union, LeftJoin, Minus)):
        name = type(op).__name__
        return (
            f"{pad}{name}\n"
            + explain_algebra(op.left, indent + 1)
            + "\n"
            + explain_algebra(op.right, indent + 1)
        )
    if isinstance(op, Filter):
        return f"{pad}Filter\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, Extend):
        return f"{pad}Extend ?{op.variable.value}\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, GraphOp):
        return f"{pad}Graph {op.name}\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, ValuesOp):
        return f"{pad}Values ({len(op.rows)} rows)"
    if isinstance(op, Project):
        variables = " ".join(f"?{v.value}" for v in op.variables)
        return f"{pad}Project [{variables}]\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, (Distinct, Reduced)):
        return f"{pad}{type(op).__name__}\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, Slice):
        return (
            f"{pad}Slice offset={op.offset} limit={op.limit}\n"
            + explain_algebra(op.input, indent + 1)
        )
    if isinstance(op, OrderBy):
        return f"{pad}OrderBy ({len(op.conditions)} keys)\n" + explain_algebra(op.input, indent + 1)
    if isinstance(op, GroupBy):
        return f"{pad}GroupBy ({len(op.keys)} keys, {len(op.bindings)} aggregates)\n" + explain_algebra(
            op.input, indent + 1
        )
    if isinstance(op, SubSelect):
        return f"{pad}SubSelect\n" + explain_algebra(op.query.where, indent + 1)
    return f"{pad}{type(op).__name__}"


def _find_bgps(op: Operator, out: list[BGP]) -> None:
    if isinstance(op, BGP):
        out.append(op)
        return
    if isinstance(op, (Join, Union, LeftJoin, Minus)):
        _find_bgps(op.left, out)
        _find_bgps(op.right, out)
        return
    if isinstance(op, (Filter, Extend, Project, Distinct, Reduced, Slice, OrderBy, GroupBy, GraphOp)):
        _find_bgps(op.input, out)
        return
    if isinstance(op, SubSelect):
        _find_bgps(op.query.where, out)


def explain_plan(
    query: Query,
    seeds: Iterable[str] = (),
    extractors: Optional[list[LinkExtractor]] = None,
) -> str:
    """Full engine-level explanation for a parsed query."""
    context = build_query_context(query.where)
    seed_list = list(seeds) or sorted(context.entity_iris)
    sections: list[str] = []

    sections.append(f"query form: {query.form}")
    sections.append(
        "execution: "
        + (
            "streaming (pipelined incremental operators)"
            if is_monotonic(query.where)
            else "snapshot at traversal quiescence (non-monotonic operators)"
        )
    )

    sections.append("seeds:")
    for seed in seed_list:
        sections.append(f"  {seed}")
    if not seed_list:
        sections.append("  (none — query mentions no entity IRIs)")

    if extractors is not None:
        sections.append("extractors: " + ", ".join(e.name for e in extractors))

    if context.classes:
        classes = ", ".join(sorted(c.value.rsplit("/", 1)[-1] for c in context.classes))
        sections.append(f"type-index class filter: {classes}")

    sections.append("\nalgebra:")
    sections.append(explain_algebra(query.where, indent=1))

    bgps: list[BGP] = []
    _find_bgps(query.where, bgps)
    for index, bgp in enumerate(bgps):
        patterns = list(bgp.patterns) + list(bgp.path_patterns)
        if len(patterns) < 2:
            continue
        ordered = plan_bgp_order(patterns, seed_iris=context.iris)
        sections.append(f"\nzero-knowledge join order (BGP {index}):")
        bound: set[Variable] = set()
        for position, pattern in enumerate(ordered):
            score = pattern_score(pattern, frozenset(bound), frozenset(context.iris))
            rendered = (
                str(pattern)
                if not hasattr(pattern, "path")
                else f"{pattern.subject} <path> {pattern.object}"
            )
            sections.append(f"  {position + 1}. {rendered}   score={score}")
            bound |= pattern.variables()

    return "\n".join(sections) + "\n"
