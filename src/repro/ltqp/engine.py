"""The link-traversal SPARQL query engine (the paper's core system).

Architecture (paper Fig. 1): a link queue seeded with URLs; a pool of
dereferencer workers draining it and feeding triples into the growing
triple source; link extractors appending newly discovered links; and — in
parallel — a pipelined query plan over the growing source that streams
results to the caller while traversal is still running.

Usage::

    engine = LinkTraversalEngine(client)
    execution = engine.query(query_text)            # a QueryExecution handle
    async for binding in execution:                  # stream results, or
        ...
    await execution.gather()                         # run to completion
    execution.stats.summary()                        # live statistics

    engine.query(query_text).run_sync()              # blocking convenience

Seed URLs come from the caller or, following the demo UI's fallback, from
the IRIs mentioned in the query itself.  Every query — any form, any
operator mix — compiles into one incremental pipeline.  Monotonic
subtrees stream results during traversal (the paper's "pipelined
implementations of all *monotonic* SPARQL operators"); non-monotonic
operators (OPTIONAL, MINUS, ORDER BY, GROUP BY, …) become blocking
physical nodes that fold deltas into running state and release their
held-back output in one O(result) finalize pass at traversal quiescence.

Configuration is split by layer: :class:`TraversalPolicy` bounds the
crawl (depth, documents, duration, results), while
:class:`~repro.net.resilience.NetworkPolicy` governs fault handling
(timeouts, retries, circuit breakers).  :class:`EngineConfig` nests both
and keeps accepting the historical flat keyword arguments.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
import warnings
from dataclasses import dataclass, field
from typing import AsyncIterator, Iterable, Optional, Union as TypingUnion

from ..net.client import HttpClient
from ..net.message import split_url
from ..net.resilience import NetworkPolicy
from ..rdf.terms import NamedNode
from ..rdf.triples import Triple
from ..sparql.algebra import Query
from ..sparql.bindings import Binding
from ..sparql.parser import parse_query
from .dereference import Dereferencer
from .extractors import (
    LinkExtractor,
    QueryContext,
    build_query_context,
    default_extractors,
)
from .links import Link, LinkQueue, QueuePolicyContext, build_queue, queue_factory_for
from .pipeline import compile_query_pipeline
from .source import GrowingTripleSource
from .stats import ExecutionStats, TimedResult

__all__ = [
    "TraversalPolicy",
    "NetworkPolicy",
    "EngineConfig",
    "ExecutionResult",
    "QueryExecution",
    "LinkTraversalEngine",
]


@dataclass(slots=True)
class TraversalPolicy:
    """Bounds and behaviour of the traversal itself.

    ``worker_count`` parallel dereferencers (the browser demo fetches with
    ~6-way parallelism per origin; the client enforces the per-origin cap,
    this caps global parallelism).  ``max_documents``/``max_depth`` bound
    traversal on the open Web; ``0`` disables the bound.
    """

    worker_count: int = 8
    max_documents: int = 0
    max_depth: int = 0
    max_duration: float = 0.0
    max_results: int = 0
    #: Per-origin dereference budget: at most this many documents are
    #: taken from any single origin per execution; further links from
    #: that origin are *refused* (kind ``origin-derefs``) and attributed
    #: in ``ExecutionStats.completeness()``.  A link-trap origin spinning
    #: an infinite container chain therefore costs a bounded number of
    #: requests.  ``0`` disables.
    max_origin_derefs: int = 0
    #: Per-origin byte budget: once an origin has served this many body
    #: bytes, further links from it are refused (kind ``origin-bytes``).
    #: Bounds growing-document origins whose individual documents stay
    #: under the per-document caps.  ``0`` disables.
    max_origin_bytes: int = 0
    #: Global parse-size cap, installed on the dereferencer: a body over
    #: this many bytes is refused before decode/tokenize work (kind
    #: ``parse-bytes``).  The network-side counterpart — aborting the
    #: transfer itself — is ``NetworkPolicy.max_response_bytes``.
    #: ``0`` disables.
    max_parse_bytes: int = 0
    lenient: bool = True
    follow_unknown_origins: bool = True
    adaptive: bool = False
    #: Link-queue discipline: ``"fifo"`` (breadth-first, the paper's
    #: default), ``"lifo"`` (depth-first), ``"priority"`` (shallow +
    #: Solid-metadata links first; see
    #: :class:`~repro.ltqp.links.PriorityLinkQueue`), ``"fair"``
    #: (round-robin across origins), or ``"guided"`` (provenance/hint
    #: scoring with result-contribution feedback; see
    #: :class:`~repro.ltqp.guided.GuidedLinkQueue`).  An explicit
    #: ``queue_factory`` passed to the engine overrides this.
    queue_policy: str = "fifo"
    #: Subweb specification governing source selection (DESIGN.md §4g):
    #: a :class:`~repro.ltqp.guided.SubwebSpecification`, a dict in its
    #: JSON shape, or a path to a JSON spec file (the CLI's ``--subweb``).
    #: Installing one activates the :class:`~repro.ltqp.guided
    #: .SourceSelector` — links outside the declared subweb are pruned
    #: *before* they cost a dereference, attributed in
    #: ``ExecutionStats.completeness()``.  ``None`` plus a non-guided
    #: queue policy leaves traversal exactly as before.
    subweb: Optional[object] = None
    #: Micro-batching of pipeline advancement: documents accumulate in the
    #: growing source until at least this many new quads are pending, then
    #: one ``advance`` feeds them all — tiny documents coalesce instead of
    #: each paying a full pipeline pass.  Until the first result is emitted
    #: the engine flushes per document, so time-to-first-result is not
    #: traded away.  ``<= 1`` restores strict per-document advancement.
    advance_batch_quads: int = 192
    #: Upper bound on how long a partial batch may sit before a timer
    #: flushes it (seconds; ``0`` disables the timer).  Quiescence always
    #: flushes regardless.
    advance_flush_interval: float = 0.02


_TRAVERSAL_FIELDS = frozenset(f.name for f in dataclasses.fields(TraversalPolicy))
_NETWORK_FIELDS = frozenset(f.name for f in dataclasses.fields(NetworkPolicy))


def _origin_of(url: str) -> str:
    try:
        origin, _, _ = split_url(url)
    except ValueError:
        return ""
    return origin


def _resolve_subweb(value):
    """Normalize ``TraversalPolicy.subweb`` to a SubwebSpecification."""
    if value is None:
        return None
    from .guided import SubwebSpecification

    if isinstance(value, SubwebSpecification):
        return value
    if isinstance(value, dict):
        return SubwebSpecification.from_json(value)
    if isinstance(value, str):
        return SubwebSpecification.from_file(value)
    raise TypeError(f"subweb must be a SubwebSpecification, dict, or path; got {value!r}")


class _OriginBudgets:
    """Per-execution ledger of what each origin has cost so far.

    ``admit`` is the gate :meth:`LinkTraversalEngine._process_link` asks
    before dereferencing: it returns the budget kind that refuses the
    link (``"origin-derefs"`` / ``"origin-bytes"``) or ``""`` to admit,
    charging the dereference on admission.  Body bytes are charged after
    the fetch via ``charge_bytes``.
    """

    __slots__ = ("_derefs", "_bytes")

    def __init__(self) -> None:
        self._derefs: dict[str, int] = {}
        self._bytes: dict[str, int] = {}

    def admit(self, origin: str, traversal: TraversalPolicy) -> str:
        cap = traversal.max_origin_derefs
        if cap and self._derefs.get(origin, 0) >= cap:
            return "origin-derefs"
        cap = traversal.max_origin_bytes
        if cap and self._bytes.get(origin, 0) >= cap:
            return "origin-bytes"
        self._derefs[origin] = self._derefs.get(origin, 0) + 1
        return ""

    def charge_bytes(self, origin: str, count: int) -> None:
        if count:
            self._bytes[origin] = self._bytes.get(origin, 0) + count


class EngineConfig:
    """Tunables for one engine instance, split into two nested policies.

    ``traversal`` (a :class:`TraversalPolicy`) bounds the crawl;
    ``network`` (a :class:`~repro.net.resilience.NetworkPolicy`) governs
    timeouts, retries, and circuit breaking.  For backwards compatibility
    every field of either policy is also accepted as a flat keyword
    argument and readable/writable as a flat attribute::

        EngineConfig(max_depth=2, request_timeout=1.0)
        EngineConfig(traversal=TraversalPolicy(max_depth=2))
        config.worker_count          # reads config.traversal.worker_count
    """

    __slots__ = ("network", "traversal")

    def __init__(
        self,
        network: Optional[NetworkPolicy] = None,
        traversal: Optional[TraversalPolicy] = None,
        **flat,
    ) -> None:
        object.__setattr__(self, "network", network if network is not None else NetworkPolicy())
        object.__setattr__(
            self, "traversal", traversal if traversal is not None else TraversalPolicy()
        )
        for name, value in flat.items():
            if name not in _TRAVERSAL_FIELDS and name not in _NETWORK_FIELDS:
                raise TypeError(f"EngineConfig got an unknown knob {name!r}")
            setattr(self, name, value)

    def __getattr__(self, name: str):
        # Only reached when normal lookup fails — i.e. for flat names.
        if name in _TRAVERSAL_FIELDS:
            return getattr(object.__getattribute__(self, "traversal"), name)
        if name in _NETWORK_FIELDS:
            return getattr(object.__getattribute__(self, "network"), name)
        raise AttributeError(f"EngineConfig has no knob {name!r}")

    def __setattr__(self, name: str, value) -> None:
        if name in ("network", "traversal"):
            object.__setattr__(self, name, value)
        elif name in _TRAVERSAL_FIELDS:
            setattr(self.traversal, name, value)
        elif name in _NETWORK_FIELDS:
            setattr(self.network, name, value)
        else:
            raise AttributeError(f"EngineConfig has no knob {name!r}")

    def __repr__(self) -> str:
        return f"EngineConfig(traversal={self.traversal!r}, network={self.network!r})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, EngineConfig):
            return NotImplemented
        return self.traversal == other.traversal and self.network == other.network


@dataclass(slots=True)
class ExecutionResult:
    """Everything one query execution produced."""

    query: Query
    results: list[TimedResult] = field(default_factory=list)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    seeds: list[str] = field(default_factory=list)
    #: Live executions keep their pipeline, triple source, and
    #: dereferencer past quiescence so
    #: :class:`~repro.ltqp.live.LiveQuery` can maintain the result
    #: multiset under signed deltas.  The dereferencer matters for diff
    #: minimality: its per-URL blank-node namespaces make a refresh
    #: re-parse label-stable against the traversal's parse.  ``None``
    #: for ordinary runs.
    live: bool = False
    pipeline: Optional[object] = None
    source: Optional[object] = None
    dereferencer: Optional[object] = None

    @property
    def bindings(self) -> list[Binding]:
        return [timed.binding for timed in self.results]

    def __len__(self) -> int:
        return len(self.results)


class QueryExecution:
    """Handle for one query execution — the unified entry point.

    Created by :meth:`LinkTraversalEngine.query`; nothing runs until the
    handle is driven.  Supports four consumption styles::

        async for binding in execution: ...     # stream
        await execution.gather()                # run to completion
        execution.run_sync()                    # blocking gather
        await execution.cancel()                # stop traversal, keep stats

    ``stats``/``results``/``bindings`` are live views — they update while
    the execution streams and are final once ``done`` is true.
    """

    def __init__(
        self,
        engine: "LinkTraversalEngine",
        query: Query,
        seeds: Optional[Iterable[str]],
        tracer=None,
        metrics=None,
        extractors: Optional[list[LinkExtractor]] = None,
        traversal: Optional[TraversalPolicy] = None,
        live: bool = False,
    ) -> None:
        self._result = ExecutionResult(query=query, live=live)
        self._tracer = tracer
        self._metrics = metrics
        self._generator = engine._run(
            self._result,
            seeds,
            tracer,
            metrics,
            extractors=extractors,
            traversal=traversal,
            live=live,
        )
        self._finished = False
        self._cancelled = False

    # -- live views ----------------------------------------------------

    @property
    def query(self) -> Query:
        return self._result.query

    @property
    def result(self) -> ExecutionResult:
        """The underlying :class:`ExecutionResult` container."""
        return self._result

    @property
    def stats(self) -> ExecutionStats:
        return self._result.stats

    @property
    def results(self) -> list[TimedResult]:
        return self._result.results

    @property
    def bindings(self) -> list[Binding]:
        return self._result.bindings

    @property
    def seeds(self) -> list[str]:
        return self._result.seeds

    @property
    def tracer(self):
        """The :class:`~repro.obs.trace.Tracer` recording this execution (or None)."""
        return self._tracer

    @property
    def metrics(self):
        """The :class:`~repro.obs.metrics.Metrics` registry in use (or None)."""
        return self._metrics

    @property
    def done(self) -> bool:
        return self._finished

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __len__(self) -> int:
        return len(self._result)

    # -- consumption ---------------------------------------------------

    def __aiter__(self) -> "QueryExecution":
        return self

    async def __anext__(self) -> Binding:
        if self._finished:
            raise StopAsyncIteration
        try:
            return await self._generator.__anext__()
        except StopAsyncIteration:
            self._finished = True
            raise

    async def gather(self) -> "QueryExecution":
        """Drain the execution to completion; returns this handle."""
        async for _ in self:
            pass
        return self

    async def cancel(self) -> "QueryExecution":
        """Stop traversal and finalize statistics for what was produced."""
        if not self._finished:
            self._cancelled = True
            self._finished = True
            await self._generator.aclose()
        return self

    def run_sync(self) -> "QueryExecution":
        """Blocking convenience: run the execution on a fresh event loop."""
        return asyncio.run(self.gather())


class LinkTraversalEngine:
    """Executes SPARQL queries over the Web by link traversal."""

    def __init__(
        self,
        client: HttpClient,
        extractors: Optional[list[LinkExtractor]] = None,
        config: Optional[EngineConfig] = None,
        queue_factory=None,
        auth_headers: Optional[dict[str, str]] = None,
        dereferencer: Optional[Dereferencer] = None,
    ) -> None:
        self._client = client
        self._extractors = extractors if extractors is not None else default_extractors()
        self._config = config if config is not None else EngineConfig()
        # ``None`` defers to the traversal policy's ``queue_policy`` at
        # execution time; an explicit factory always wins.
        self._queue_factory = queue_factory
        self._auth_headers = dict(auth_headers or {})
        # A shared (service-owned) dereferencer may be injected so many
        # engines/executions reuse one parsed-document store; when set, it
        # supersedes the per-run default and its own leniency/header
        # settings apply instead of this engine's.
        self._dereferencer = dereferencer
        # The engine's network policy governs its client, unless the
        # caller constructed the client with an explicit policy of its own.
        if not client.has_explicit_policy:
            client.apply_policy(self._config.network)

    @property
    def client(self) -> HttpClient:
        return self._client

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def extractors(self) -> list[LinkExtractor]:
        return list(self._extractors)

    @property
    def dereferencer(self) -> Optional[Dereferencer]:
        """The injected shared dereferencer, if any (else one is built per run)."""
        return self._dereferencer

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def query(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
        tracer=None,
        metrics=None,
        extractors: Optional[list[LinkExtractor]] = None,
        traversal: Optional[TraversalPolicy] = None,
        live: bool = False,
    ) -> QueryExecution:
        """Begin a query execution and return its :class:`QueryExecution`.

        The single entry point replacing ``execute``/``stream``/
        ``execute_sync``: iterate the handle to stream, ``await
        .gather()`` (or ``.run_sync()``) to collect everything, ``await
        .cancel()`` to stop early — ``.stats`` is live throughout.

        Pass a :class:`~repro.obs.trace.Tracer` to record the execution's
        span tree and/or a :class:`~repro.obs.metrics.Metrics` registry
        for counters/gauges/histograms; with neither, no instrumentation
        code runs (the observability layer is strictly opt-in).

        ``extractors`` and ``traversal`` override the engine's defaults
        for this execution only — the :class:`~repro.service.QueryService`
        uses them to give every concurrent query fresh extractor state and
        its own link/time budgets while the engine (client, dereferencer,
        caches) stays shared.

        ``live=True`` compiles the pipeline for *standing* execution: the
        run proceeds to true quiescence (no LIMIT short-circuit), every
        operator retains signed-maintenance state, and after completion
        ``execution.result.pipeline`` / ``.source`` stay usable so a
        :class:`~repro.ltqp.live.LiveQuery` can keep the result multiset
        current as documents change.  Live runs never use the adaptive
        re-planner (its replay is additive-only).
        """
        return QueryExecution(
            self,
            self._parse(query),
            seeds,
            tracer=tracer,
            metrics=metrics,
            extractors=extractors,
            traversal=traversal,
            live=live,
        )

    # -- deprecated entry points (kept as thin wrappers) ----------------

    async def execute(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
    ) -> ExecutionResult:
        """Deprecated: use ``await engine.query(...).gather()``."""
        warnings.warn(
            "LinkTraversalEngine.execute() is deprecated; use engine.query(...).gather()",
            DeprecationWarning,
            stacklevel=2,
        )
        execution = self.query(query, seeds=seeds)
        await execution.gather()
        return execution.result

    def stream(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
    ) -> AsyncIterator[Binding]:
        """Deprecated: use ``async for binding in engine.query(...)``."""
        warnings.warn(
            "LinkTraversalEngine.stream() is deprecated; iterate engine.query(...) directly",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(query, seeds=seeds)

    def execute_sync(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
    ) -> ExecutionResult:
        """Deprecated: use ``engine.query(...).run_sync()``."""
        warnings.warn(
            "LinkTraversalEngine.execute_sync() is deprecated; use engine.query(...).run_sync()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(query, seeds=seeds).run_sync().result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _parse(query: TypingUnion[str, Query]) -> Query:
        if isinstance(query, Query):
            return query
        return parse_query(query)

    @staticmethod
    def seeds_from_query(query: Query) -> list[str]:
        """The demo UI's fallback: IRIs mentioned in the query are seeds.

        Only entity IRIs (subject/object positions) count — vocabulary IRIs
        (predicates, classes) are not dereferenceable data anchors.
        """
        context = build_query_context(query.where)
        seeds = {
            iri for iri in context.entity_iris if iri.startswith(("http://", "https://"))
        }
        for target in query.describe_targets:
            if isinstance(target, NamedNode) and target.value.startswith(("http://", "https://")):
                seeds.add(target.value)
        return sorted(seeds)

    async def _run(
        self,
        execution: ExecutionResult,
        seeds: Optional[Iterable[str]],
        tracer=None,
        metrics=None,
        extractors: Optional[list[LinkExtractor]] = None,
        traversal: Optional[TraversalPolicy] = None,
        live: bool = False,
    ) -> AsyncIterator[Binding]:
        # Per-execution view of the configuration: shared engine state
        # (client, dereferencer, network policy) stays engine-level, while
        # traversal bounds and extractor state may vary query by query.
        config = (
            self._config
            if traversal is None
            else EngineConfig(network=self._config.network, traversal=traversal)
        )
        run_extractors = extractors if extractors is not None else self._extractors
        query = execution.query
        context = build_query_context(query.where)
        seed_list = list(seeds) if seeds is not None else self.seeds_from_query(query)
        execution.seeds = seed_list
        stats = execution.stats
        # Guided source selection: a subweb spec and/or the guided queue
        # policy installs a per-execution SourceSelector, and the hint
        # extractor so pods' source indexes and published specs are
        # discovered and absorbed during traversal.
        selector = None
        spec = _resolve_subweb(config.subweb)
        if spec is not None or config.queue_policy == "guided":
            from .guided import HintDiscoveryExtractor, SourceSelector

            selector = SourceSelector(spec=spec, where=query.where, seeds=seed_list)
            run_extractors = [HintDiscoveryExtractor(selector)] + list(run_extractors)
        # Every timestamp in a traced execution (stats, queue samples,
        # request log, spans) comes from the tracer's clock, so a seeded
        # TickClock makes the whole run a deterministic artifact.
        clock = tracer.clock if tracer is not None else time.monotonic
        stats.started_at = clock()
        resilience_before = self._client.resilience_snapshot()

        query_span = traversal_span = None
        client_tracer_before = self._client.tracer
        client_metrics_before = self._client.metrics
        if tracer is not None:
            query_span = tracer.begin(
                "query", start=stats.started_at, form=query.form, seeds=len(seed_list)
            )
            # Opened before the seeds enqueue so their stamps nest inside.
            traversal_span = tracer.begin("traversal", parent=query_span)
            self._client.tracer = tracer
        if metrics is not None:
            self._client.metrics = metrics

        source = GrowingTripleSource()
        queue_factory = (
            self._queue_factory
            if self._queue_factory is not None
            else queue_factory_for(config.queue_policy)
        )
        policy_context = QueuePolicyContext(
            traversal=config.traversal,
            selector=selector,
            hints=selector.hints if selector is not None else None,
            query=context,
        )
        queue: LinkQueue = build_queue(queue_factory, policy_context)
        queue.clock = clock
        if metrics is not None:
            depth_gauge = metrics.gauge("queue.depth")
            queue.observer = lambda sample: depth_gauge.set(sample.queue_length)
        for seed in seed_list:
            if queue.push(Link(url=seed, via="seed")):
                stats.links_queued += 1
                stats.links_by_extractor["seed"] = stats.links_by_extractor.get("seed", 0) + 1

        # One compiler for every query form: ASK wraps in LIMIT 1 over an
        # empty projection, DESCRIBE streams CBD triples, CONSTRUCT streams
        # its WHERE bindings and instantiates the template per new solution.
        # Non-monotonic operators become blocking physical nodes that flush
        # at quiescence via Pipeline.finalize.
        plan_started = clock() if tracer is not None else 0.0
        if live:
            # Signed maintenance needs per-operator live state; the
            # adaptive re-planner's replay is additive-only, so live
            # executions always compile the static live pipeline.
            pipeline = compile_query_pipeline(query, seed_iris=context.iris, live=True)
        elif config.adaptive:
            from .adaptive import AdaptivePipeline

            pipeline = AdaptivePipeline(query.where, seed_iris=context.iris, query=query)
        else:
            pipeline = compile_query_pipeline(query, seed_iris=context.iris)
        # "Streaming" now means the plan holds nothing back: no blocking
        # operators, so every result can reach the caller mid-traversal.
        stats.streaming = not pipeline.blocking_nodes
        if tracer is not None:
            tracer.add(
                "plan",
                plan_started,
                clock(),
                parent=query_span,
                streaming=stats.streaming,
                blocking=len(pipeline.blocking_nodes),
                adaptive=config.adaptive,
            )
            pipeline.enable_tracing(tracer, query_span)

        constructed: set = set()

        def transform_results(bindings):
            """Map raw pipeline bindings to what the query form returns."""
            if query.form != "CONSTRUCT":
                return bindings
            from ..rdf.terms import Variable
            from ..sparql.eval import construct_triples

            output = []
            for binding in bindings:
                for triple in construct_triples(
                    query.construct_template, binding, len(constructed)
                ):
                    if triple not in constructed:
                        constructed.add(triple)
                        output.append(
                            Binding(
                                {
                                    Variable("subject"): triple.subject,
                                    Variable("predicate"): triple.predicate,
                                    Variable("object"): triple.object,
                                }
                            )
                        )
            return output

        result_queue: asyncio.Queue[Optional[Binding]] = asyncio.Queue()
        stop_traversal = asyncio.Event()
        # Result-contribution feedback (guided queue only): the documents
        # whose entities appear in an emitted binding get their pending
        # sibling links promoted.
        note_contribution = getattr(queue, "note_result_contribution", None)

        def feed_contribution(binding: Binding) -> None:
            for _var, term in binding.items():
                value = getattr(term, "value", None)
                if isinstance(value, str) and value.startswith(("http://", "https://")):
                    note_contribution(value.split("#", 1)[0])

        def emit(binding: Binding) -> None:
            # Single limit check against the pre-increment count decides both
            # acceptance and traversal stop: the binding that lands exactly on
            # the limit is counted *and* triggers the stop — it is never
            # silently dropped, and anything past the limit is ignored.
            limit = config.max_results
            count = stats.result_count
            if limit and count >= limit:
                return
            now = clock()
            if stats.first_result_at is None:
                stats.first_result_at = now
                if tracer is not None:
                    # Same `now` as the stats field, so the trace-derived
                    # time-to-first-result reconciles exactly.
                    tracer.instant("first-result", parent=query_span, ts=now)
            stats.result_count = count + 1
            execution.results.append(TimedResult(binding=binding, elapsed=now - stats.started_at))
            if note_contribution is not None:
                feed_contribution(binding)
            result_queue.put_nowait(binding)
            if limit and count + 1 >= limit:
                stop_traversal.set()

        batch_quads = max(1, config.advance_batch_quads)
        pending_quads = 0

        def flush_pipeline() -> None:
            nonlocal pending_quads
            if pending_quads == 0:
                return
            pending_quads = 0
            for binding in transform_results(pipeline.advance(source.dataset)):
                emit(binding)
            if pipeline.complete:
                stop_traversal.set()

        def on_document(url: str, triples: list[Triple]) -> None:
            nonlocal pending_quads
            # Hard document bound: concurrent workers may all pass the
            # pre-fetch check, but only the first max_documents results
            # are admitted into the source.
            doc_limit = config.max_documents
            if doc_limit and source.document_count >= doc_limit:
                stop_traversal.set()
                return
            added = source.add_document(url, triples)
            stats.triples_discovered += added
            if not added:
                return
            pending_quads += added
            # Flush per document until the first result (TTFR protection),
            # then coalesce small documents up to the batch threshold.
            if stats.result_count == 0 or pending_quads >= batch_quads:
                flush_pipeline()

        async def flush_timer() -> None:
            interval = config.advance_flush_interval
            while not stop_traversal.is_set():
                await asyncio.sleep(interval)
                flush_pipeline()

        # Resolved here (not inside _traverse) so live executions can
        # retain it: refreshes must reuse the same per-URL blank-node
        # namespaces the traversal parses established.
        dereferencer = self._resolve_dereferencer(config, tracer)
        traversal = asyncio.create_task(
            self._traverse(
                queue,
                source,
                context,
                stats,
                on_document,
                stop_traversal,
                config=config,
                extractors=run_extractors,
                tracer=tracer,
                traversal_span=traversal_span,
                clock=clock,
                dereferencer=dereferencer,
                selector=selector,
            )
        )
        timer: Optional[asyncio.Task] = None
        if batch_quads > 1 and config.advance_flush_interval > 0:
            timer = asyncio.create_task(flush_timer())

        drain: Optional[asyncio.Task] = None
        try:
            while True:
                drain = asyncio.create_task(result_queue.get())
                done, _ = await asyncio.wait(
                    {drain, traversal}, return_when=asyncio.FIRST_COMPLETED
                )
                if drain in done:
                    binding = drain.result()
                    if binding is not None:
                        yield binding
                    continue
                # Traversal finished; cancel the pending drain and flush.
                drain.cancel()
                break
            await traversal  # re-raise worker exceptions
            if tracer is not None:
                tracer.end(traversal_span)
            # Quiescence flush: feed whatever landed after the last batched
            # advance (the cursor makes this exact, batching or not), then
            # release everything the blocking operators held back.
            pending_quads = 0
            for binding in transform_results(pipeline.finalize(source.dataset)):
                emit(binding)
            if live:
                # Arm signed maintenance and hand the standing machinery
                # to the caller (LiveQuery) before the generator returns.
                pipeline.prepare_live(source.dataset)
                execution.pipeline = pipeline
                execution.source = source
                execution.dereferencer = dereferencer
            while not result_queue.empty():
                binding = result_queue.get_nowait()
                if binding is not None:
                    yield binding
        finally:
            if drain is not None and not drain.done():
                drain.cancel()
            # CancelledError is a BaseException (not an Exception) on modern
            # Python, so it needs its own clause; the expected outcome of
            # cancelling is the task raising it.  Anything else is a real
            # teardown bug — shutdown must not fail the query, but the error
            # is recorded in the stats instead of being swallowed silently.
            if timer is not None and not timer.done():
                timer.cancel()
                try:
                    await timer
                except asyncio.CancelledError:
                    pass
                except Exception as error:
                    stats.note_shutdown_error("flush-timer", error)
            if not traversal.done():
                traversal.cancel()
                try:
                    await traversal
                except asyncio.CancelledError:
                    pass
                except Exception as error:
                    stats.note_shutdown_error("traversal", error)
            if selector is not None:
                # Links still deferred at quiescence: their origins were
                # never declared by any traversed document — pruned.
                for parked in selector.drain_deferred():
                    stats.note_pruned("origin:undeclared", _origin_of(parked.url))
            source.close()
            stats.finished_at = clock()
            stats.documents_fetched = source.document_count
            stats.queue_samples = queue.samples
            stats.links_queued = queue.pushed_total
            stats.replans = getattr(pipeline, "replans", 0)
            self._finalize_resilience(stats, resilience_before)
            if tracer is not None:
                # Idempotent for the happy path; the cancellation path
                # closes traversal (and any interrupted descendants) here.
                tracer.end(traversal_span, end=stats.finished_at)
                tracer.end(query_span, end=stats.finished_at, results=stats.result_count)
                tracer.close_open_spans(end=stats.finished_at)
            self._client.tracer = client_tracer_before
            self._client.metrics = client_metrics_before
            if metrics is not None:
                metrics.counter("documents.fetched").inc(stats.documents_fetched)
                metrics.counter("triples.discovered").inc(stats.triples_discovered)
                metrics.counter("results.emitted").inc(stats.result_count)
                if stats.total_time > 0:
                    metrics.gauge("triples.per_s").set(
                        stats.triples_discovered / stats.total_time
                    )

    def _finalize_resilience(self, stats: ExecutionStats, before: dict) -> None:
        """Fold the client's resilience counter deltas into the stats."""
        after = self._client.resilience_snapshot()
        stats.http_retries = after["retries"] - before["retries"]
        stats.http_timeouts = after["timeouts"] - before["timeouts"]
        stats.breaker_fast_fails = (
            after["breaker_fast_fails"] - before["breaker_fast_fails"]
        )
        trips_before = before["trips_by_origin"]
        stats.origins_tripped = {
            origin: trips - trips_before.get(origin, 0)
            for origin, trips in after["trips_by_origin"].items()
            if trips > trips_before.get(origin, 0)
        }

    # ------------------------------------------------------------------
    # traversal loop
    # ------------------------------------------------------------------

    def _resolve_dereferencer(
        self, config: EngineConfig, tracer=None
    ) -> Dereferencer:
        """The injected shared dereferencer, or a fresh per-run one."""
        dereferencer = self._dereferencer
        if dereferencer is None:
            return Dereferencer(
                self._client,
                lenient=config.lenient,
                extra_headers=self._auth_headers,
                tracer=tracer,
                max_parse_bytes=config.max_parse_bytes,
            )
        if config.max_parse_bytes and not dereferencer.max_parse_bytes:
            # A shared (service-owned) dereferencer keeps its own cap if it
            # has one; otherwise this execution's cap is installed for good
            # (the service configures all executions uniformly).
            dereferencer.max_parse_bytes = config.max_parse_bytes
        return dereferencer

    async def _traverse(
        self,
        queue: LinkQueue,
        source: GrowingTripleSource,
        context: QueryContext,
        stats: ExecutionStats,
        on_document,
        stop_traversal: asyncio.Event,
        config: Optional[EngineConfig] = None,
        extractors: Optional[list[LinkExtractor]] = None,
        tracer=None,
        traversal_span=None,
        clock=time.monotonic,
        dereferencer: Optional[Dereferencer] = None,
        selector=None,
    ) -> None:
        if config is None:
            config = self._config
        if extractors is None:
            extractors = self._extractors
        if dereferencer is None:
            dereferencer = self._resolve_dereferencer(config, tracer)
        budgets = _OriginBudgets()
        in_flight = 0
        wake = asyncio.Condition()

        async def worker(track: int) -> None:
            nonlocal in_flight
            while True:
                async with wake:
                    while queue.empty:
                        if in_flight == 0 or stop_traversal.is_set():
                            wake.notify_all()
                            return
                        await wake.wait()
                    if stop_traversal.is_set():
                        wake.notify_all()
                        return
                    link = queue.pop()
                    in_flight += 1
                try:
                    await self._process_link(
                        link,
                        dereferencer,
                        queue,
                        context,
                        stats,
                        on_document,
                        config=config,
                        extractors=extractors,
                        tracer=tracer,
                        traversal_span=traversal_span,
                        clock=clock,
                        track=track,
                        budgets=budgets,
                        selector=selector,
                    )
                finally:
                    async with wake:
                        in_flight -= 1
                        wake.notify_all()

        workers = [
            asyncio.create_task(worker(index + 1))
            for index in range(config.worker_count)
        ]
        try:
            await asyncio.gather(*workers)
        finally:
            for task in workers:
                if not task.done():
                    task.cancel()

    async def _process_link(
        self,
        link: Link,
        dereferencer: Dereferencer,
        queue: LinkQueue,
        context: QueryContext,
        stats: ExecutionStats,
        on_document,
        config: Optional[EngineConfig] = None,
        extractors: Optional[list[LinkExtractor]] = None,
        tracer=None,
        traversal_span=None,
        clock=time.monotonic,
        track: int = 0,
        budgets: Optional[_OriginBudgets] = None,
        selector=None,
    ) -> None:
        if config is None:
            config = self._config
        if extractors is None:
            extractors = self._extractors
        if config.max_documents and stats.documents_fetched >= config.max_documents:
            return
        if (
            config.max_duration
            and clock() - stats.started_at > config.max_duration
        ):
            return
        deref_span = None
        if tracer is not None:
            popped_at = clock()
            enqueued_at = link.enqueued_at or popped_at
            # The span covers the document's whole lifetime in the system,
            # queue wait included — matching the paper's waterfall bars.
            deref_span = tracer.begin(
                "dereference",
                parent=traversal_span,
                start=enqueued_at,
                track=track,
                url=link.url,
                via=link.via,
                depth=link.depth,
                attempt=link.attempts + 1,
            )
            provenance = link.provenance
            if provenance is not None:
                if provenance.predicate:
                    deref_span.args["via_predicate"] = provenance.predicate
                if provenance.pattern:
                    deref_span.args["via_pattern"] = provenance.pattern
                if provenance.for_class:
                    deref_span.args["via_class"] = provenance.for_class
            tracer.add("queue-wait", enqueued_at, popped_at, parent=deref_span)
        origin = _origin_of(link.url)
        try:
            # Source selection (pop time: origin admission needs the
            # knowledge absorbed so far).  Before the origin-budget gate —
            # a pruned link costs neither a request nor budget.
            if selector is not None:
                decision = selector.check(link)
                if decision.action == "prune":
                    stats.note_pruned(decision.rule, origin)
                    if deref_span is not None:
                        deref_span.args["outcome"] = "pruned"
                        deref_span.args["pruned"] = decision.rule
                    return
                if decision.action == "defer":
                    # Parked with the selector: re-queued the moment a
                    # traversed document declares this link's origin, or
                    # counted as pruned at quiescence.
                    selector.defer(link)
                    if deref_span is not None:
                        deref_span.args["outcome"] = "deferred"
                        deref_span.args["pruned"] = decision.rule
                    return
            # Origin-budget gate — after span creation, so every refusal
            # leaves a ``dereference`` span with ``outcome: refused`` for
            # the trace/stats reconciliation to count.
            if budgets is not None:
                refusal = budgets.admit(origin, config.traversal)
                if refusal:
                    stats.note_refusal(refusal, origin)
                    if deref_span is not None:
                        deref_span.args["outcome"] = "refused"
                        deref_span.args["refused"] = refusal
                    return
            result = await dereferencer.dereference(
                link.url,
                parent_url=link.parent_url,
                trace_parent=deref_span,
                tracer=tracer,
                provenance=link.provenance,
            )
            if budgets is not None:
                budgets.charge_bytes(origin, result.bytes_fetched)
            if result.refused:
                # Per-document cap (client read abort or parse cap): a
                # deliberate, attributed, never-retried refusal — not a
                # network failure.
                stats.note_refusal(result.refused, origin)
                if deref_span is not None:
                    deref_span.args["outcome"] = "refused"
                    deref_span.args["refused"] = result.refused
                    deref_span.args["error"] = result.error
                return
            if not result.ok:
                stats.documents_failed += 1
                outcome = "failed"
                if result.retryable:
                    # Transient trouble that survived client-level retries
                    # (e.g. a tripped breaker): give the link another pass
                    # through the queue instead of discarding the document.
                    # ``replace`` keeps everything but the attempt count —
                    # provenance and therefore queue rank survive the retry.
                    if link.attempts < config.network.max_link_requeues:
                        queue.requeue(dataclasses.replace(link, attempts=link.attempts + 1))
                        stats.documents_retried += 1
                        outcome = "retried"
                    else:
                        stats.documents_abandoned += 1
                        outcome = "abandoned"
                if deref_span is not None:
                    deref_span.args["outcome"] = outcome
                    deref_span.args["error"] = result.error
                return
            if selector is not None:
                # Absorb declarations (hints, specs, admitted origins)
                # *before* the pipeline and link extraction see the
                # document, so its own links are judged with its knowledge
                # already in force; newly admitted origins release their
                # parked links back into the queue.
                for released in selector.absorb_document(result.url, result.triples):
                    queue.requeue(released)
            on_document(result.url, result.triples)
            stats.documents_fetched += 1
            if result.from_store:
                stats.documents_from_store += 1
            if deref_span is not None:
                deref_span.args["outcome"] = "ok"
                deref_span.args["triples"] = len(result.triples)
                if result.from_store:
                    deref_span.args["from_store"] = True

            if config.max_depth and link.depth >= config.max_depth:
                # Attribution only (``document=False``): the document itself
                # was taken, but its out-links are suppressed at the depth
                # budget — the completeness report says so without marking
                # the run incomplete.
                stats.note_refusal("depth", origin, document=False)
                return
            extract_started = clock() if tracer is not None else 0.0
            links_pushed = 0
            links_pruned = 0
            # Extractors may intern one LinkProvenance for many links; the
            # parent-depth-stamped variant is cached alongside.
            stamped: dict = {}
            for extractor in extractors:
                for url, provenance in extractor.discover(result.url, result.triples, context):
                    if not url.startswith(("http://", "https://")):
                        continue
                    if provenance is not None:
                        if provenance.parent_depth != link.depth:
                            cached = stamped.get(provenance)
                            if cached is None:
                                cached = stamped[provenance] = dataclasses.replace(
                                    provenance, parent_depth=link.depth
                                )
                            provenance = cached
                        via = provenance.extractor
                    else:
                        via = extractor.name
                    candidate = Link(
                        url=url,
                        parent_url=result.url,
                        depth=link.depth + 1,
                        via=via,
                        provenance=provenance,
                    )
                    # Push-time source selection, on static grounds only
                    # (spec rules, hint relevance): these grow strictly
                    # more restrictive, so pruning here can never drop a
                    # link a later document would have justified.  Checked
                    # for fresh URLs only — duplicates are the dedup's
                    # business, not a prune.
                    if selector is not None and not queue.has_seen(url):
                        decision = selector.check_static(candidate)
                        if decision.action == "prune":
                            links_pruned += 1
                            stats.note_pruned(decision.rule, _origin_of(url))
                            continue
                    if queue.push(candidate):
                        links_pushed += 1
                        stats.links_by_extractor[via] = (
                            stats.links_by_extractor.get(via, 0) + 1
                        )
            if tracer is not None:
                tracer.add(
                    "extract",
                    extract_started,
                    clock(),
                    parent=deref_span,
                    links=links_pushed,
                    **({"pruned": links_pruned} if links_pruned else {}),
                )
        finally:
            if deref_span is not None:
                tracer.end(deref_span)
