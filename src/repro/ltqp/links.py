"""Links and link queues.

The link queue is the central data structure of LTQP (Fig. 1): seed URLs
initialize it, the dereferencer drains it, and link extractors append to
it.  Queues deduplicate (a URL is traversed at most once per execution) and
record statistics for the queue-evolution analysis (bench E9, after [34]).
"""

from __future__ import annotations

import heapq
import inspect
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..net.message import split_url

__all__ = [
    "Link",
    "LinkProvenance",
    "LinkQueue",
    "FifoLinkQueue",
    "LifoLinkQueue",
    "PriorityLinkQueue",
    "FairLinkQueue",
    "QueueSample",
    "QueuePolicyContext",
    "EXTRACTOR_RANK",
    "provenance_rank",
    "QUEUE_POLICIES",
    "queue_factory_for",
    "build_queue",
]


@dataclass(frozen=True, slots=True)
class LinkProvenance:
    """Why a link exists: the evidence the extractor saw when it emitted it.

    ``extractor`` is the extractor kind (``"match"``, ``"type-index"``,
    ``"hint"``, …— also mirrored in ``Link.via``).  ``predicate`` is the
    IRI of the triple predicate that produced the link, when one did
    (``ldp:contains`` for container members, ``pim:storage`` for storage
    links, the matched data predicate for cMatch links).  ``pattern`` is a
    compact rendering of the query pattern the producing triple matched
    (cMatch only).  ``for_class`` is the ``solid:forClass`` IRI of the
    type-index registration (or hint container summary) that scoped the
    link.  ``parent_depth`` is the traversal depth of the document the
    link was found in.  Guided scoring, trace spans, and the waterfall all
    read from this instead of parsing ``via`` strings.
    """

    extractor: str
    predicate: Optional[str] = None
    pattern: Optional[str] = None
    for_class: Optional[str] = None
    parent_depth: int = 0

    def describe(self) -> str:
        """One-line human rendering for traces and the waterfall."""
        parts = [self.extractor]
        if self.predicate:
            parts.append(f"via {_local_name(self.predicate)}")
        if self.for_class:
            parts.append(f"for {_local_name(self.for_class)}")
        if self.pattern:
            parts.append(f"matching {self.pattern}")
        return " ".join(parts)


@dataclass(frozen=True, slots=True)
class Link:
    """A URL awaiting dereferencing.

    ``parent_url`` is the document whose content produced this link (None
    for seeds), ``depth`` its distance from the seeds, ``via`` the name of
    the extractor that found it, ``attempts`` how many times it has been
    re-queued after retryable dereference failures.  ``enqueued_at`` is
    stamped by the queue (its clock) on push/requeue — the tracer's
    ``queue-wait`` spans measure from it.  ``provenance`` carries the
    structured :class:`LinkProvenance` when the extractor supplied one;
    ``via`` stays as the coarse extractor name so existing span
    attributes and per-extractor counters keep their meaning.
    """

    url: str
    parent_url: Optional[str] = None
    depth: int = 0
    via: str = "seed"
    attempts: int = 0
    enqueued_at: float = 0.0
    provenance: Optional[LinkProvenance] = None

    @property
    def is_seed(self) -> bool:
        return self.parent_url is None


#: Shared extractor ranking (smaller pops first) used by the priority and
#: guided disciplines: structural metadata — hint/spec documents, storage
#: and type-index pointers — before plain data links, seeds first.  This
#: subsumes the old ``PriorityLinkQueue._DEFAULT_VIA_RANK``.
EXTRACTOR_RANK: dict[str, int] = {
    "seed": 0,
    "hint": 1,
    "storage": 2,
    "type-index": 3,
    "hint-container": 3,
    "ldp-container": 4,
    "ldp-scoped": 4,
    "match": 5,
    "all-iris": 6,
}

#: Rank for extractors absent from :data:`EXTRACTOR_RANK`.
UNKNOWN_EXTRACTOR_RANK = 9


def provenance_rank(link: Link) -> int:
    """The shared coarse rank of a link's producing extractor."""
    kind = link.provenance.extractor if link.provenance is not None else link.via
    return EXTRACTOR_RANK.get(kind, UNKNOWN_EXTRACTOR_RANK)


@dataclass(slots=True)
class QueuePolicyContext:
    """What a queue-policy factory may draw on when building its queue.

    Every registered policy receives one (satellite of the guided-traversal
    refactor: factories take a context instead of being zero-arg).  The
    basic disciplines ignore it; the guided queue reads the selector and
    cardinality hints for scoring.  Fields are deliberately loose-typed so
    the registry keeps no import edges into the guided package.
    """

    #: The execution's :class:`~repro.ltqp.engine.TraversalPolicy` (or None).
    traversal: Optional[object] = None
    #: The execution's :class:`~repro.ltqp.guided.SourceSelector` (or None).
    selector: Optional[object] = None
    #: The execution's :class:`~repro.ltqp.guided.CardinalityHints` (or None).
    hints: Optional[object] = None
    #: The :class:`~repro.ltqp.extractors.QueryContext` of the query (or None).
    query: Optional[object] = None


@dataclass(slots=True)
class QueueSample:
    """A point-in-time snapshot of queue state."""

    timestamp: float
    queue_length: int
    pushed_total: int
    popped_total: int


class LinkQueue:
    """Base class: a deduplicating queue of :class:`Link` items."""

    def __init__(self) -> None:
        self._seen: set[str] = set()
        self._pushed = 0
        self._popped = 0
        self._requeued = 0
        self._samples: list[QueueSample] = []
        #: Timestamp source for samples and ``Link.enqueued_at`` stamps;
        #: the engine swaps in the tracer's clock on traced executions.
        self.clock: Callable[[], float] = time.monotonic
        #: Optional per-sample callback (queue-depth gauge wiring).
        self.observer: Optional[Callable[[QueueSample], None]] = None

    # -- subclass interface ---------------------------------------------------

    def _push_impl(self, link: Link) -> None:
        raise NotImplementedError

    def _pop_impl(self) -> Link:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- public API -------------------------------------------------------------

    def push(self, link: Link) -> bool:
        """Enqueue unless the URL was already seen; returns True if enqueued."""
        url = _strip_fragment(link.url)
        if url in self._seen:
            return False
        self._seen.add(url)
        self._push_impl(replace(link, url=url, enqueued_at=self.clock()))
        self._pushed += 1
        self._sample()
        return True

    def requeue(self, link: Link) -> bool:
        """Re-admit an already-seen URL for another dereference attempt.

        Bypasses deduplication — the fault-tolerant engine uses this to
        give retryable failures (e.g. a tripped circuit breaker) another
        chance once the queue cycles back around, instead of silently
        discarding the document.  Requeues are counted separately from
        first-time pushes so link statistics stay comparable.  The link is
        re-stamped but otherwise kept whole — provenance, depth, and
        therefore queue rank survive the retry (a link must not lose its
        priority for having hit a flaky server).
        """
        url = _strip_fragment(link.url)
        self._seen.add(url)
        self._push_impl(replace(link, url=url, enqueued_at=self.clock()))
        self._requeued += 1
        self._sample()
        return True

    def pop(self) -> Link:
        """Dequeue the next link; raises IndexError when empty."""
        link = self._pop_impl()
        self._popped += 1
        self._sample()
        return link

    def has_seen(self, url: str) -> bool:
        return _strip_fragment(url) in self._seen

    @property
    def empty(self) -> bool:
        return len(self) == 0

    @property
    def pushed_total(self) -> int:
        return self._pushed

    @property
    def popped_total(self) -> int:
        return self._popped

    @property
    def requeued_total(self) -> int:
        return self._requeued

    @property
    def samples(self) -> list[QueueSample]:
        """Queue-length samples recorded at every push/pop."""
        return list(self._samples)

    def _sample(self) -> None:
        sample = QueueSample(
            timestamp=self.clock(),
            queue_length=len(self),
            pushed_total=self._pushed,
            popped_total=self._popped,
        )
        self._samples.append(sample)
        if self.observer is not None:
            self.observer(sample)


class FifoLinkQueue(LinkQueue):
    """Breadth-first traversal order — the default in the paper's engine."""

    def __init__(self) -> None:
        super().__init__()
        self._items: list[Link] = []
        self._head = 0

    def _push_impl(self, link: Link) -> None:
        self._items.append(link)

    def _pop_impl(self) -> Link:
        if self._head >= len(self._items):
            raise IndexError("pop from empty link queue")
        link = self._items[self._head]
        self._head += 1
        # Compact occasionally so memory stays bounded.
        if self._head > 1024 and self._head * 2 > len(self._items):
            self._items = self._items[self._head:]
            self._head = 0
        return link

    def __len__(self) -> int:
        return len(self._items) - self._head


class LifoLinkQueue(LinkQueue):
    """Depth-first traversal order.

    Dives into each pod before finishing breadth — one of the queue
    disciplines whose effect on result arrival [34] studies.  Termination
    and answers are unaffected; arrival order and queue shape change.
    """

    def __init__(self) -> None:
        super().__init__()
        self._items: list[Link] = []

    def _push_impl(self, link: Link) -> None:
        self._items.append(link)

    def _pop_impl(self) -> Link:
        if not self._items:
            raise IndexError("pop from empty link queue")
        return self._items.pop()

    def __len__(self) -> int:
        return len(self._items)


class PriorityLinkQueue(LinkQueue):
    """Priority-ordered queue (an enhancement direction the paper cites [34]).

    ``priority`` maps a link to a sortable key — smaller pops first.  The
    default prioritizes shallow links, then Solid-metadata extractors
    (profile/type-index links) over plain data links, so structural
    documents are read early.  The extractor ordering is the shared
    :data:`EXTRACTOR_RANK` (also used by the guided discipline).
    """

    def __init__(self, priority: Optional[Callable[[Link], tuple]] = None) -> None:
        super().__init__()
        self._priority = priority if priority is not None else self._default_priority
        self._heap: list[tuple[tuple, int, Link]] = []
        self._counter = 0

    def _default_priority(self, link: Link) -> tuple:
        return (link.depth, provenance_rank(link))

    def _push_impl(self, link: Link) -> None:
        self._counter += 1
        heapq.heappush(self._heap, (self._priority(link), self._counter, link))

    def _pop_impl(self) -> Link:
        if not self._heap:
            raise IndexError("pop from empty link queue")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class FairLinkQueue(LinkQueue):
    """Round-robin across origins — the anti-starvation discipline.

    Each origin gets its own FIFO lane; ``pop`` serves one link from the
    origin at the head of a rotation, then moves that origin to the back.
    Within a round, every origin with pending links is served exactly
    once, so an origin holding 1000 links cannot delay another origin's
    first dereference by more than one round.  This is the queue-side
    half of the adversarial hardening (DESIGN.md §4e): a hostile pod can
    fill its own lane, never the queue.

    Newly seen origins join the *back* of the rotation (they wait at most
    one full round), and an origin whose lane drains leaves the rotation
    until it has links again.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lanes: dict[str, deque[Link]] = {}
        self._rotation: deque[str] = deque()
        self._size = 0

    @staticmethod
    def _lane_key(url: str) -> str:
        try:
            origin, _, _ = split_url(url)
        except ValueError:
            return ""  # unparseable URLs share a lane; dereference rejects them
        return origin

    def _push_impl(self, link: Link) -> None:
        origin = self._lane_key(link.url)
        lane = self._lanes.get(origin)
        if lane is None:
            lane = self._lanes[origin] = deque()
            self._rotation.append(origin)
        lane.append(link)
        self._size += 1

    def _pop_impl(self) -> Link:
        while self._rotation:
            origin = self._rotation[0]
            lane = self._lanes.get(origin)
            if not lane:
                # Lane drained since its last turn: retire it.  A later
                # push for this origin re-creates lane and rotation entry
                # together, so the two structures never disagree.
                self._rotation.popleft()
                self._lanes.pop(origin, None)
                continue
            link = lane.popleft()
            self._rotation.rotate(-1)
            self._size -= 1
            return link
        raise IndexError("pop from empty link queue")

    def __len__(self) -> int:
        return self._size


def _make_guided(context: Optional[QueuePolicyContext] = None) -> LinkQueue:
    # Imported lazily: the guided package imports this module for Link and
    # the ranking table, so a top-level import here would be circular.
    from .guided import GuidedLinkQueue

    return GuidedLinkQueue(context)


#: Named queue disciplines selectable via ``TraversalPolicy.queue_policy``
#: (and the CLI ``--queue-policy`` flag).  Every factory takes an optional
#: :class:`QueuePolicyContext` — one construction path for all disciplines;
#: the basic ones simply ignore it.
QUEUE_POLICIES: dict[str, Callable[..., LinkQueue]] = {
    "fifo": lambda context=None: FifoLinkQueue(),
    "lifo": lambda context=None: LifoLinkQueue(),
    "priority": lambda context=None: PriorityLinkQueue(),
    "fair": lambda context=None: FairLinkQueue(),
    "guided": _make_guided,
}


def queue_factory_for(policy: str) -> Callable[..., LinkQueue]:
    """Resolve a queue-policy name to its queue factory."""
    try:
        return QUEUE_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown queue policy {policy!r} (choose from {sorted(QUEUE_POLICIES)})"
        ) from None


def build_queue(
    factory: Callable[..., LinkQueue], context: Optional[QueuePolicyContext] = None
) -> LinkQueue:
    """Invoke a queue factory with the policy context.

    The context is only passed to factories that declare a ``context``
    parameter (or ``**kwargs``): legacy injected factories — tests and
    embedders that pass ``queue_factory=SomeQueue`` — predate the context
    and may happily absorb a stray positional into an unrelated parameter
    (``PriorityLinkQueue(priority=...)``), so a try/except TypeError probe
    would mis-construct them silently instead of falling back.
    """
    if context is not None and _accepts_context(factory):
        return factory(context)
    return factory()


def _accepts_context(factory: Callable[..., LinkQueue]) -> bool:
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return False
    if "context" in parameters:
        return True
    return any(
        param.kind is inspect.Parameter.VAR_KEYWORD for param in parameters.values()
    )


def _strip_fragment(url: str) -> str:
    return url.split("#", 1)[0]


def _local_name(iri: str) -> str:
    """The part of an IRI after the last ``#`` or ``/`` — for display only."""
    for sep in ("#", "/"):
        if sep in iri:
            tail = iri.rsplit(sep, 1)[1]
            if tail:
                return tail
    return iri
