"""The dereferencer: URL → RDF triples (Fig. 1).

Fetches a document over the (simulated) Web, negotiates an RDF
serialization, and parses it with the document URL as base IRI.  In
lenient mode — the paper's CLI runs ``--lenient`` against the open Web —
*every* failure class follows the same contract: HTTP errors, redirect
anomalies (loops, missing or malformed ``Location`` headers), invalid
URLs, unsupported content types, and parse failures all yield an empty
:class:`DereferenceResult` carrying the error text; with
``lenient=False`` they all raise :class:`DereferenceError` instead.

Failures are additionally classified as *retryable* (transient transport
or server trouble — worth re-queueing through the link queue) or
permanent (the document simply is not there / is not RDF).

A dereferencer may be shared across many query executions (the
:class:`~repro.service.QueryService` injects one long-lived instance into
its engine): pass ``document_store`` (see
:class:`~repro.service.docstore.DocumentStore`) and successfully parsed
documents are remembered keyed by their HTTP validator (ETag, or a body
hash when the server sends none) — a repeat dereference whose response
carries the same validator skips the parse entirely and returns the
stored triples, with ``from_store`` set on the result.  Because the
validator comes from the response, the existing HTTP-cache revalidation
machinery is also the store's invalidation: a changed document gets a new
ETag, misses the store, and is re-parsed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import urljoin

from ..net.client import HttpClient
from ..net.message import Response
from ..net.resilience import PERMANENT_ERROR_MARKERS, RETRYABLE_STATUSES
from ..rdf.ntriples import NTriplesParseError, parse_ntriples
from ..rdf.triples import Triple
from ..rdf.turtle import TurtleParseError, parse_turtle

__all__ = ["DereferenceError", "DereferenceResult", "Dereferencer"]


class DereferenceError(RuntimeError):
    """Raised in strict (non-lenient) mode when dereferencing fails."""

    def __init__(self, url: str, message: str) -> None:
        super().__init__(f"dereference failed for {url}: {message}")
        self.url = url


@dataclass(slots=True)
class DereferenceResult:
    """Outcome of dereferencing one URL."""

    url: str
    status: int
    triples: list[Triple] = field(default_factory=list)
    error: str = ""
    #: Transient failure — retrying (or re-queueing the link) may succeed.
    retryable: bool = False
    #: Parse was skipped: the triples came from the parsed-document store.
    from_store: bool = False
    #: Budget kind that refused this document (``"doc-bytes"`` when the
    #: client aborted the transfer at its read cap, ``"parse-bytes"``
    #: when the body arrived but exceeded the parse cap).  Empty for
    #: ordinary successes and failures.  Refusals are never retryable:
    #: the document will be over the cap on every retry too.
    refused: str = ""
    #: Bytes actually transferred for this document (at most the client
    #: read cap when the transfer was aborted) — what per-origin byte
    #: budgets are charged with.
    bytes_fetched: int = 0
    #: When the document store held a *different* validator for this URL,
    #: the minimal signed delta between the stale parse and this one
    #: (:class:`~repro.service.docstore.DocumentDiff`).  ``None`` for
    #: first fetches, unchanged validators, and store-less dereferencers.
    diff: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.error and 200 <= self.status < 300


class Dereferencer:
    """Fetch-and-parse with a uniform lenient-error contract."""

    def __init__(
        self,
        client: HttpClient,
        lenient: bool = True,
        extra_headers: Optional[dict[str, str]] = None,
        max_redirects: int = 5,
        tracer=None,
        document_store=None,
        max_parse_bytes: int = 0,
    ) -> None:
        self._client = client
        self._lenient = lenient
        self._extra_headers = dict(extra_headers or {})
        self._max_redirects = max_redirects
        self._document_counter = 0
        #: Stable per-URL blank-node namespaces: re-parsing a document
        #: reuses its first parse's prefix, so identical content yields
        #: *identical* blank-node labels and a live re-diff of an edited
        #: document stays minimal instead of churning every bnode triple.
        #: Distinct documents still get distinct prefixes (no collisions).
        self._document_ids: dict[str, int] = {}
        #: Global parse-size cap: a body larger than this is refused
        #: (kind ``"parse-bytes"``) *before* decoding or tokenizing, so a
        #: hostile document cannot buy CPU with bytes.  ``0`` disables.
        #: Public so an engine adopting a shared dereferencer can install
        #: its execution's cap.
        self.max_parse_bytes = max_parse_bytes
        #: Optional :class:`~repro.obs.trace.Tracer`; when set, each
        #: dereference records ``parse`` spans under ``trace_parent``.
        #: Per-call ``tracer=`` arguments override it, so one shared
        #: dereferencer can serve differently traced executions.
        self.tracer = tracer
        #: Optional :class:`~repro.service.docstore.DocumentStore` — the
        #: cross-query parsed-document cache.
        self.document_store = document_store

    @property
    def client(self) -> HttpClient:
        return self._client

    async def dereference(
        self,
        url: str,
        parent_url: Optional[str] = None,
        trace_parent=None,
        tracer=None,
        revalidate: bool = False,
        provenance=None,
    ) -> DereferenceResult:
        """Fetch ``url`` (fragment stripped), following redirects, and
        parse the RDF body.  The *final* URL becomes the base IRI and the
        document's provenance — e.g. a slash-less container URL 301s to
        the container, whose members then resolve correctly.
        ``trace_parent`` nests this dereference's fetch/parse spans;
        ``tracer`` overrides the instance tracer for this call.
        ``revalidate=True`` forces a conditional request even while the
        HTTP cache still considers its copy fresh — the live-refresh path,
        where the point is to observe upstream change *now*.
        ``provenance`` (a :class:`~repro.ltqp.links.LinkProvenance`)
        annotates this document's parse span with why the link existed."""
        if tracer is None:
            tracer = self.tracer
        clean_url = url.split("#", 1)[0]
        for _ in range(self._max_redirects + 1):
            try:
                response = await self._client.fetch(
                    clean_url,
                    headers=self._extra_headers,
                    parent_url=parent_url,
                    trace_parent=trace_parent,
                    revalidate=revalidate,
                )
            except ValueError as error:
                # An unsupported scheme or malformed URL is the same class
                # of lenient failure as a redirect loop — not a crash.
                return self._failure(clean_url, 0, f"invalid URL: {error}")
            if response.status in (301, 302, 303, 307, 308):
                location = response.header("location")
                if not location:
                    return self._failure(clean_url, response.status, "redirect without location")
                parent_url = clean_url
                # Relative Location headers are legal (RFC 7231 §7.1.2).
                clean_url = urljoin(clean_url, location).split("#", 1)[0]
                continue
            break
        else:
            return self._failure(clean_url, 0, "too many redirects")
        if response.status == 0:
            if response.header("x-error") == "body-too-large":
                # The client aborted the transfer at its read cap.  This
                # is a policy refusal, not a network failure — and it is
                # permanent: the body is over the cap on every retry.
                result = self._failure(
                    clean_url, 0, "refused: response body over read cap"
                )
                result.refused = "doc-bytes"
                try:
                    result.bytes_fetched = min(
                        int(response.header("x-refused-bytes") or 0),
                        self._client.policy.max_response_bytes or 0,
                    )
                except ValueError:
                    result.bytes_fetched = 0
                return result
            return self._failure(
                clean_url, 0, "connection failed", retryable=_response_retryable(response)
            )
        if not response.ok:
            return self._failure(
                clean_url,
                response.status,
                f"HTTP {response.status}",
                retryable=_response_retryable(response),
            )
        return self._parse(
            clean_url, response, trace_parent=trace_parent, tracer=tracer, provenance=provenance
        )

    def _parse(
        self, url: str, response: Response, trace_parent=None, tracer=None, provenance=None
    ) -> DereferenceResult:
        content_type = response.content_type
        body_bytes = len(response.body)
        if self.max_parse_bytes and body_bytes > self.max_parse_bytes:
            # Checked on the raw byte length before any decode/tokenize
            # work — an oversized document costs O(1) CPU to refuse.
            result = self._failure(
                url,
                response.status,
                f"refused: document of {body_bytes} bytes over parse cap",
            )
            result.refused = "parse-bytes"
            result.bytes_fetched = body_bytes
            return result
        store = self.document_store
        stale = None
        if store is not None:
            validator = store.validator_for(response)
            # Capture the outgoing parse *before* lookup deletes it on a
            # validator mismatch — it is the diff base for live refreshes.
            stale = store.peek(url)
            stored = store.lookup(url, validator)
            if stored is not None:
                return DereferenceResult(
                    url=url,
                    status=response.status,
                    triples=list(stored.triples),
                    from_store=True,
                    bytes_fetched=body_bytes,
                )
        doc_id = self._document_ids.get(url)
        if doc_id is None:
            self._document_counter += 1
            doc_id = self._document_counter
            self._document_ids[url] = doc_id
        bnode_prefix = f"d{doc_id}_"
        parse_started = tracer.clock() if tracer is not None else 0.0
        try:
            if content_type in ("application/n-triples", "application/n-quads"):
                triples = list(parse_ntriples(response.text))
            elif content_type == "application/trig":
                from ..rdf.trig import parse_trig

                # Named graphs inside a fetched document flatten into the
                # document's triples (the source keys provenance by URL).
                triples = [
                    quad.triple
                    for quad in parse_trig(
                        response.text, base_iri=url, bnode_prefix=bnode_prefix
                    )
                ]
            elif content_type in ("text/turtle", "", "text/plain"):
                triples = parse_turtle(
                    response.text, base_iri=url, bnode_prefix=bnode_prefix
                )
            else:
                return self._failure(url, response.status, f"unsupported content type {content_type!r}")
        except (TurtleParseError, NTriplesParseError, ValueError) as error:
            if tracer is not None:
                tracer.add(
                    "parse",
                    parse_started,
                    tracer.clock(),
                    parent=trace_parent,
                    url=url,
                    format=content_type,
                    error=f"parse error: {error}",
                )
            return self._failure(url, response.status, f"parse error: {error}")
        if tracer is not None:
            tracer.add(
                "parse",
                parse_started,
                tracer.clock(),
                parent=trace_parent,
                url=url,
                format=content_type,
                triples=len(triples),
                **(
                    {"discovered_via": provenance.describe()}
                    if provenance is not None
                    else {}
                ),
            )
        diff = None
        if store is not None:
            store.put(url, validator, triples)
            if stale is not None and stale.validator != validator:
                diff_started = tracer.clock() if tracer is not None else 0.0
                diff = store.diff(stale, validator, triples)
                if tracer is not None:
                    tracer.add(
                        "diff",
                        diff_started,
                        tracer.clock(),
                        parent=trace_parent,
                        url=url,
                        added=len(diff.added),
                        removed=len(diff.removed),
                        unchanged=diff.unchanged,
                    )
        return DereferenceResult(
            url=url,
            status=response.status,
            triples=triples,
            bytes_fetched=body_bytes,
            diff=diff,
        )

    def _failure(
        self, url: str, status: int, message: str, retryable: bool = False
    ) -> DereferenceResult:
        if not self._lenient:
            raise DereferenceError(url, message)
        return DereferenceResult(url=url, status=status, error=message, retryable=retryable)


def _response_retryable(response: Response) -> bool:
    if response.status not in RETRYABLE_STATUSES:
        return False
    return response.header("x-error") not in PERMANENT_ERROR_MARKERS
