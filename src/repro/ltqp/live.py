"""Standing (live) query executions: the paper's demo, kept *current*.

The demo scenario ends where real Solid apps begin: the result set a
traversal produced is stale the moment a pod changes.  A
:class:`LiveQuery` runs one ordinary link-traversal execution to
quiescence — compiled ``live`` so every operator retains signed
maintenance state — and then keeps the result multiset current:

* :meth:`refresh` re-dereferences one document with ``revalidate=True``
  (a conditional request that bypasses HTTP-cache freshness), diffs the
  new parse against the document's named graph in the growing source,
  and feeds the resulting *signed* delta through
  :meth:`~repro.ltqp.pipeline.Pipeline.poll_changes`;
* :meth:`notify` buffers change notifications (e.g. from a
  :class:`~repro.solid.server.SolidServer` change listener) that
  :meth:`drain` then turns into refreshes;
* :meth:`subscribe` hands out event queues that replay the full change
  history (initial results as additions, then every maintenance event)
  — replaying a subscription therefore reconstructs the exact current
  result multiset.

Maintenance cost is O(changed triples × affected operators), not
O(re-execution): the whole point of the signed-delta machinery.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Iterable, Optional, Union as TypingUnion

from ..sparql.algebra import Query
from ..sparql.bindings import Binding
from .dereference import Dereferencer
from .engine import LinkTraversalEngine, QueryExecution, TraversalPolicy

__all__ = ["ResultChange", "LiveQuery"]

#: HTTP statuses meaning "the document is gone" — a refresh treats them
#: as the document becoming empty rather than as a failed refresh.
_GONE_STATUSES = frozenset({404, 410})


@dataclass(slots=True, frozen=True)
class ResultChange:
    """One signed adjustment to a standing query's result multiset.

    ``delta`` is a non-zero signed multiplicity: ``+n`` adds *n*
    occurrences of ``binding``, ``-n`` removes *n*.  ``seq`` orders the
    event stream (initial results included); ``url`` names the refreshed
    document that caused the change (empty for initial results).
    """

    seq: int
    binding: Binding
    delta: int
    url: str = ""


class LiveQuery:
    """One standing query: an execution that stays open past quiescence.

    Usage::

        live = LiveQuery(engine, "SELECT ...", seeds=[...])
        initial = await live.start()          # list[Binding], traversal done
        events = await live.refresh(url)      # re-diff one document
        queue = live.subscribe()              # replayed + future events
        live.close()

    SELECT, ASK, and DESCRIBE are supported.  CONSTRUCT is rejected:
    its output dedupes constructed triples additively across the whole
    execution, which has no meaningful retraction semantics.
    """

    def __init__(
        self,
        engine: LinkTraversalEngine,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
        tracer=None,
        metrics=None,
        traversal: Optional[TraversalPolicy] = None,
    ) -> None:
        parsed = engine._parse(query)
        if parsed.form == "CONSTRUCT":
            raise ValueError(
                "CONSTRUCT queries cannot be standing queries: constructed-"
                "triple dedup is additive-only and cannot retract"
            )
        self._engine = engine
        self._tracer = tracer
        self._execution: QueryExecution = engine.query(
            parsed,
            seeds=seeds,
            tracer=tracer,
            metrics=metrics,
            traversal=traversal,
            live=True,
        )
        self._pipeline = None
        self._source = None
        self._dereferencer: Optional[Dereferencer] = None
        self._seq = 0
        self._started = False
        self._closed = False
        #: Full ordered event history (initial results first) — the
        #: replay source for late subscribers.
        self.events: list[ResultChange] = []
        self._subscribers: list[asyncio.Queue] = []
        self._listeners: list = []
        #: Documents flagged by :meth:`notify`, awaiting :meth:`drain`.
        self._pending: dict[str, None] = {}
        #: Refreshes whose dereference failed (kept for observability).
        self.failed_refreshes: dict[str, str] = {}

    # -- live views ----------------------------------------------------

    @property
    def execution(self) -> QueryExecution:
        return self._execution

    @property
    def query(self) -> Query:
        return self._execution.query

    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    def current_results(self) -> dict[Binding, int]:
        """The maintained result multiset (replay of the event history)."""
        multiset: dict[Binding, int] = {}
        for event in self.events:
            total = multiset.get(event.binding, 0) + event.delta
            if total:
                multiset[event.binding] = total
            else:
                multiset.pop(event.binding, None)
        return multiset

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> list[Binding]:
        """Run the underlying execution to quiescence; returns the
        initial result bindings (also published as ``+1`` events)."""
        if self._started:
            raise RuntimeError("LiveQuery.start() called twice")
        self._started = True
        await self._execution.gather()
        result = self._execution.result
        if result.pipeline is None or result.source is None:
            raise RuntimeError("live execution did not retain its pipeline")
        self._pipeline = result.pipeline
        self._source = result.source
        # Reuse the execution's own dereferencer: its per-URL blank-node
        # namespaces keep refresh re-parses label-stable against the
        # traversal's parses, so diffs stay minimal.
        self._dereferencer = result.dereferencer
        if self._dereferencer is None:
            self._dereferencer = Dereferencer(
                self._engine.client,
                lenient=True,
                extra_headers=self._engine._auth_headers,
                tracer=self._tracer,
            )
        bindings = self._execution.bindings
        self._publish([(binding, 1) for binding in bindings], url="")
        return bindings

    def close(self) -> None:
        """End the standing query: subscribers see end-of-stream."""
        if self._closed:
            return
        self._closed = True
        for queue in self._subscribers:
            queue.put_nowait(None)
        self._subscribers.clear()
        for listener in self._listeners:
            listener(None)
        self._listeners.clear()

    # -- change intake -------------------------------------------------

    def notify(self, url: str) -> None:
        """Flag ``url`` as changed; the next :meth:`drain` refreshes it."""
        if not self._closed:
            self._pending[url.split("#", 1)[0]] = None

    @property
    def pending(self) -> list[str]:
        return list(self._pending)

    async def drain(self) -> list[ResultChange]:
        """Refresh every notified document, in notification order."""
        events: list[ResultChange] = []
        while self._pending:
            url = next(iter(self._pending))
            del self._pending[url]
            events.extend(await self.refresh(url))
        return events

    async def refresh(self, url: str) -> list[ResultChange]:
        """Re-dereference one document and maintain the result multiset.

        Forces a conditional request (``revalidate=True``): an unchanged
        document costs a 304 and produces no events; a changed one is
        re-parsed, diffed against its named graph in the growing source,
        and the signed delta is pushed through the pipeline.  A document
        that has gone away (404/410) is treated as now-empty; any other
        failure leaves the standing results untouched.
        """
        if not self._started:
            raise RuntimeError("LiveQuery.refresh() before start()")
        if self._closed:
            return []
        url = url.split("#", 1)[0]
        tracer = self._tracer
        refresh_started = tracer.clock() if tracer is not None else 0.0
        span = (
            tracer.begin("refresh", start=refresh_started, url=url)
            if tracer is not None
            else None
        )
        try:
            result = await self._dereferencer.dereference(
                url, trace_parent=span, tracer=tracer, revalidate=True
            )
            if result.ok:
                triples = result.triples
            elif result.status in _GONE_STATUSES:
                triples = []
            else:
                self.failed_refreshes[url] = result.error or f"HTTP {result.status}"
                if span is not None:
                    span.args["outcome"] = "failed"
                    span.args["error"] = result.error
                return []
            added, removed = self._source.update_document(url, triples)
            if span is not None:
                span.args["added"] = len(added)
                span.args["removed"] = len(removed)
            if not added and not removed:
                if span is not None:
                    span.args["outcome"] = "unchanged"
                return []
            if span is not None:
                # Maintenance batches nest under *this* refresh — the
                # original query span closed at quiescence, and a span
                # may not outlive its parent.
                self._pipeline._trace_parent = span
            changes = self._pipeline.poll_changes(self._source.dataset)
            if span is not None:
                span.args["outcome"] = "changed"
                span.args["changes"] = len(changes)
            return self._publish(changes, url=url)
        finally:
            if span is not None:
                tracer.end(span)

    # -- subscriptions -------------------------------------------------

    def subscribe(self) -> asyncio.Queue:
        """An event queue carrying this query's full change history.

        The queue is pre-loaded with every past :class:`ResultChange`
        (initial results included) and then receives each future event;
        ``None`` marks end-of-stream after :meth:`close`.
        """
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        if self._closed:
            queue.put_nowait(None)
        else:
            self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    def add_listener(self, callback) -> None:
        """Register a *synchronous* event-batch callback.

        Called inline from :meth:`_publish` with each new batch of
        :class:`ResultChange` events, and once with ``None`` on
        :meth:`close`.  Unlike queues, listeners observe events in strict
        publish order relative to the caller — the sharded worker uses
        this to put events on the wire before acking the edit that
        caused them.
        """
        self._listeners.append(callback)

    def _publish(
        self, changes: list[tuple[Binding, int]], url: str
    ) -> list[ResultChange]:
        events: list[ResultChange] = []
        for binding, delta in changes:
            event = ResultChange(seq=self._seq, binding=binding, delta=delta, url=url)
            self._seq += 1
            events.append(event)
        if events:
            self.events.extend(events)
            for queue in self._subscribers:
                for event in events:
                    queue.put_nowait(event)
            for listener in self._listeners:
                listener(events)
        return events
