"""Incremental pipelined query operators.

The paper's engine evaluates queries *while* traversal is still adding
triples: "the actual query processing happens in parallel over the
continuously growing internal triple source", with "pipelined
implementations of all monotonic SPARQL operators".  This module provides
exactly that: an operator tree compiled from the algebra where every node
consumes *deltas* (batches of newly added quads) and emits only the *new*
solutions they enable.

* :class:`ScanNode` — matches delta quads against a triple pattern.
* :class:`PathScanNode` — property paths; re-evaluates the path over the
  grown snapshot per delta and emits unseen endpoint pairs (paths are
  monotonic, so previously emitted pairs stay valid).
* :class:`JoinNode` — symmetric hash join: each side keeps a table of all
  bindings seen; new left bindings probe the right table and vice versa,
  so late-arriving data joins with everything that came before without
  restarting the pipeline.
* Union / Filter / Extend / Project / Distinct / Limit — straightforward
  streaming forms.

Delta dispatch is *predicate-routed*: at compile time every scan registers
its concrete predicate with the pipeline's :class:`DeltaRouter`; each
``advance`` buckets the incoming quads once by predicate
(:class:`DeltaBatch`) and every scan then reads only its own bucket —
wildcard-predicate scans get the full delta.  A document whose predicates
touch none of a scan's patterns costs that scan nothing, instead of a full
broadcast re-match per scan per delta.

Non-monotonic operators (OPTIONAL, MINUS, ORDER BY, GROUP BY, OFFSET,
EXISTS filters) cannot stream soundly; :func:`compile_pipeline` raises
:class:`NotStreamable` and the engine falls back to snapshot evaluation at
traversal quiescence.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union as TypingUnion

from ..rdf.dataset import Dataset
from ..rdf.terms import NamedNode, Term, Variable
from ..rdf.triples import Quad, TriplePattern
from ..sparql.algebra import (
    BGP,
    Distinct,
    Extend,
    Filter,
    GraphOp,
    Join,
    Operator,
    PathPattern,
    Project,
    Reduced,
    Slice,
    SubSelect,
    Union,
    ValuesOp,
    is_monotonic,
)
from ..sparql.bindings import EMPTY_BINDING, Binding
from ..sparql.expr import ExpressionError, ExpressionEvaluator
from ..sparql.paths import evaluate_path, path_predicates
from ..sparql.planner import plan_bgp_order

__all__ = [
    "NotStreamable",
    "IncrementalNode",
    "DeltaRouter",
    "DeltaBatch",
    "Pipeline",
    "compile_pipeline",
    "total_work",
]


class NotStreamable(ValueError):
    """The operator tree contains non-monotonic operators."""


_EMPTY_QUADS: tuple[Quad, ...] = ()


class DeltaBatch:
    """One advance's worth of quads, bucketed by predicate at most once.

    Scans with a concrete predicate read only their bucket via
    :meth:`for_predicate`; wildcard scans iterate :attr:`quads` directly.
    Buckets are built lazily (a delta that reaches no predicate-routed scan
    never pays for bucketing) and cover only the predicates the router has
    registered — everything else in the delta is noise to this pipeline.
    Iterable and sized, so code written against ``Sequence[Quad]`` deltas
    keeps working.
    """

    __slots__ = ("quads", "_routed", "_buckets")

    def __init__(
        self,
        quads: Sequence[Quad],
        routed_predicates: Optional[frozenset] = None,
    ) -> None:
        self.quads = quads
        self._routed = routed_predicates
        self._buckets: Optional[dict] = None

    def __len__(self) -> int:
        return len(self.quads)

    def __iter__(self) -> Iterator[Quad]:
        return iter(self.quads)

    def __bool__(self) -> bool:
        return bool(self.quads)

    def for_predicate(self, predicate: Term) -> Sequence[Quad]:
        """The delta quads carrying ``predicate`` (empty when none do)."""
        buckets = self._buckets
        if buckets is None:
            buckets = self._build_buckets()
        return buckets.get(predicate, _EMPTY_QUADS)

    def _build_buckets(self) -> dict:
        routed = self._routed
        buckets: dict = {}
        for quad in self.quads:
            predicate = quad.predicate
            if routed is not None and predicate not in routed:
                continue
            bucket = buckets.get(predicate)
            if bucket is None:
                buckets[predicate] = bucket = []
            bucket.append(quad)
        self._buckets = buckets
        return buckets


class DeltaRouter:
    """Compile-time registry of the (predicate, graph) keys scans listen on.

    The router lives at the :class:`Pipeline` root.  Scans register
    themselves while the pipeline is built (and re-register automatically
    when the adaptive engine recompiles, because recompiling constructs a
    fresh ``Pipeline`` and therefore a fresh router).  Per advance it wraps
    the raw delta in a :class:`DeltaBatch` restricted to the registered
    predicates.
    """

    __slots__ = ("_predicates", "_wildcard_listeners", "_frozen")

    def __init__(self) -> None:
        self._predicates: set = set()
        self._wildcard_listeners = 0
        self._frozen: Optional[frozenset] = None

    def register(self, predicate: Optional[Term]) -> None:
        """Declare a listener; ``None`` means wildcard (gets every quad)."""
        if predicate is None:
            self._wildcard_listeners += 1
        else:
            self._predicates.add(predicate)
        self._frozen = None

    @property
    def predicates(self) -> frozenset:
        """The concrete predicates any scan listens on."""
        if self._frozen is None:
            self._frozen = frozenset(self._predicates)
        return self._frozen

    @property
    def wildcard_listeners(self) -> int:
        return self._wildcard_listeners

    def batch(self, quads: Sequence[Quad]) -> DeltaBatch:
        """Wrap one advance's delta for routed dispatch."""
        return DeltaBatch(quads, self.predicates)


Delta = TypingUnion[Sequence[Quad], DeltaBatch]


class IncrementalNode:
    """Base class: push-based delta processing.

    ``certain_variables`` are bound in every emitted solution — the safe
    hash-key basis for joins above this node.
    """

    def __init__(self, certain_variables: frozenset[Variable]) -> None:
        self.certain_variables = certain_variables
        self.produced_total = 0

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        """Consume newly added quads; return newly derivable solutions."""
        raise NotImplementedError

    def register(self, router: DeltaRouter) -> None:
        """Declare this subtree's delta interests to the router."""
        for child in self.children():
            child.register(router)

    def _count(self, produced: list[Binding]) -> list[Binding]:
        self.produced_total += len(produced)
        return produced

    def children(self) -> tuple["IncrementalNode", ...]:
        return ()


class ScanNode(IncrementalNode):
    """A triple-pattern leaf fed directly by the delta stream.

    The pattern is decomposed at construction into per-slot checks: concrete
    terms to compare (``_s``/``_p``/``_o``), variable slots to bind, and any
    repeated-variable position pairs — no per-quad ``zip``/``isinstance``
    walk over the pattern.
    """

    _GETTERS = (
        lambda quad: quad.subject,
        lambda quad: quad.predicate,
        lambda quad: quad.object,
    )

    def __init__(self, pattern: TriplePattern, graph: Optional[Term] = None) -> None:
        variables = pattern.variables()
        if isinstance(graph, Variable):
            variables = variables | {graph}
        super().__init__(frozenset(variables))
        self._pattern = pattern
        self._graph = graph
        self._emitted: set[Binding] = set()

        # Precomputed slot checks.
        def concrete(term: Optional[Term]) -> Optional[Term]:
            return term if term is not None and not isinstance(term, Variable) else None

        self._s = concrete(pattern.subject)
        self._p = concrete(pattern.predicate)
        self._o = concrete(pattern.object)
        self._var_slots: tuple[tuple[Variable, object], ...] = tuple(
            (term, self._GETTERS[position])
            for position, term in enumerate(pattern)
            if isinstance(term, Variable)
        )
        self._graph_concrete = (
            graph if graph is not None and not isinstance(graph, Variable) else None
        )
        self._graph_variable = graph if isinstance(graph, Variable) else None

    def register(self, router: DeltaRouter) -> None:
        router.register(self._p)

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        if isinstance(delta, DeltaBatch):
            quads = delta.for_predicate(self._p) if self._p is not None else delta.quads
        else:
            quads = delta
        if not quads:
            return []
        produced: list[Binding] = []
        emitted = self._emitted
        graph_term = self._graph_concrete
        for quad in quads:
            if graph_term is not None and quad.graph != graph_term:
                continue
            binding = self._match(quad)
            if binding is not None and binding not in emitted:
                emitted.add(binding)
                produced.append(binding)
        return self._count(produced)

    def _match(self, quad: Quad) -> Optional[Binding]:
        if self._s is not None and quad.subject != self._s:
            return None
        if self._p is not None and quad.predicate != self._p:
            return None
        if self._o is not None and quad.object != self._o:
            return None
        items: dict[Variable, Term] = {}
        for variable, getter in self._var_slots:
            term = getter(quad)
            bound = items.get(variable)
            if bound is None:
                items[variable] = term
            elif bound != term:
                return None
        graph_variable = self._graph_variable
        if graph_variable is not None:
            if quad.graph is None:
                return None
            items[graph_variable] = quad.graph
        return Binding._adopt(items)


class PathScanNode(IncrementalNode):
    """A property-path leaf, re-evaluated over the grown snapshot per delta."""

    def __init__(self, pattern: PathPattern, graph: Optional[Term] = None) -> None:
        super().__init__(frozenset(pattern.variables()))
        self._pattern = pattern
        self._graph = graph if isinstance(graph, NamedNode) else None
        self._relevant = path_predicates(pattern.path)
        self._negated = _is_negated(pattern.path)
        self._emitted: set[tuple[Term, Term]] = set()

    def register(self, router: DeltaRouter) -> None:
        if self._negated or not self._relevant:
            router.register(None)  # negated sets can match any predicate
        else:
            for predicate in self._relevant:
                router.register(predicate)

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        if isinstance(delta, DeltaBatch):
            if not delta.quads:
                return []
            if not self._negated and not any(
                delta.for_predicate(predicate) for predicate in self._relevant
            ):
                return []
        elif not self._delta_relevant(delta):
            return []
        graph = dataset.union if self._graph is None else dataset.graph(self._graph)
        produced: list[Binding] = []
        subject = self._pattern.subject
        object_term = self._pattern.object
        for start, end in evaluate_path(graph, subject, self._pattern.path, object_term):
            pair = (start, end)
            if pair in self._emitted:
                continue
            self._emitted.add(pair)
            items: dict[Variable, Term] = {}
            if isinstance(subject, Variable):
                items[subject] = start
            if isinstance(object_term, Variable):
                if object_term in items and items[object_term] != end:
                    continue
                items[object_term] = end
            produced.append(Binding(items))
        return self._count(produced)

    def _delta_relevant(self, delta: Sequence[Quad]) -> bool:
        if self._negated:
            return bool(delta)  # negated sets can match any predicate
        for quad in delta:
            if quad.predicate in self._relevant:
                return True
        return False


def _is_negated(path) -> bool:
    from ..sparql.algebra import (
        AlternativePath,
        InversePath,
        NegatedPropertySet,
        OneOrMorePath,
        SequencePath,
        ZeroOrMorePath,
        ZeroOrOnePath,
    )

    if isinstance(path, NegatedPropertySet):
        return True
    if isinstance(path, (InversePath, ZeroOrMorePath, OneOrMorePath, ZeroOrOnePath)):
        return _is_negated(path.path)
    if isinstance(path, SequencePath):
        return any(_is_negated(step) for step in path.steps)
    if isinstance(path, AlternativePath):
        return any(_is_negated(option) for option in path.options)
    return False


class ValuesNode(IncrementalNode):
    """Inline data: emits its rows exactly once, on the first delta."""

    def __init__(self, op: ValuesOp) -> None:
        certain = frozenset(
            variable
            for index, variable in enumerate(op.variables)
            if all(row[index] is not None for row in op.rows)
        )
        super().__init__(certain)
        self._rows = [
            Binding({v: t for v, t in zip(op.variables, row) if t is not None})
            for row in op.rows
        ]
        self._emitted = False

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        if self._emitted:
            return []
        self._emitted = True
        return self._count(list(self._rows))


class JoinNode(IncrementalNode):
    """Symmetric hash join on the certainly-bound shared variables."""

    #: Class-level default: tracing is off unless a Pipeline with an
    #: enabled tracer installs an instance attribute (zero hot-path cost
    #: beyond one identity check).
    _tracer = None

    def __init__(self, left: IncrementalNode, right: IncrementalNode) -> None:
        super().__init__(left.certain_variables | right.certain_variables)
        self._left = left
        self._right = right
        self._key_variables = tuple(
            sorted(left.certain_variables & right.certain_variables, key=lambda v: v.value)
        )
        self._left_table: dict[tuple, list[Binding]] = {}
        self._right_table: dict[tuple, list[Binding]] = {}

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        tracer = self._tracer
        if tracer is None:
            return self._process(delta, dataset)
        with tracer.span(
            "join", key=" ".join(v.value for v in self._key_variables)
        ) as span:
            produced = self._process(delta, dataset)
            span.args["produced"] = len(produced)
        return produced

    def _process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        new_left = self._left.process(delta, dataset)
        new_right = self._right.process(delta, dataset)
        produced: list[Binding] = []

        # New left rows join the right table as it stood before this delta…
        for binding in new_left:
            key = binding.key(self._key_variables)
            for other in self._right_table.get(key, ()):
                merged = binding.merged(other)
                if merged is not None:
                    produced.append(merged)
        for binding in new_left:
            self._left_table.setdefault(binding.key(self._key_variables), []).append(binding)

        # …and new right rows join the left table *including* this delta's
        # left rows, so each new-new pair is produced exactly once.
        for binding in new_right:
            key = binding.key(self._key_variables)
            for other in self._left_table.get(key, ()):
                merged = other.merged(binding)
                if merged is not None:
                    produced.append(merged)
        for binding in new_right:
            self._right_table.setdefault(binding.key(self._key_variables), []).append(binding)
        return self._count(produced)

    def children(self):
        return (self._left, self._right)


class UnionNode(IncrementalNode):
    def __init__(self, left: IncrementalNode, right: IncrementalNode) -> None:
        super().__init__(left.certain_variables & right.certain_variables)
        self._left = left
        self._right = right

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        return self._count(self._left.process(delta, dataset) + self._right.process(delta, dataset))

    def children(self):
        return (self._left, self._right)


class FilterNode(IncrementalNode):
    def __init__(self, input_node: IncrementalNode, expression, evaluator: ExpressionEvaluator) -> None:
        super().__init__(input_node.certain_variables)
        self._input = input_node
        self._expression = expression
        self._evaluator = evaluator

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        return self._count(
            [
                binding
                for binding in self._input.process(delta, dataset)
                if self._evaluator.satisfied(self._expression, binding)
            ]
        )

    def children(self):
        return (self._input,)


class ExtendNode(IncrementalNode):
    def __init__(
        self,
        input_node: IncrementalNode,
        variable: Variable,
        expression,
        evaluator: ExpressionEvaluator,
    ) -> None:
        # The extended variable is not *certain*: the expression may error.
        super().__init__(input_node.certain_variables)
        self._input = input_node
        self._variable = variable
        self._expression = expression
        self._evaluator = evaluator

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        produced: list[Binding] = []
        for binding in self._input.process(delta, dataset):
            try:
                value = self._evaluator.evaluate(self._expression, binding)
            except ExpressionError:
                produced.append(binding)
                continue
            if self._variable in binding:
                if binding[self._variable] == value:
                    produced.append(binding)
                continue
            produced.append(binding.extended(self._variable, value))
        return self._count(produced)

    def children(self):
        return (self._input,)


class ProjectNode(IncrementalNode):
    def __init__(self, input_node: IncrementalNode, variables: tuple[Variable, ...]) -> None:
        super().__init__(input_node.certain_variables & frozenset(variables))
        self._input = input_node
        self._variables = variables

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        return self._count(
            [b.projected(self._variables) for b in self._input.process(delta, dataset)]
        )

    def children(self):
        return (self._input,)


class DistinctNode(IncrementalNode):
    def __init__(self, input_node: IncrementalNode) -> None:
        super().__init__(input_node.certain_variables)
        self._input = input_node
        self._seen: set[Binding] = set()

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        produced: list[Binding] = []
        for binding in self._input.process(delta, dataset):
            if binding not in self._seen:
                self._seen.add(binding)
                produced.append(binding)
        return self._count(produced)

    def children(self):
        return (self._input,)


class LimitNode(IncrementalNode):
    """LIMIT without OFFSET: any N results are a correct answer prefix."""

    def __init__(self, input_node: IncrementalNode, limit: int) -> None:
        super().__init__(input_node.certain_variables)
        self._input = input_node
        self._limit = limit
        self._taken = 0

    @property
    def satisfied(self) -> bool:
        return self._taken >= self._limit

    def _counted(self, produced: list[Binding]) -> list[Binding]:
        self.produced_total += len(produced)
        return produced

    def children(self):
        return (self._input,)

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        if self.satisfied:
            return []
        produced = self._input.process(delta, dataset)
        remaining = self._limit - self._taken
        produced = produced[:remaining]
        self._taken += len(produced)
        return self._counted(produced)


def total_work(node: IncrementalNode) -> int:
    """Sum of bindings produced by every node in a pipeline tree.

    A proxy for evaluation effort: bad join orders inflate intermediate
    results, which this counter exposes (used by the adaptive-planning
    bench E10).
    """
    return node.produced_total + sum(total_work(child) for child in node.children())


class Pipeline:
    """A compiled incremental operator tree plus its feeding cursor.

    Construction walks the tree once so every scan registers its predicate
    key with the pipeline's :class:`DeltaRouter`; each :meth:`advance` then
    buckets the delta once and dispatches only the matching slices.
    """

    def __init__(self, root: IncrementalNode) -> None:
        self._root = root
        self._cursor = 0
        self._router = DeltaRouter()
        root.register(self._router)
        self._tracer = None
        self._trace_parent = None

    def enable_tracing(self, tracer, parent=None) -> None:
        """Record one ``advance-batch`` span per :meth:`advance` (under
        ``parent``) with nested ``join`` spans per join operator."""
        self._tracer = tracer
        self._trace_parent = parent
        stack: list[IncrementalNode] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, JoinNode):
                node._tracer = tracer
            stack.extend(node.children())

    @property
    def root(self) -> IncrementalNode:
        return self._root

    @property
    def router(self) -> DeltaRouter:
        return self._router

    @property
    def complete(self) -> bool:
        """True once a top-level LIMIT has been satisfied."""
        return isinstance(self._root, LimitNode) and self._root.satisfied

    def advance(self, dataset: Dataset) -> list[Binding]:
        """Feed all quads logged since the last call; return new solutions."""
        position = dataset.log_position
        if position == self._cursor:
            return []
        delta = dataset.log_slice(self._cursor, position)
        self._cursor = position
        if not delta:
            return []
        tracer = self._tracer
        if tracer is None:
            return self._root.process(self._router.batch(delta), dataset)
        with tracer.span(
            "advance-batch", parent=self._trace_parent, quads=len(delta)
        ) as span:
            produced = self._root.process(self._router.batch(delta), dataset)
            span.args["produced"] = len(produced)
        return produced


def compile_pipeline(
    where: Operator,
    evaluator: Optional[ExpressionEvaluator] = None,
    seed_iris: Iterable[str] = (),
    bgp_order=None,
) -> Pipeline:
    """Compile a monotonic algebra tree into an incremental pipeline.

    ``bgp_order`` optionally overrides join ordering: a callable taking the
    list of (triple & path) patterns of a BGP and returning them in the
    order the left-deep join tree should use.  The default is the
    zero-knowledge planner.  The adaptive engine (see
    :mod:`repro.ltqp.adaptive`) re-compiles with a cardinality-informed
    order mid-execution.

    Raises :class:`NotStreamable` when the tree contains non-monotonic
    operators; callers should then fall back to snapshot evaluation.
    """
    if not is_monotonic(where):
        raise NotStreamable("query contains non-monotonic operators")
    if evaluator is None:
        evaluator = ExpressionEvaluator()
    if bgp_order is None:
        seeds = tuple(seed_iris)

        def bgp_order(patterns):
            return plan_bgp_order(patterns, seed_iris=seeds)

    root = _compile(where, evaluator, bgp_order, graph=None)
    return Pipeline(root)


def _compile(
    op: Operator,
    evaluator: ExpressionEvaluator,
    bgp_order,
    graph: Optional[Term],
) -> IncrementalNode:
    if isinstance(op, BGP):
        return _compile_bgp(op, bgp_order, graph)
    if isinstance(op, Join):
        return JoinNode(
            _compile(op.left, evaluator, bgp_order, graph),
            _compile(op.right, evaluator, bgp_order, graph),
        )
    if isinstance(op, Union):
        return UnionNode(
            _compile(op.left, evaluator, bgp_order, graph),
            _compile(op.right, evaluator, bgp_order, graph),
        )
    if isinstance(op, Filter):
        return FilterNode(_compile(op.input, evaluator, bgp_order, graph), op.expression, evaluator)
    if isinstance(op, Extend):
        return ExtendNode(
            _compile(op.input, evaluator, bgp_order, graph), op.variable, op.expression, evaluator
        )
    if isinstance(op, GraphOp):
        return _compile(op.input, evaluator, bgp_order, op.name)
    if isinstance(op, ValuesOp):
        return ValuesNode(op)
    if isinstance(op, Project):
        return ProjectNode(_compile(op.input, evaluator, bgp_order, graph), op.variables)
    if isinstance(op, Distinct):
        return DistinctNode(_compile(op.input, evaluator, bgp_order, graph))
    if isinstance(op, Reduced):
        # Streaming REDUCED: full dedup is permitted by the spec and free here.
        return DistinctNode(_compile(op.input, evaluator, bgp_order, graph))
    if isinstance(op, Slice):
        if op.offset != 0:
            raise NotStreamable("OFFSET is not streamable")
        inner = _compile(op.input, evaluator, bgp_order, graph)
        if op.limit is None:
            return inner
        return LimitNode(inner, op.limit)
    if isinstance(op, SubSelect):
        return _compile(op.query.where, evaluator, bgp_order, graph)
    raise NotStreamable(f"operator {type(op).__name__} is not streamable")


def _compile_bgp(
    op: BGP, bgp_order, graph: Optional[Term]
) -> IncrementalNode:
    patterns = bgp_order(list(op.patterns) + list(op.path_patterns))
    if not patterns:
        empty = ValuesOp((), ((),))
        return ValuesNode(empty)
    nodes: list[IncrementalNode] = []
    for pattern in patterns:
        if isinstance(pattern, PathPattern):
            nodes.append(PathScanNode(pattern, graph=graph))
        else:
            nodes.append(ScanNode(pattern, graph=graph))
    root = nodes[0]
    for node in nodes[1:]:
        root = JoinNode(root, node)
    return root
